"""Setup shim so environments without PEP 660 wheel support can still do
an editable install via ``python setup.py develop``."""
from setuptools import setup

setup()
