"""The online service's core invariants.

The load-bearing assertions of the streaming layer:

* **Incremental == rebuild** — after any event prefix, surgical
  maintenance of the array state produces bit-identical auction
  records to rebuilding the evaluation state from scratch on every
  control event, for every method.
* **Sharded == in-process** — the same stream through the PR-3
  runtime at 1 and 2 workers reproduces the workers=0 records.
* **Surviving population** — a from-scratch engine built on exactly
  the advertisers alive after a churn prefix (ids compacted) continues
  the stream bit-identically; departed advertisers never appear in an
  allocation.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.auction.engine import AuctionEngine, EngineConfig
from repro.bench import records_identical
from repro.evaluation.evaluator import RhtaluEvaluator
from repro.evaluation.pacer_arrays import LazyPacerArrays
from repro.probability.click_models import TabularClickModel
from repro.probability.purchase_models import no_purchases
from repro.strategies.base import Query
from repro.strategies.roi_equalizer import SimpleROIPacer
from repro.strategies.state import KeywordRecord, ProgramState
from repro.stream import (
    AdvertiserJoin,
    AdvertiserLeave,
    BudgetTopUp,
    EventLog,
    OnlineAuctionService,
    QueryArrival,
)
from repro.workloads import (
    ChurnStreamConfig,
    PaperWorkload,
    PaperWorkloadConfig,
    generate_stream,
    join_event,
)
from tests.stream.oracle import assert_outcomes_agree, run_service

CONFIG = PaperWorkloadConfig(num_advertisers=36, num_slots=4,
                             num_keywords=3, seed=1)
SEED = 3


@pytest.fixture(scope="module")
def workload():
    return PaperWorkload(CONFIG)


@pytest.fixture(scope="module")
def stream(workload):
    log = generate_stream(workload, ChurnStreamConfig(
        num_events=140, churn_rate=0.3, genesis=22, min_active=6,
        seed=7))
    counts = log.counts_by_kind()
    # The fixture must actually exercise churn.
    assert counts["leave"] >= 3 and counts["update"] >= 3
    assert counts["join"] > 22
    return log


class TestIncrementalVsRebuildOracle:
    @pytest.mark.parametrize("method", ["rh", "lp", "hungarian",
                                        "rhtalu"])
    def test_bit_identical_records(self, method, stream):
        incremental = run_service(CONFIG, stream, method=method,
                                  engine_seed=SEED)
        rebuild = run_service(CONFIG, stream, method=method,
                              maintenance="rebuild",
                              engine_seed=SEED)
        assert_outcomes_agree(incremental, rebuild)
        assert len(incremental.records) == stream.num_queries()

    @pytest.mark.parametrize("method", ["rh", "rhtalu"])
    def test_every_prefix_agrees(self, method, stream):
        # Stronger than end-state equality: walk the stream event by
        # event and require record-for-record agreement as produced.
        incremental = OnlineAuctionService(CONFIG, method=method,
                                           engine_seed=SEED)
        rebuild = OnlineAuctionService(CONFIG, method=method,
                                       maintenance="rebuild",
                                       engine_seed=SEED)
        for event in stream:
            first = incremental.process(event)
            second = rebuild.process(event)
            assert (first is None) == (second is None)
            if first is not None:
                assert records_identical([first], [second])


class TestShardedService:
    @pytest.mark.parametrize("method", ["rh", "lp", "rhtalu"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_workers_match_in_process(self, method, workers, stream):
        base = run_service(CONFIG, stream, method=method,
                           engine_seed=SEED)
        sharded = run_service(CONFIG, stream, method=method,
                              workers=workers, engine_seed=SEED)
        assert_outcomes_agree(base, sharded)

    def test_rebuild_maintenance_under_workers(self, stream):
        base = run_service(CONFIG, stream, method="rhtalu",
                           engine_seed=SEED)
        sharded = run_service(CONFIG, stream, method="rhtalu",
                              workers=2, maintenance="rebuild",
                              engine_seed=SEED)
        assert_outcomes_agree(base, sharded)


class TestChurnSemantics:
    @pytest.mark.parametrize("method", ["rh", "rhtalu"])
    def test_departed_advertisers_never_win_again(self, method,
                                                  stream):
        service = OnlineAuctionService(CONFIG, method=method,
                                       engine_seed=SEED)
        departed: set[int] = set()
        for event in stream:
            record = service.process(event)
            if isinstance(event, AdvertiserLeave):
                departed.add(event.advertiser)
            elif isinstance(event, AdvertiserJoin):
                departed.discard(event.advertiser)
            if record is not None:
                winners = set(record.allocation.slot_of)
                assert not winners & departed
                assert not set(record.prices) & departed
        assert departed  # the fixture stream must have net leavers

    def test_join_changes_subsequent_outcomes(self, workload):
        # A controlled scenario: one advertiser with an overwhelming
        # bid joins mid-stream and must start winning slot 1.
        events = [join_event(workload, advertiser)
                  for advertiser in range(6)]
        events += [QueryArrival("kw0")] * 3
        big = join_event(workload, 30)
        big = AdvertiserJoin(advertiser=30, target=1e6,
                             bids=(1000.0,) * 3,
                             maxbids=(1000.0,) * 3,
                             values=(1000.0,) * 3)
        events.append(big)
        events += [QueryArrival("kw0")] * 3
        service = OnlineAuctionService(CONFIG, method="rh",
                                       engine_seed=SEED)
        records = service.run(events)
        before, after = records[:3], records[3:]
        assert all(30 not in record.allocation.slot_of
                   for record in before)
        assert all(record.allocation.slot_of.get(30) == 1
                   for record in after)

    def test_budget_ledger_tracks_charges_and_topups(self, workload):
        events = [join_event(workload, advertiser, budget=100.0)
                  for advertiser in range(8)]
        events += [QueryArrival("kw1")] * 10
        events.append(BudgetTopUp(advertiser=2, amount=55.0))
        service = OnlineAuctionService(CONFIG, method="rh",
                                       engine_seed=SEED)
        records = service.run(events)
        charged = sum(record.prices.get(2, 0.0) for record in records)
        assert service.budget_of(2) == pytest.approx(
            100.0 + 55.0 - charged)
        spent_total = sum(sum(record.prices.values())
                          for record in records)
        assert service.accounts.provider_revenue \
            == pytest.approx(spent_total)

    @pytest.mark.parametrize("method", ["rh", "rhtalu"])
    def test_empty_population_serves_empty_auctions(self, method):
        service = OnlineAuctionService(CONFIG, method=method,
                                       engine_seed=SEED)
        records = service.run([QueryArrival("kw0"),
                               QueryArrival("kw1")])
        assert len(records) == 2
        for record in records:
            assert record.allocation.slot_of == {}
            assert record.realized_revenue == 0.0

    def test_validation_errors(self, workload):
        service = OnlineAuctionService(CONFIG, engine_seed=SEED)
        join = join_event(workload, 1)
        service.process(join)
        with pytest.raises(KeyError):
            service.process(join)  # duplicate join
        with pytest.raises(KeyError):
            service.process(AdvertiserLeave(2))  # never joined
        with pytest.raises(KeyError):
            service.process(BudgetTopUp(advertiser=5, amount=1.0))
        with pytest.raises(KeyError):
            service.process(AdvertiserJoin(advertiser=99, target=1.0,
                                           bids=(0.0,) * 3,
                                           maxbids=(1.0,) * 3,
                                           values=(1.0,) * 3))
        with pytest.raises(ValueError):
            OnlineAuctionService(CONFIG, method="separable")
        with pytest.raises(ValueError):
            OnlineAuctionService(CONFIG, maintenance="lazy")

    def test_sharded_rejects_bad_events_without_killing_fleet(
            self, workload):
        # A bad control event must fail at event time, like the
        # in-process path — never poison a worker and surface as a
        # fleet failure on the next (unrelated) query.
        from repro.stream import BidProgramUpdate

        with OnlineAuctionService(CONFIG, method="rh", workers=2,
                                  engine_seed=SEED) as service:
            service.process(join_event(workload, 0))
            with pytest.raises(KeyError):
                service.process(BidProgramUpdate(
                    advertiser=0, keyword="nosuch", bid=1.0,
                    maxbid=2.0))
            with pytest.raises(KeyError):
                service.process(AdvertiserLeave(7))
            with pytest.raises(KeyError):
                service.process(join_event(workload, 0))
            # The fleet must still serve.
            record = service.process(QueryArrival("kw0"))
            assert record is not None
            assert 0 in record.allocation.slot_of


def _translate(records, survivors):
    """Re-key compact-id engine records to global advertiser ids."""
    translated = []
    for record in records:
        copy = type(record)(
            auction_id=record.auction_id,
            keyword=record.keyword,
            allocation=type(record.allocation)(
                num_slots=record.allocation.num_slots,
                slot_of={int(survivors[row]): slot for row, slot
                         in record.allocation.slot_of.items()}),
            outcome=record.outcome,
            expected_revenue=record.expected_revenue,
            realized_revenue=record.realized_revenue,
            eval_seconds=record.eval_seconds,
            wd_seconds=record.wd_seconds,
            num_candidates=record.num_candidates,
            prices={int(survivors[row]): price for row, price
                    in record.prices.items()},
        )
        translated.append(copy)
    return translated


def _records_match(service_records, engine_records, survivors):
    translated = _translate(engine_records, survivors)
    if len(service_records) != len(translated):
        return False
    for ours, theirs in zip(service_records, translated):
        if ours.allocation.slot_of != theirs.allocation.slot_of:
            return False
        if ours.prices != theirs.prices:
            return False
        if ours.expected_revenue != theirs.expected_revenue:
            return False
        if ours.realized_revenue != theirs.realized_revenue:
            return False
        clicked = {int(survivors[row])
                   for row in theirs.outcome.clicked}
        if set(ours.outcome.clicked) != clicked:
            return False
    return True


def untracked(stream):
    """The stream with budget tracking disabled on every join.

    The surviving-population oracle transplants captured state into a
    fresh fixed-population engine, which has no budget ledger — so the
    service side must not gate participation either (budget lifecycle
    oracles live in ``test_budget.py``).
    """
    return EventLog([replace(event, budget=0.0)
                     if isinstance(event, AdvertiserJoin) else event
                     for event in stream])


class TestSurvivingPopulationOracle:
    """After any churn prefix, a from-scratch engine built on exactly
    the surviving advertisers (ids compacted to 0..m-1) continues the
    query stream bit-identically."""

    def _tail_feeder(self, keywords):
        pending = list(keywords)

        def feeder(rng):
            keyword = pending.pop(0)
            return Query(text=keyword, relevance={keyword: 1.0})

        return feeder

    def test_eager_engine_on_survivors(self, workload, stream):
        stream = untracked(stream)
        prefix = len(stream) * 2 // 3
        service = OnlineAuctionService(CONFIG, method="rh",
                                       engine_seed=SEED)
        service.run(stream.prefix(prefix))
        capture = service.backend.capture_state()
        survivors = np.asarray(capture["ids"])
        assert len(survivors) < CONFIG.num_advertisers

        programs = []
        for row in range(len(survivors)):
            records = [
                KeywordRecord(
                    text=workload.keywords[col], formula="Click",
                    maxbid=float(capture["maxbids"][row, col]),
                    bid=float(capture["bids"][row, col]),
                    value_per_click=float(capture["values"][row, col]),
                    gained=float(capture["gained"][row, col]),
                    spent=float(capture["spent"][row, col]))
                for col in range(CONFIG.num_keywords)]
            state = ProgramState(
                target_spend_rate=float(capture["target"][row]),
                keywords=records,
                amt_spent=float(capture["amt_spent"][row]),
                auctions_seen=int(capture["auctions_seen"][row]))
            programs.append(SimpleROIPacer(row, state,
                                           step=CONFIG.step))
        tail = [event for event in stream[prefix:]
                if isinstance(event, QueryArrival)]
        engine = AuctionEngine(
            click_model=TabularClickModel(
                workload.click_matrix[survivors]),
            purchase_model=no_purchases(len(survivors),
                                        CONFIG.num_slots),
            query_source=self._tail_feeder(
                [event.keyword for event in tail]),
            config=EngineConfig(num_slots=CONFIG.num_slots,
                                method="rh", seed=0),
            programs=programs)
        engine.auction_id = service.auctions_run
        engine.rng.bit_generator.state = \
            service.backend.rng.bit_generator.state
        engine_records = engine.run(len(tail))
        service_records = service.run(tail)
        assert _records_match(service_records, engine_records,
                              survivors)

    def test_rhtalu_engine_on_survivors(self, workload, stream):
        stream = untracked(stream)
        prefix = len(stream) * 2 // 3
        service = OnlineAuctionService(CONFIG, method="rhtalu",
                                       engine_seed=SEED)
        service.run(stream.prefix(prefix))
        capture = service.backend.capture_state()
        survivors = np.asarray(capture["ids"])
        assert len(survivors) < CONFIG.num_advertisers

        compacted = dict(capture)
        compacted["ids"] = np.arange(len(survivors), dtype=np.int64)
        compacted["num_advertisers"] = len(survivors)
        arrays = LazyPacerArrays.from_capture(compacted)
        tail = [event for event in stream[prefix:]
                if isinstance(event, QueryArrival)]
        engine = AuctionEngine(
            click_model=TabularClickModel(
                workload.click_matrix[survivors]),
            purchase_model=no_purchases(len(survivors),
                                        CONFIG.num_slots),
            query_source=self._tail_feeder(
                [event.keyword for event in tail]),
            config=EngineConfig(num_slots=CONFIG.num_slots,
                                method="rhtalu", seed=0),
            rhtalu=RhtaluEvaluator(workload.click_matrix[survivors],
                                   arrays))
        engine.auction_id = service.auctions_run
        engine.rng.bit_generator.state = \
            service.backend.rng.bit_generator.state
        engine_records = engine.run(len(tail))
        service_records = service.run(tail)
        assert _records_match(service_records, engine_records,
                              survivors)


class TestNoChurnEquivalence:
    """With every universe id joined at genesis and zero churn, the
    service reproduces the plain fixed-population engine exactly."""

    @pytest.mark.parametrize("method", ["rh", "rhtalu"])
    def test_service_equals_engine(self, method, workload):
        keywords = ["kw0", "kw2", "kw1", "kw0", "kw1", "kw2"] * 6
        events = [join_event(workload, advertiser)
                  for advertiser in range(CONFIG.num_advertisers)]
        events += [QueryArrival(keyword) for keyword in keywords]
        service = OnlineAuctionService(CONFIG, method=method,
                                       engine_seed=SEED)
        service_records = service.run(events)

        pending = list(keywords)

        def feeder(rng):
            keyword = pending.pop(0)
            return Query(text=keyword, relevance={keyword: 1.0})

        kwargs = dict(
            click_model=workload.click_model(),
            purchase_model=workload.purchase_model(),
            query_source=feeder,
            config=EngineConfig(num_slots=CONFIG.num_slots,
                                method=method, seed=SEED))
        if method == "rhtalu":
            engine = AuctionEngine(rhtalu=workload.build_rhtalu(),
                                   **kwargs)
        else:
            engine = AuctionEngine(programs=workload.build_programs(),
                                   **kwargs)
        engine_records = engine.run(len(keywords))
        assert records_identical(service_records, engine_records)


class TestServiceStats:
    def test_event_timings_cover_every_kind(self, stream):
        service = OnlineAuctionService(CONFIG, method="rh",
                                       engine_seed=SEED)
        service.run(stream)
        stats = service.stats.to_dict()
        for kind, count in stream.counts_by_kind().items():
            if count:
                assert stats["by_kind"][kind]["count"] == count
        assert stats["total_events"] == len(stream)
        assert service.events_processed == len(stream)
