"""The budget lifecycle: exhaustion eviction, pause/re-admit, clamping.

The load-bearing assertions of the lifecycle layer:

* **Charges clamp** — a winner's final charge never exceeds its
  remaining balance, the clamped amount is what lands in the record's
  prices / the account book / provider revenue, and a ledger is never
  negative.
* **Exhaustion pauses** — the charge that zeroes a balance emits
  `AdvertiserPaused`; from the next query on the advertiser is out of
  every allocation until a `BudgetTopUp` re-admits it
  (`AdvertiserResumed`) with its retained pacing state.
* **Incremental == rebuild, in-process == sharded** — under
  exhaustion/top-up interleavings the records, final balances, and
  pause/resume emissions stay bit-identical for all four methods,
  which is the PR's acceptance criterion.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import records_identical
from repro.stream import (
    AdvertiserJoin,
    AdvertiserLeave,
    AdvertiserPaused,
    AdvertiserResumed,
    BidProgramUpdate,
    BudgetTopUp,
    OnlineAuctionService,
    QueryArrival,
)
from repro.workloads import (
    ChurnStreamConfig,
    PaperWorkload,
    PaperWorkloadConfig,
    generate_stream,
    join_event,
)
from tests.stream.oracle import assert_services_agree

CONFIG = PaperWorkloadConfig(num_advertisers=12, num_slots=3,
                             num_keywords=2, seed=1)
SEED = 3


@pytest.fixture(scope="module")
def workload():
    return PaperWorkload(CONFIG)


@pytest.fixture(scope="module")
def pressure_stream(workload):
    """A generated stream under exhaustion pressure: small budgets,
    frequent top-ups — the lifecycle must fire both ways."""
    log = generate_stream(workload, ChurnStreamConfig(
        num_events=160, churn_rate=0.25, genesis=8, min_active=4,
        budget_low=3.0, budget_high=25.0, topup_weight=2.0, seed=11))
    assert log.counts_by_kind()["topup"] >= 5
    return log


def exhaustion_events(workload, budget=8.0, queries=60, topup_to=0,
                      topup_amount=50.0):
    """Six small-budget joins, queries until ledgers drain, one
    top-up, more queries."""
    events = [join_event(workload, advertiser, budget=budget)
              for advertiser in range(6)]
    events += [QueryArrival(keyword) for _ in range(queries // 2)
               for keyword in ("kw0", "kw1")]
    events.append(BudgetTopUp(advertiser=topup_to,
                              amount=topup_amount))
    events += [QueryArrival(keyword) for _ in range(10)
               for keyword in ("kw0", "kw1")]
    return events


class TestChargeClamping:
    def test_final_charge_clamps_to_balance(self, workload):
        service = OnlineAuctionService(CONFIG, method="rh",
                                       engine_seed=SEED)
        budget = 5.0
        charged: dict[int, float] = {}
        for event in exhaustion_events(workload, budget=budget):
            record = service.process(event)
            if record is None:
                continue
            for advertiser, charge in record.prices.items():
                charged[advertiser] = charged.get(advertiser, 0.0) \
                    + charge
        # Nobody paid more than their ledger ever held (one top-up).
        for advertiser, total in charged.items():
            ceiling = budget + (50.0 if advertiser == 0 else 0.0)
            assert total <= ceiling + 1e-9
        # The exhausted ledgers landed on exactly zero, not below.
        for advertiser in service.paused_advertisers():
            assert service.budget_of(advertiser) == 0.0

    def test_clamped_amount_flows_everywhere(self, workload):
        service = OnlineAuctionService(CONFIG, method="rh",
                                       engine_seed=SEED)
        records = service.run(exhaustion_events(workload))
        total_prices = sum(sum(record.prices.values())
                           for record in records)
        assert service.accounts.provider_revenue \
            == pytest.approx(total_prices)
        for advertiser, account in \
                service.accounts.accounts.items():
            assert account.charged == pytest.approx(
                sum(record.prices.get(advertiser, 0.0)
                    for record in records))
        assert sum(record.realized_revenue for record in records) \
            == pytest.approx(total_prices)

    def test_untracked_budgets_never_clamp_or_pause(self, workload):
        # budget=0.0 (the event default) means untracked: unlimited.
        events = [join_event(workload, advertiser)
                  for advertiser in range(6)]
        events += [QueryArrival("kw0"), QueryArrival("kw1")] * 40
        service = OnlineAuctionService(CONFIG, method="rh",
                                       engine_seed=SEED)
        service.run(events)
        assert service.paused_advertisers() == []
        assert not service.emitted
        assert service.budget_of(0) == math.inf


class TestPauseResumeSemantics:
    def test_exhaustion_pauses_and_topup_readmits(self, workload):
        service = OnlineAuctionService(CONFIG, method="rh",
                                       engine_seed=SEED)
        paused_seen = False
        for event in exhaustion_events(workload, topup_to=0):
            pre_paused = set(service.paused_advertisers())
            record = service.process(event)
            if record is not None:
                # Advertisers paused before this query are out of the
                # allocation and pay nothing.
                assert not pre_paused & set(record.allocation.slot_of)
                assert not pre_paused & set(record.prices)
            if isinstance(event, BudgetTopUp):
                assert 0 not in service.paused_advertisers()
                assert service.budget_of(0) > 0
            paused_seen = paused_seen or bool(
                service.paused_advertisers())
        assert paused_seen
        kinds = service.emitted.counts_by_kind()
        assert kinds["paused"] >= 1 and kinds["resumed"] == 1
        resumed = [event for event in service.emitted
                   if isinstance(event, AdvertiserResumed)]
        assert resumed[0].advertiser == 0

    def test_emitted_journal_names_the_exhausting_auction(
            self, workload):
        service = OnlineAuctionService(CONFIG, method="rh",
                                       engine_seed=SEED)
        records = service.run(exhaustion_events(workload))
        by_id = {record.auction_id: record for record in records}
        for event in service.emitted:
            if isinstance(event, AdvertiserPaused):
                record = by_id[event.auction_id]
                # The pausing auction is the one whose settlement
                # charged the advertiser's last balance.
                assert event.advertiser in record.prices

    def test_resumed_advertiser_keeps_its_state(self, workload):
        # After pause + resume the advertiser must still carry its
        # pre-pause spend history (a top-up re-admits, never resets) —
        # observable through the account book staying monotone and the
        # service ledger: balance == topup - post-resume charges.
        service = OnlineAuctionService(CONFIG, method="rhtalu",
                                       engine_seed=SEED)
        for event in exhaustion_events(workload)[:-21]:
            service.process(event)
        assert service.paused_advertisers()
        who = service.paused_advertisers()[0]
        spent_before = service.accounts.account(who).charged
        assert spent_before > 0
        service.process(BudgetTopUp(advertiser=who, amount=40.0))
        assert who not in service.paused_advertisers()
        post_charges = 0.0
        for _ in range(10):
            for keyword in ("kw0", "kw1"):
                record = service.process(QueryArrival(keyword))
                post_charges += record.prices.get(who, 0.0)
        assert service.accounts.account(who).charged \
            == pytest.approx(spent_before + post_charges)
        if who not in service.paused_advertisers():
            assert service.budget_of(who) == pytest.approx(
                40.0 - post_charges)

    def test_leave_while_paused(self, workload):
        service = OnlineAuctionService(CONFIG, method="rh",
                                       engine_seed=SEED)
        for event in exhaustion_events(workload):
            service.process(event)
            if service.paused_advertisers():
                break
        paused = service.paused_advertisers()[0]
        service.process(AdvertiserLeave(paused))
        assert paused not in service.active_advertisers()
        with pytest.raises(KeyError):
            service.budget_of(paused)
        # The id is free again: a fresh join works and serves.
        service.process(join_event(workload, paused, budget=100.0))
        record = service.process(QueryArrival("kw0"))
        assert record is not None

    def test_update_while_paused_applies_on_resume(self, workload):
        for method in ("rh", "rhtalu"):
            service = OnlineAuctionService(CONFIG, method=method,
                                           engine_seed=SEED)
            for event in exhaustion_events(workload, topup_to=1):
                service.process(event)
                if service.paused_advertisers():
                    break
            paused = service.paused_advertisers()[0]
            service.process(BidProgramUpdate(
                advertiser=paused, keyword="kw0", bid=0.25,
                maxbid=0.5))
            service.process(BudgetTopUp(advertiser=paused,
                                        amount=30.0))
            assert paused not in service.paused_advertisers()

    def test_join_of_paused_id_is_rejected(self, workload):
        service = OnlineAuctionService(CONFIG, method="rh",
                                       engine_seed=SEED)
        for event in exhaustion_events(workload):
            service.process(event)
            if service.paused_advertisers():
                break
        paused = service.paused_advertisers()[0]
        with pytest.raises(KeyError):
            service.process(join_event(workload, paused, budget=9.0))

    def test_negative_topup_clawback_can_pause(self, workload):
        service = OnlineAuctionService(CONFIG, method="rh",
                                       engine_seed=SEED)
        service.process(join_event(workload, 0, budget=100.0))
        service.process(QueryArrival("kw0"))
        service.process(BudgetTopUp(advertiser=0, amount=-500.0))
        assert service.paused_advertisers() == [0]
        assert service.budget_of(0) == 0.0

    def test_service_rejects_service_originated_events(self):
        service = OnlineAuctionService(CONFIG, engine_seed=SEED)
        with pytest.raises(TypeError, match="service-originated"):
            service.process(AdvertiserPaused(advertiser=1))
        with pytest.raises(TypeError, match="service-originated"):
            service.process(AdvertiserResumed(advertiser=1))


class TestIncrementalVsRebuildUnderExhaustion:
    @pytest.mark.parametrize("method", ["rh", "lp", "hungarian",
                                        "rhtalu"])
    def test_bit_identical_on_pressure_stream(self, method,
                                              pressure_stream):
        incremental = OnlineAuctionService(CONFIG, method=method,
                                           engine_seed=SEED)
        rebuild = OnlineAuctionService(CONFIG, method=method,
                                       maintenance="rebuild",
                                       engine_seed=SEED)
        first = incremental.run(pressure_stream)
        second = rebuild.run(pressure_stream)
        # The fixture must actually exercise both lifecycle arcs.
        kinds = incremental.emitted.counts_by_kind()
        assert kinds["paused"] >= 3 and kinds["resumed"] >= 1
        assert_services_agree(incremental, rebuild, first, second)
        assert all(balance >= 0 for balance
                   in incremental.registry.balances().values())

    @pytest.mark.parametrize("method", ["rh", "rhtalu"])
    def test_every_prefix_agrees(self, method, pressure_stream):
        incremental = OnlineAuctionService(CONFIG, method=method,
                                           engine_seed=SEED)
        rebuild = OnlineAuctionService(CONFIG, method=method,
                                       maintenance="rebuild",
                                       engine_seed=SEED)
        for event in pressure_stream:
            first = incremental.process(event)
            second = rebuild.process(event)
            assert (first is None) == (second is None)
            if first is not None:
                assert records_identical([first], [second])
            assert incremental.paused_advertisers() \
                == rebuild.paused_advertisers()


class TestShardedUnderExhaustion:
    @pytest.mark.parametrize("method", ["rh", "lp", "rhtalu"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_workers_match_in_process(self, method, workers,
                                      pressure_stream):
        base = OnlineAuctionService(CONFIG, method=method,
                                    engine_seed=SEED)
        expected = base.run(pressure_stream)
        assert base.emitted  # pressure must reach the lifecycle
        with OnlineAuctionService(CONFIG, method=method,
                                  workers=workers,
                                  engine_seed=SEED) as sharded:
            actual = sharded.run(pressure_stream)
            assert_services_agree(base, sharded, expected, actual)

    def test_sharded_rebuild_maintenance(self, pressure_stream):
        base = OnlineAuctionService(CONFIG, method="rhtalu",
                                    engine_seed=SEED)
        expected = base.run(pressure_stream)
        with OnlineAuctionService(CONFIG, method="rhtalu", workers=2,
                                  maintenance="rebuild",
                                  engine_seed=SEED) as sharded:
            actual = sharded.run(pressure_stream)
            assert_services_agree(base, sharded, expected, actual)


class TestBudgetProperty:
    """Random exhaustion/top-up interleavings: the registry stays
    non-negative and incremental equals rebuild — the satellite's
    Hypothesis property."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_random_interleavings(self, seed):
        workload = PaperWorkload(CONFIG)
        rng = np.random.default_rng(seed)
        events = [join_event(workload, advertiser,
                             budget=float(rng.uniform(1.0, 20.0)))
                  for advertiser in range(5)]
        live = set(range(5))
        parked = {5, 6, 7}
        for _ in range(70):
            roll = rng.random()
            if roll < 0.55 or not live:
                keyword = f"kw{int(rng.integers(CONFIG.num_keywords))}"
                events.append(QueryArrival(keyword))
            elif roll < 0.75:
                advertiser = int(rng.choice(sorted(live)))
                events.append(BudgetTopUp(
                    advertiser=advertiser,
                    amount=float(rng.uniform(-10.0, 30.0))))
            elif roll < 0.85 and parked:
                advertiser = parked.pop()
                live.add(advertiser)
                events.append(join_event(
                    workload, advertiser,
                    budget=float(rng.uniform(1.0, 20.0))))
            elif len(live) > 2:
                advertiser = int(rng.choice(sorted(live)))
                live.discard(advertiser)
                parked.add(advertiser)
                events.append(AdvertiserLeave(advertiser))
            else:
                events.append(QueryArrival("kw0"))

        incremental = OnlineAuctionService(CONFIG, method="rh",
                                           engine_seed=SEED)
        rebuild = OnlineAuctionService(CONFIG, method="rh",
                                       maintenance="rebuild",
                                       engine_seed=SEED)
        for event in events:
            first = incremental.process(event)
            second = rebuild.process(event)
            balances = incremental.registry.balances()
            assert all(balance >= 0.0
                       for balance in balances.values())
            assert balances == rebuild.registry.balances()
            if first is not None:
                assert records_identical([first], [second])
        assert incremental.paused_advertisers() \
            == rebuild.paused_advertisers()
