"""Durability contract tests: journal, checkpoints, and recovery.

Four layers of proof on top of the fault-injection matrix
(``test_fault_injection.py``):

* journal unit behaviour — header config, payload round-trips,
  torn-tail truncation on resume, mid-file corruption rejection;
* torn-write exhaustion — the journal tail and the newest checkpoint
  each truncated at **every byte boundary** of the last record, with
  recovery falling back to the last complete entry / previous valid
  checkpoint;
* format and worker-count portability — format-1 *and* format-2
  checkpoints (the latter taken while advertisers are paused) each
  restored onto 1, 2, and 4 workers with the journaled suffix
  replayed on top;
* a Hypothesis property — a random budget/churn stream cut at a
  random index recovers (checkpointed or from genesis) to records,
  balances, and emissions identical to the uninterrupted service,
  for every method.
"""

from __future__ import annotations

import json
import math
import os
import stat
import tempfile
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.stream import (
    DurableAuctionService,
    EventJournal,
    OnlineAuctionService,
    RecoveryError,
    align_traces,
    diff_traces,
    recover,
    scan_journal,
)
from repro.stream.journal import HEADER_KIND, JOURNAL_FORMAT
from repro.stream.recovery import list_checkpoints, load_latest_valid
from repro.stream.snapshot import CheckpointPolicy, checkpoint_name
from repro.workloads import (
    ChurnStreamConfig,
    PaperWorkload,
    PaperWorkloadConfig,
    generate_stream,
)

CONFIG = PaperWorkloadConfig(num_advertisers=24, num_slots=3,
                             num_keywords=2, seed=1)
SEED = 3
METHODS = ("rh", "lp", "hungarian", "rhtalu")


def make_stream(num_events: int, *, budget_low: float = 4.0,
                budget_high: float = 30.0, topup_weight: float = 0.5,
                seed: int = 11):
    workload = PaperWorkload(CONFIG)
    return generate_stream(workload, ChurnStreamConfig(
        num_events=num_events, churn_rate=0.25, genesis=12,
        min_active=4, budget_low=budget_low, budget_high=budget_high,
        topup_weight=topup_weight, seed=seed))


@pytest.fixture(scope="module")
def pressure_stream():
    """Small join budgets + heavy top-ups: checkpoints land while
    advertisers are paused, and many are later re-admitted."""
    return make_stream(140, budget_low=3.0, budget_high=25.0,
                       topup_weight=2.0)


@pytest.fixture(scope="module")
def untracked_stream():
    """Zero-budget joins: nobody is budget-tracked (the format-1
    world, where snapshots predate the lifecycle)."""
    return make_stream(60, budget_low=0.0, budget_high=0.0)


def durable_prefix(tmp_path: Path, stream, upto: int, *,
                   method: str = "rh", every: int = 0,
                   retain: int = 2) -> tuple[Path, Path]:
    """Run a durable service over ``stream[:upto]`` and abandon it —
    the in-process stand-in for a crash (every append was fsync'd, so
    the artifacts are exactly what a death at that point leaves)."""
    journal = tmp_path / "journal.jsonl"
    checkpoint_dir = tmp_path / "checkpoints"
    durable = DurableAuctionService.open(
        CONFIG, journal, method=method, engine_seed=SEED,
        checkpoint_dir=checkpoint_dir if every else None,
        checkpoint_every=every, checkpoint_retain=retain)
    durable.run(stream[:upto])
    durable.close()
    return journal, checkpoint_dir


def end_state(service) -> dict:
    return {
        "active": service.active_advertisers(),
        "paused": service.paused_advertisers(),
        "balances": {advertiser: service.budget_of(advertiser)
                     for advertiser in service.active_advertisers()},
    }


class TestJournal:
    def test_header_carries_format_and_config(self, tmp_path):
        service = OnlineAuctionService(CONFIG, engine_seed=SEED)
        path = tmp_path / "journal.jsonl"
        EventJournal.create(path, service.config_payload()).close()
        service.close()

        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == HEADER_KIND
        assert header["format"] == JOURNAL_FORMAT
        scanned = scan_journal(path)
        assert scanned.config == service.config_payload()
        assert scanned.entries == []
        assert not scanned.torn_tail

    def test_event_payloads_round_trip(self, tmp_path):
        stream = make_stream(20)
        path = tmp_path / "journal.jsonl"
        with EventJournal.create(path, {"method": "rh"}) as journal:
            for seq, event in enumerate(stream):
                journal.append(seq, event)
        scanned = scan_journal(path)
        assert [entry.event for entry in scanned.entries] \
            == list(stream)
        assert [entry.seq for entry in scanned.entries] \
            == list(range(len(stream)))
        assert all(entry.origin == "input"
                   for entry in scanned.entries)
        assert scanned.max_seq == len(stream) - 1

    def test_scan_rejects_bad_headers(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(ValueError, match="journal"):
            scan_journal(path)
        path.write_text(json.dumps({"kind": HEADER_KIND,
                                    "format": "something-else",
                                    "config": {}}) + "\n")
        with pytest.raises(ValueError, match="journal"):
            scan_journal(path)

    def test_mid_file_corruption_is_not_a_tear(self, tmp_path):
        stream = make_stream(20)
        path = tmp_path / "journal.jsonl"
        with EventJournal.create(path, {}) as journal:
            for seq, event in enumerate(stream.prefix(6)):
                journal.append(seq, event)
        lines = path.read_text().splitlines(keepends=True)
        lines[3] = lines[3][: len(lines[3]) // 2] + "\n"
        path.write_text("".join(lines))
        with pytest.raises(ValueError):
            scan_journal(path)

    def test_resume_truncates_the_torn_tail(self, tmp_path):
        stream = make_stream(20)
        path = tmp_path / "journal.jsonl"
        with EventJournal.create(path, {}) as journal:
            for seq, event in enumerate(stream.prefix(5)):
                journal.append(seq, event)
        data = path.read_bytes()
        last_start = data.rfind(b"\n", 0, len(data) - 1) + 1
        path.write_bytes(data[: last_start + 7])  # torn 5th entry
        assert scan_journal(path).torn_tail

        with EventJournal.resume(path) as journal:
            journal.append(4, stream[4])
        scanned = scan_journal(path)
        assert not scanned.torn_tail
        assert [entry.seq for entry in scanned.entries] \
            == [0, 1, 2, 3, 4]
        assert scanned.entries[-1].event == stream[4]


class TestCheckpointPolicy:
    def test_naming_orders_by_watermark(self):
        names = [checkpoint_name(n) for n in (7, 40, 123, 4000)]
        assert names == sorted(names)

    def test_due_on_multiples_only(self, tmp_path):
        policy = CheckpointPolicy(directory=tmp_path, every=25)
        assert not policy.due(0)
        assert policy.due(25) and policy.due(50)
        assert not policy.due(26)

    def test_retention_prunes_oldest(self, tmp_path, stream=None):
        events = make_stream(40)
        durable_prefix(tmp_path, events, len(events), every=10,
                       retain=2)
        files = list_checkpoints(tmp_path / "checkpoints")
        assert len(files) == 2
        watermarks = [int(path.stem.split("-")[1]) for path in files]
        assert watermarks == sorted(watermarks)
        assert watermarks[-1] - watermarks[0] == 10

    def test_write_fsyncs_the_directory_entry(self, tmp_path,
                                              monkeypatch):
        """File durability alone is not enough: ``write()`` must fsync
        the checkpoint *directory* too, or a crash after the file
        fsync can leave a fully-written checkpoint with no durable
        directory entry — and prune's unlinks are directory mutations
        that need the same treatment."""
        service = OnlineAuctionService(CONFIG, engine_seed=SEED)
        try:
            service.run(make_stream(10))
            snapshot = service.snapshot()
        finally:
            service.close()

        real_fsync = os.fsync
        synced_dir_inodes = []

        def recording_fsync(fd):
            status = os.fstat(fd)
            if stat.S_ISDIR(status.st_mode):
                synced_dir_inodes.append(status.st_ino)
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        policy = CheckpointPolicy(directory=tmp_path / "checkpoints",
                                  every=5, retain=1)
        policy.write(snapshot)
        directory_inode = (tmp_path / "checkpoints").stat().st_ino
        assert synced_dir_inodes == [directory_inode]

        # A second checkpoint at a later watermark prunes the first
        # (retain=1): one dir fsync for the new entry, one for the
        # unlink.
        policy.write(replace(snapshot,
                             events_processed=snapshot.events_processed
                             + 5))
        assert synced_dir_inodes == [directory_inode] * 3
        assert len(list_checkpoints(policy.directory)) == 1


class TestTornWrites:
    def test_journal_tail_torn_at_every_byte(self, tmp_path):
        """Truncate the final journal record at every byte boundary:
        scan always keeps exactly the complete prefix, and flags the
        tear unless the cut removed the whole line."""
        stream = make_stream(20)
        journal, _ = durable_prefix(tmp_path, stream, len(stream))
        data = journal.read_bytes()
        complete = len(scan_journal(journal).entries)
        last_start = data.rfind(b"\n", 0, len(data) - 1) + 1

        torn = tmp_path / "torn.jsonl"
        for cut in range(last_start, len(data)):
            torn.write_bytes(data[:cut])
            scanned = scan_journal(torn)
            assert len(scanned.entries) == complete - 1, cut
            assert scanned.torn_tail == (cut > last_start), cut
        torn.write_bytes(data)
        assert len(scan_journal(torn).entries) == complete

    def test_checkpoint_torn_at_every_byte_falls_back(self,
                                                      tmp_path):
        """Truncate the newest checkpoint at every byte boundary:
        recovery always skips it and lands on the previous valid
        checkpoint."""
        stream = make_stream(30)
        journal, checkpoint_dir = durable_prefix(
            tmp_path, stream, len(stream), every=10)
        previous, newest = list_checkpoints(checkpoint_dir)
        data = newest.read_bytes()

        # Cutting only the trailing newline leaves complete JSON —
        # not a tear.  Every cut inside the record itself must fall
        # back.
        content = len(data.rstrip(b"\n"))
        for cut in range(len(data)):
            newest.write_bytes(data[:cut])
            snapshot, path, skipped = load_latest_valid(
                checkpoint_dir)
            if cut < content:
                assert path == previous, cut
                assert skipped == [newest], cut
            else:
                assert path == newest, cut
                assert skipped == [], cut
        # Full recovery from a representative tear: replay resumes
        # from the fallback watermark and reaches the stream's end
        # state.
        newest.write_bytes(data[: len(data) // 2])
        baseline = OnlineAuctionService(CONFIG, engine_seed=SEED)
        expected = baseline.run(stream)
        result = recover(journal, checkpoint_dir=checkpoint_dir)
        try:
            assert result.checkpoints_skipped == 1
            assert result.checkpoint_path == previous
            aligned, candidate = align_traces(expected,
                                              result.records)
            assert diff_traces(aligned, candidate).identical
            assert end_state(result.service) == end_state(baseline)
        finally:
            result.service.close()
            baseline.close()


class TestRecoveryAcrossFormatsAndWorkers:
    CUT = 130  # leaves a journaled suffix past the last checkpoint
    EVERY = 25

    @pytest.fixture(scope="class")
    def pressure_baseline(self, pressure_stream):
        service = OnlineAuctionService(CONFIG, method="rh",
                                       engine_seed=SEED)
        records = service.run(pressure_stream)
        state = end_state(service)
        emitted = list(service.emitted)
        service.close()
        return records, state, emitted

    @pytest.fixture(scope="class")
    def pressure_artifacts(self, pressure_stream, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("format2")
        return durable_prefix(tmp_path, pressure_stream, self.CUT,
                              every=self.EVERY)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_format_2_restores_paused_state_to_any_worker_count(
            self, pressure_stream, pressure_baseline,
            pressure_artifacts, workers):
        journal, checkpoint_dir = pressure_artifacts
        records, state, emitted = pressure_baseline

        # The satellite's precondition: the checkpoint being restored
        # was taken *while advertisers were paused*.
        snapshot, _, _ = load_latest_valid(checkpoint_dir)
        paused_at_checkpoint = [
            advertiser for advertiser, entry
            in snapshot.registry.items() if entry["paused"]]
        assert paused_at_checkpoint

        result = recover(journal, checkpoint_dir=checkpoint_dir,
                         workers=workers)
        try:
            assert result.checkpoint_events == 125
            assert result.replayed_events == self.CUT - 125
            tail = result.service.run(pressure_stream[self.CUT:])
            recovered = result.records + tail
            aligned, candidate = align_traces(records, recovered)
            assert diff_traces(aligned, candidate).identical
            assert end_state(result.service) == state
            # Emissions re-derived from the watermark onward are the
            # exact suffix of the uninterrupted run's emission log.
            rederived = list(result.service.emitted)
            assert rederived == emitted[len(emitted) - len(rederived):]
            assert rederived  # the lifecycle was live in the span
        finally:
            result.service.close()

    @pytest.fixture(scope="class")
    def untracked_baseline(self, untracked_stream):
        service = OnlineAuctionService(CONFIG, method="rh",
                                       engine_seed=SEED)
        records = service.run(untracked_stream)
        state = end_state(service)
        assert not service.emitted  # untracked: lifecycle inert
        service.close()
        return records, state

    @pytest.fixture(scope="class")
    def format_1_artifacts(self, untracked_stream, tmp_path_factory):
        """Durable artifacts whose newest checkpoint is down-edited
        to the format-1 (pre-lifecycle) schema."""
        tmp_path = tmp_path_factory.mktemp("format1")
        journal, checkpoint_dir = durable_prefix(
            tmp_path, untracked_stream, 66, every=15)
        newest = list_checkpoints(checkpoint_dir)[-1]
        payload = json.loads(newest.read_text(encoding="utf-8"))
        payload["format"] = "repro-stream-snapshot/1"
        for entry in payload["registry"].values():
            del entry["paused"]
            if entry["budget"] is None:
                entry["budget"] = 0.0
        payload["backend_state"].pop("paused", None)
        newest.write_text(json.dumps(payload), encoding="utf-8")
        return journal, checkpoint_dir

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_format_1_checkpoint_recovers_to_any_worker_count(
            self, untracked_stream, untracked_baseline,
            format_1_artifacts, workers):
        journal, checkpoint_dir = format_1_artifacts
        records, state = untracked_baseline

        result = recover(journal, checkpoint_dir=checkpoint_dir,
                         workers=workers)
        try:
            assert result.checkpoint_events == 60
            assert result.replayed_events == 66 - 60
            tail = result.service.run(untracked_stream[66:])
            recovered = result.records + tail
            aligned, candidate = align_traces(records, recovered)
            assert diff_traces(aligned, candidate).identical
            # Format-1 restores untracked — and the stream really is.
            for advertiser in result.service.active_advertisers():
                assert result.service.budget_of(advertiser) \
                    == math.inf
            assert result.service.active_advertisers() \
                == state["active"]
            assert result.service.paused_advertisers() == []
        finally:
            result.service.close()


class TestRecoveryEdges:
    def test_genesis_recovery_without_checkpoints(self, tmp_path):
        stream = make_stream(40)
        journal, _ = durable_prefix(tmp_path, stream, len(stream))
        baseline = OnlineAuctionService(CONFIG, engine_seed=SEED)
        expected = baseline.run(stream)

        result = recover(journal)
        try:
            assert result.checkpoint_path is None
            assert result.checkpoint_events == 0
            assert result.replayed_events == len(stream)
            assert diff_traces(expected, result.records).identical
            assert end_state(result.service) == end_state(baseline)
        finally:
            result.service.close()
            baseline.close()

    def test_recovery_needs_a_config_source(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        EventJournal.create(path, {}).close()
        with pytest.raises(RecoveryError, match="config"):
            recover(path)

    def test_resume_durable_continues_the_same_journal(self,
                                                       tmp_path):
        stream = make_stream(40)
        journal, checkpoint_dir = durable_prefix(
            tmp_path, stream, 23, every=10)
        result = recover(journal, checkpoint_dir=checkpoint_dir)
        durable = result.resume_durable(checkpoint_every=10)
        try:
            durable.run(stream[result.events_processed:])
        finally:
            durable.close()

        scanned = scan_journal(journal)
        seqs = [entry.seq for entry in scanned.entries
                if entry.origin == "input"]
        assert seqs == list(range(len(stream)))
        baseline = OnlineAuctionService(CONFIG, engine_seed=SEED)
        baseline.run(stream)
        assert end_state(durable.service) == end_state(baseline)
        baseline.close()


class TestCrashAnywhereProperty:
    """Satellite 1: a random stream cut at a random index always
    recovers — records, balances, and emissions — for every method."""

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.data_too_large])
    @given(data=st.data())
    def test_random_crash_index_recovers_identically(self, data):
        method = data.draw(st.sampled_from(METHODS), label="method")
        stream_seed = data.draw(st.integers(0, 3),
                                label="stream_seed")
        every = data.draw(st.sampled_from((0, 7, 20)),
                          label="checkpoint_every")
        stream = make_stream(40, budget_low=3.0, budget_high=25.0,
                             topup_weight=1.5, seed=stream_seed)
        crash_at = data.draw(
            st.integers(1, len(stream) - 1), label="crash_at")

        baseline = OnlineAuctionService(CONFIG, method=method,
                                        engine_seed=SEED)
        expected = baseline.run(stream)
        expected_state = end_state(baseline)
        expected_emitted = list(baseline.emitted)
        baseline.close()

        with tempfile.TemporaryDirectory() as tmp:
            journal, checkpoint_dir = durable_prefix(
                Path(tmp), stream, crash_at, method=method,
                every=every)
            result = recover(
                journal,
                checkpoint_dir=checkpoint_dir if every else None)
            try:
                tail = result.service.run(stream[crash_at:])
                recovered = result.records + tail
                if every == 0:
                    # Genesis recovery replays everything: the whole
                    # trace and emission log must match exactly.
                    assert result.replayed_events == crash_at
                    assert diff_traces(expected,
                                       recovered).identical
                    assert len(recovered) == len(expected)
                    assert list(result.service.emitted) \
                        == expected_emitted
                else:
                    aligned, candidate = align_traces(expected,
                                                      recovered)
                    assert diff_traces(aligned, candidate).identical
                    rederived = list(result.service.emitted)
                    assert rederived == expected_emitted[
                        len(expected_emitted) - len(rederived):]
                assert end_state(result.service) == expected_state
            finally:
                result.service.close()
