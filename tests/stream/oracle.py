"""The shared service-equivalence harness of the oracle suites.

Every streaming correctness story in this repo reduces to the same
move: run two differently-configured services over the *same* event
stream and demand that everything observable agrees — auction records
(via :func:`repro.bench.records_identical`, which compares the
deterministic outcome fields and ignores timing stamps), final ledger
balances, the paused set, the service-originated emission log, and
provider revenue.  ``test_budget.py``, ``test_service.py``,
``test_supervision.py``, and the batching suites all phrase their
oracles through this module instead of re-growing ad-hoc copies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench import records_identical
from repro.stream import OnlineAuctionService


@dataclass
class ServiceOutcome:
    """Everything observable about one service run, as plain data —
    comparable after the service itself is closed."""

    records: list
    balances: dict
    paused: list
    emitted: list
    provider_revenue: float
    events_processed: int


def capture_outcome(service: OnlineAuctionService,
                    records) -> ServiceOutcome:
    """Freeze a live service's observable outputs."""
    return ServiceOutcome(
        records=list(records),
        balances=dict(service.registry.balances()),
        paused=list(service.paused_advertisers()),
        emitted=list(service.emitted),
        provider_revenue=service.accounts.provider_revenue,
        events_processed=service.events_processed)


def run_service(config, stream, **service_kwargs) -> ServiceOutcome:
    """Run a fresh service over ``stream`` and return its outcome.

    The service is always closed (sharded fleets must not leak worker
    processes out of a test), so the outcome carries everything a
    comparison needs.
    """
    with OnlineAuctionService(config, **service_kwargs) as service:
        records = service.run(stream)
        return capture_outcome(service, records)


def assert_outcomes_agree(first: ServiceOutcome,
                          second: ServiceOutcome) -> None:
    """The full equivalence oracle: records, balances, pause set,
    emissions, and provider revenue all bit-identical."""
    assert records_identical(first.records, second.records)
    assert first.balances == second.balances
    assert first.paused == second.paused
    assert first.emitted == second.emitted
    assert first.provider_revenue == second.provider_revenue


def assert_services_agree(first: OnlineAuctionService,
                          second: OnlineAuctionService,
                          first_records, second_records) -> None:
    """Equivalence oracle over two still-live services."""
    assert_outcomes_agree(capture_outcome(first, first_records),
                          capture_outcome(second, second_records))
