"""Self-healing under chaos: kill workers, demand bit-identity.

The supervision acceptance criterion from the robustness PR: killing
any single worker at any point mid-stream — for every serving method —
yields a *completed* run whose records are bit-identical to an
unfailed run, for both heal paths:

* **respawn** (restarts remain): the dead shard is rebuilt from the
  supervisor's retained capture + replayed history in a fresh process;
* **degraded re-shard** (restarts exhausted): every shard's pre-round
  state is reconstructed coordinator-side, merged, and re-split over
  one fewer worker.

Determinism rests on the stateful-evaluation replay argument in
:mod:`repro.runtime.supervision`; these tests are the proof by
execution, including a Hypothesis property that draws random kill
schedules.  The CLI/crash-site flavor of the same scenario lives in
``tests/stream/test_fault_injection.py``.
"""

from __future__ import annotations

import os
import signal

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench import records_identical
from repro.stream import OnlineAuctionService
from repro.workloads import (
    ChurnStreamConfig,
    PaperWorkload,
    PaperWorkloadConfig,
    generate_stream,
)
from tests.stream.oracle import run_service

CONFIG = PaperWorkloadConfig(num_advertisers=24, num_slots=3,
                             num_keywords=3, seed=1)
SEED = 3
METHODS = ("rh", "lp", "hungarian", "rhtalu")


@pytest.fixture(scope="module")
def stream():
    log = generate_stream(PaperWorkload(CONFIG), ChurnStreamConfig(
        num_events=90, churn_rate=0.3, genesis=14, min_active=5,
        seed=7))
    counts = log.counts_by_kind()
    assert counts["leave"] >= 2 and counts["query"] >= 40
    return list(log)


@pytest.fixture(scope="module")
def baselines(stream):
    """Unfailed workers=0 oracle outcomes, one run per method."""
    return {method: run_service(CONFIG, stream, method=method,
                                engine_seed=SEED)
            for method in METHODS}


def run_with_kills(stream, method, kill_at, max_worker_restarts,
                   workers=2, capture_every=50):
    """Drive a supervised service, SIGKILLing one live worker just
    before each event index in ``kill_at``; returns (records, svc
    stats dict, workers at end)."""
    with OnlineAuctionService(
            CONFIG, method=method, workers=workers, engine_seed=SEED,
            supervise=True, round_timeout=60.0,
            max_worker_restarts=max_worker_restarts) as service:
        runtime = service.backend.runtime
        runtime.capture_every = capture_every
        runtime._ensure_started()  # the fleet spawns lazily; kills
        # before the first query need live processes to target
        records = []
        kills = sorted(kill_at)
        for index, event in enumerate(stream):
            while kills and kills[0] == index:
                kills.pop(0)
                processes = runtime._processes
                if processes:
                    victim = processes[index % len(processes)]
                    if victim.is_alive():
                        os.kill(victim.pid, signal.SIGKILL)
            record = service.process(event)
            if record is not None:
                records.append(record)
        stats = service.backend.supervision_snapshot()
        return (records, stats, runtime.plan.num_shards,
                service.accounts.provider_revenue)


class TestRespawnPath:
    @pytest.mark.parametrize("method", METHODS)
    def test_single_kill_heals_bit_identically(self, method, stream,
                                               baselines):
        baseline = baselines[method]
        records, stats, workers, got_revenue = run_with_kills(
            stream, method, kill_at=[30], max_worker_restarts=5)
        assert stats["respawns"] >= 1
        assert stats["reshards"] == 0
        assert workers == 2  # fleet size preserved
        assert records_identical(baseline.records, records)
        assert got_revenue == baseline.provider_revenue

    def test_repeated_kills_heal(self, stream, baselines):
        baseline = baselines["rh"]
        records, stats, workers, got_revenue = run_with_kills(
            stream, "rh", kill_at=[15, 40, 70],
            max_worker_restarts=10)
        assert stats["respawns"] >= 3
        assert records_identical(baseline.records, records)
        assert got_revenue == baseline.provider_revenue

    def test_kill_with_short_capture_cadence(self, stream, baselines):
        # A tight capture_every forces mid-stream refreshes, so the
        # heal replays from a *refreshed* capture, not genesis.
        expected = baselines["rh"].records
        records, stats, _, _ = run_with_kills(
            stream, "rh", kill_at=[60], max_worker_restarts=5,
            capture_every=10)
        assert stats["respawns"] >= 1
        assert records_identical(expected, records)


class TestDegradedPath:
    @pytest.mark.parametrize("method", METHODS)
    def test_exhausted_restarts_reshard_bit_identically(
            self, method, stream, baselines):
        baseline = baselines[method]
        records, stats, workers, got_revenue = run_with_kills(
            stream, method, kill_at=[30], max_worker_restarts=0)
        assert stats["reshards"] == 1
        assert stats["respawns"] == 0
        assert workers == 1  # degraded: one fewer shard
        assert records_identical(baseline.records, records)
        assert got_revenue == baseline.provider_revenue

    def test_mixed_respawn_then_degrade(self, stream, baselines):
        # First kill respawns (budget 1); the second kill of the
        # *same* shard would degrade — killing by rotating index, at
        # least one path of each kind should fire across three kills.
        baseline = baselines["rh"]
        records, stats, workers, got_revenue = run_with_kills(
            stream, "rh", kill_at=[20, 45, 70],
            max_worker_restarts=1, workers=3)
        assert stats["worker_failures"] >= 3
        assert records_identical(baseline.records, records)
        assert got_revenue == baseline.provider_revenue

    def test_single_worker_fleet_cannot_degrade(self, stream):
        from repro.runtime import WorkerFailure

        with pytest.raises(WorkerFailure, match="cannot"):
            run_with_kills(stream, "rh", kill_at=[30],
                           max_worker_restarts=0, workers=1)


class TestSupervisionSurface:
    def test_supervise_requires_workers(self):
        with pytest.raises(ValueError, match="supervis"):
            OnlineAuctionService(CONFIG, supervise=True, workers=0)

    def test_stats_flow_into_event_timings(self, stream):
        records, stats, _, _ = run_with_kills(
            stream, "rh", kill_at=[30], max_worker_restarts=5)
        assert stats["worker_failures"] >= 1
        assert stats["heals"] == stats["worker_failures"]
        assert stats["mean_heal_seconds"] > 0
        assert stats["max_heal_seconds"] >= stats["mean_heal_seconds"]

    def test_unfailed_supervised_run_matches_and_reports_zero(
            self, stream, baselines):
        expected = baselines["lp"].records
        with OnlineAuctionService(CONFIG, method="lp", workers=2,
                                  engine_seed=SEED,
                                  supervise=True) as service:
            records = service.run(stream)
            stats = service.backend.supervision_snapshot()
        assert records_identical(expected, records)
        assert stats["worker_failures"] == 0
        # The supervision block is schema-stable: always present,
        # all-zero when nothing failed (dashboards key on it without
        # probing for its existence).
        supervision = service.stats.to_dict()["supervision"]
        assert supervision["worker_failures"] == 0
        assert supervision["respawns"] == 0
        assert supervision["reshards"] == 0
        assert supervision["heals"] == 0

    def test_snapshot_after_heal_restores(self, stream, baselines):
        # A service that healed mid-stream still snapshots, and the
        # restored service (fresh, unsupervised fleet) continues the
        # stream bit-identically to the oracle.
        expected = baselines["rh"].records
        with OnlineAuctionService(CONFIG, method="rh", workers=2,
                                  engine_seed=SEED, supervise=True,
                                  max_worker_restarts=0) as service:
            runtime = service.backend.runtime
            records = []
            for index, event in enumerate(stream[:60]):
                if index == 30:
                    os.kill(runtime._processes[0].pid,
                            signal.SIGKILL)
                record = service.process(event)
                if record is not None:
                    records.append(record)
            assert service.backend.supervision_snapshot()[
                "reshards"] == 1
            snapshot = service.snapshot()
        resumed = OnlineAuctionService.restore(snapshot, workers=2)
        try:
            records += resumed.run(stream[60:])
        finally:
            resumed.close()
        assert records_identical(expected, records)


class TestRandomKillSchedules:
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_any_kill_schedule_is_bit_identical(self, data):
        method = data.draw(st.sampled_from(METHODS))
        restarts = data.draw(st.integers(0, 2))
        stream = generate_stream(
            PaperWorkload(CONFIG), ChurnStreamConfig(
                num_events=50, churn_rate=0.3, genesis=12,
                min_active=4, seed=7))
        stream = list(stream)
        # A zero restart budget degrades 2 -> 1 worker on the first
        # kill; a second kill would (correctly) be unhealable, so
        # bound the schedule by the heal capacity.
        max_kills = 1 if restarts == 0 else 2
        kill_at = data.draw(st.lists(
            st.integers(1, len(stream) - 1), min_size=1,
            max_size=max_kills, unique=True))
        baseline = OnlineAuctionService(CONFIG, method=method,
                                        engine_seed=SEED)
        expected = baseline.run(stream)
        records, stats, _, revenue = run_with_kills(
            stream, method, kill_at=kill_at,
            max_worker_restarts=restarts, workers=2)
        assert stats["worker_failures"] >= 1
        assert records_identical(expected, records)
        assert revenue == baseline.accounts.provider_revenue
