"""The event model and the deterministic churn generator."""

from __future__ import annotations

import pytest

from repro.stream import (
    AdvertiserJoin,
    AdvertiserLeave,
    AdvertiserPaused,
    AdvertiserResumed,
    BidProgramUpdate,
    BudgetTopUp,
    EventLog,
    QueryArrival,
    event_kind,
)
from repro.workloads import (
    ChurnStreamConfig,
    PaperWorkload,
    PaperWorkloadConfig,
    generate_stream,
)


def build_workload(n=30, slots=4, keywords=3, seed=5):
    return PaperWorkload(PaperWorkloadConfig(
        num_advertisers=n, num_slots=slots, num_keywords=keywords,
        seed=seed))


class TestEventLog:
    def test_jsonl_roundtrip_is_exact(self, tmp_path):
        log = EventLog([
            AdvertiserJoin(advertiser=3, target=1.5,
                           bids=(1.0, 2.0), maxbids=(4.0, 5.0),
                           values=(4.0, 5.0), budget=100.0),
            QueryArrival("kw1"),
            BidProgramUpdate(advertiser=3, keyword="kw0", bid=0.25,
                             maxbid=3.0),
            BudgetTopUp(advertiser=3, amount=12.5),
            AdvertiserLeave(advertiser=3),
        ])
        path = tmp_path / "events.jsonl"
        log.to_jsonl(path)
        assert EventLog.from_jsonl(path).events == log.events

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "martian"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="martian"):
            EventLog.from_jsonl(path)

    def test_prefix_and_slice(self):
        log = EventLog([QueryArrival("a"), QueryArrival("b"),
                        QueryArrival("c")])
        assert len(log.prefix(2)) == 2
        tail = log[1:]
        assert isinstance(tail, EventLog)
        assert [event.keyword for event in tail] == ["b", "c"]

    def test_event_kinds(self):
        assert event_kind(QueryArrival("kw")) == "query"
        assert event_kind(AdvertiserLeave(1)) == "leave"
        assert event_kind(AdvertiserPaused(1)) == "paused"
        assert event_kind(AdvertiserResumed(1)) == "resumed"

    def test_service_originated_events_roundtrip_jsonl(self,
                                                       tmp_path):
        # The emitted journal serializes like any other log (audits
        # persist it), even though it is never valid service input.
        log = EventLog([AdvertiserPaused(advertiser=4, auction_id=17),
                        AdvertiserResumed(advertiser=4,
                                          auction_id=30)])
        path = tmp_path / "emitted.jsonl"
        log.to_jsonl(path)
        assert EventLog.from_jsonl(path).events == log.events


class TestChurnGenerator:
    def test_deterministic(self):
        workload = build_workload()
        config = ChurnStreamConfig(num_events=120, churn_rate=0.3,
                                   genesis=15, seed=9)
        first = generate_stream(workload, config)
        second = generate_stream(workload, config)
        assert first.events == second.events

    def test_genesis_joins_come_first(self):
        workload = build_workload()
        stream = generate_stream(workload, ChurnStreamConfig(
            num_events=50, churn_rate=0.2, genesis=12, seed=1))
        head = stream.events[:12]
        assert all(isinstance(event, AdvertiserJoin)
                   for event in head)
        assert sorted(event.advertiser for event in head) \
            == list(range(12))
        assert len(stream) == 12 + 50

    def test_stream_respects_population_invariants(self):
        workload = build_workload()
        config = ChurnStreamConfig(num_events=300, churn_rate=0.5,
                                   genesis=10, min_active=4, seed=3)
        stream = generate_stream(workload, config)
        active: set[int] = set()
        for event in stream:
            if isinstance(event, AdvertiserJoin):
                assert event.advertiser not in active
                assert 0 <= event.advertiser < 30
                active.add(event.advertiser)
            elif isinstance(event, AdvertiserLeave):
                assert event.advertiser in active
                active.remove(event.advertiser)
                assert len(active) >= config.min_active
            elif isinstance(event, (BidProgramUpdate, BudgetTopUp)):
                assert event.advertiser in active
        counts = stream.counts_by_kind()
        assert counts["leave"] > 0 and counts["join"] > 10
        assert counts["update"] > 0

    def test_join_carries_the_workload_program(self):
        workload = build_workload()
        stream = generate_stream(workload, ChurnStreamConfig(
            num_events=0, genesis=5, seed=2))
        join = stream[0]
        assert join.maxbids == tuple(float(v)
                                     for v in workload.values[0])
        assert join.bids == tuple(
            workload.initial_bid(0, j) for j in range(3))
        assert join.target == float(workload.targets[0])

    def test_zero_churn_is_all_queries_after_genesis(self):
        workload = build_workload()
        stream = generate_stream(workload, ChurnStreamConfig(
            num_events=40, churn_rate=0.0, genesis=8, seed=4))
        body = stream.events[8:]
        assert all(isinstance(event, QueryArrival) for event in body)

    def test_bad_configs_rejected(self):
        workload = build_workload()
        with pytest.raises(ValueError):
            ChurnStreamConfig(num_events=10, churn_rate=1.5)
        with pytest.raises(ValueError):
            ChurnStreamConfig(num_events=-1)
        with pytest.raises(ValueError):
            generate_stream(workload, ChurnStreamConfig(
                num_events=1, genesis=31))
