"""Fault-injection harness for the durability layer.

The tentpole's proof machinery: launch a *durable* replay run
(``repro stream --replay --journal --checkpoint-every``) in a
subprocess with :data:`repro.stream.crash.ENV_VAR` armed so the
process kills itself at a chosen crash site, assert the process
really died, then :func:`repro.stream.recovery.recover` from the
surviving journal + checkpoint directory — optionally onto a
**different worker count** — replay the not-yet-journaled remainder
of the input stream, and diff the recovered trace against an
uninterrupted baseline with :func:`~repro.stream.replay.align_traces`
+ :func:`~repro.stream.replay.diff_traces` (or the operator-facing
``tools/trace_diff.py --align``, which must exit 0).

Importable helpers only — the scenario matrix lives in
``tests/stream/test_fault_injection.py``.
"""

from __future__ import annotations

import os
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.auction.events import AuctionRecord
from repro.auction.trace import write_trace
from repro.stream import EventLog, align_traces, diff_traces, recover
from repro.stream.crash import ENV_VAR, EXIT_CODE, CrashPoint
from repro.stream.recovery import RecoveryResult
from repro.stream.replay import TraceDiff
from repro.workloads import PaperWorkloadConfig

REPO = Path(__file__).resolve().parent.parent.parent
SRC = REPO / "src"


@dataclass
class CrashedRun:
    """What a crashed durable run left behind (plus how it died)."""

    proc: subprocess.CompletedProcess
    journal: Path
    checkpoint_dir: Path
    config: PaperWorkloadConfig
    seed: int

    @property
    def engine_seed(self) -> int:
        """The CLI derives the decision seed as ``--seed`` + 1."""
        return self.seed + 1


def run_crashing_stream(tmp_path: Path, events_path: Path,
                        crash: CrashPoint,
                        config: PaperWorkloadConfig, *,
                        method: str = "rh", workers: int = 0,
                        seed: int = 0, checkpoint_every: int = 20,
                        checkpoint_retain: int = 2,
                        batch_window: int = 0,
                        timeout: float = 240.0) -> CrashedRun:
    """Run a durable CLI replay with a crash point armed.

    The subprocess boundary is the point: ``os._exit`` mid-round is a
    genuine process death (spawned shard workers included — they
    inherit the armed environment), not an in-process exception, so
    whatever the journal and checkpoint directory hold afterwards is
    exactly what a real crash would leave.
    """
    journal = tmp_path / "journal.jsonl"
    checkpoint_dir = tmp_path / "checkpoints"
    cmd = [
        sys.executable, "-m", "repro", "stream",
        "--advertisers", str(config.num_advertisers),
        "--slots", str(config.num_slots),
        "--keywords", str(config.num_keywords),
        "--method", method,
        "--workers", str(workers),
        "--seed", str(seed),
        "--replay", str(events_path),
        "--journal", str(journal),
        "--checkpoint-every", str(checkpoint_every),
        "--checkpoint-dir", str(checkpoint_dir),
        "--checkpoint-retain", str(checkpoint_retain),
    ]
    if batch_window:
        cmd += ["--batch-window", str(batch_window)]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env[ENV_VAR] = crash.to_env()
    proc = subprocess.run(cmd, cwd=REPO, env=env,
                          capture_output=True, text=True,
                          timeout=timeout)
    return CrashedRun(proc=proc, journal=journal,
                      checkpoint_dir=checkpoint_dir, config=config,
                      seed=seed)


def run_supervised_stream(tmp_path: Path, events_path: Path,
                          crash: CrashPoint,
                          config: PaperWorkloadConfig, *,
                          method: str = "rh", workers: int = 2,
                          seed: int = 0,
                          max_worker_restarts: int = 1,
                          round_timeout: float = 60.0,
                          timeout: float = 240.0
                          ) -> tuple[subprocess.CompletedProcess,
                                     Path]:
    """Run a *supervised* CLI replay with a worker-kill site armed.

    The inverse of :func:`run_crashing_stream`'s contract: the armed
    crash point kills a shard **worker** (scope it with ``gen=0`` so
    the healed replacement, which declares a higher generation,
    survives), and the run is expected to *complete* — the supervisor
    heals the shard and the trace written to the returned path must
    diff empty against an unfailed run.
    """
    trace = tmp_path / "supervised_trace.jsonl"
    cmd = [
        sys.executable, "-m", "repro", "stream",
        "--advertisers", str(config.num_advertisers),
        "--slots", str(config.num_slots),
        "--keywords", str(config.num_keywords),
        "--method", method,
        "--workers", str(workers),
        "--seed", str(seed),
        "--replay", str(events_path),
        "--supervise",
        "--round-timeout", str(round_timeout),
        "--max-worker-restarts", str(max_worker_restarts),
        "--trace", str(trace),
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env[ENV_VAR] = crash.to_env()
    proc = subprocess.run(cmd, cwd=REPO, env=env,
                          capture_output=True, text=True,
                          timeout=timeout)
    return proc, trace


def assert_crashed(run: CrashedRun) -> None:
    """The run must have died, not completed.

    A crash site reached in the driving process exits with the
    dedicated :data:`~repro.stream.crash.EXIT_CODE`; killing a shard
    *worker* instead takes the coordinator down through a broken pipe,
    which surfaces as an ordinary non-zero exit.  Either way the
    journal must exist — durability starts before the first event.
    """
    assert run.proc.returncode != 0, (
        f"expected a crash, run completed:\n{run.proc.stdout}")
    assert run.journal.exists()


def recover_and_resume(run: CrashedRun, stream: EventLog, *,
                       workers: int | None = None
                       ) -> tuple[RecoveryResult, list[AuctionRecord]]:
    """``recover()`` + remaining-suffix replay.

    Returns the recovery result and the full recovered suffix trace:
    the records replayed from the journal followed by the records from
    feeding the service the input events it never journaled.
    """
    result = recover(run.journal, checkpoint_dir=run.checkpoint_dir,
                     workers=workers)
    try:
        tail = result.service.run(stream[result.events_processed:])
    finally:
        result.service.close()
    return result, result.records + tail


def audit(baseline: list[AuctionRecord],
          recovered: list[AuctionRecord]) -> TraceDiff:
    """Align-and-diff: the recovered trace is a suffix, so the
    baseline is first trimmed to its auction-id span."""
    aligned, candidate = align_traces(baseline, recovered)
    assert candidate, "recovered trace is empty — nothing audited"
    return diff_traces(aligned, candidate)


def audit_via_cli(tmp_path: Path, baseline: list[AuctionRecord],
                  recovered: list[AuctionRecord]
                  ) -> subprocess.CompletedProcess:
    """The same audit through ``tools/trace_diff.py --align`` — the
    operator path, which gates on exit status."""
    recovered_path = tmp_path / "recovered_trace.jsonl"
    write_trace(recovered_path, recovered)
    return audit_trace_file(tmp_path, baseline, recovered_path)


def audit_trace_file(tmp_path: Path, baseline: list[AuctionRecord],
                     trace_path: Path
                     ) -> subprocess.CompletedProcess:
    """``tools/trace_diff.py --align`` against an on-disk trace (e.g.
    the one a supervised CLI run wrote)."""
    baseline_path = tmp_path / "baseline_trace.jsonl"
    write_trace(baseline_path, baseline)
    return subprocess.run(
        [sys.executable, str(REPO / "tools" / "trace_diff.py"),
         "--align", str(baseline_path), str(trace_path)],
        cwd=REPO, capture_output=True, text=True, timeout=120)
