"""Crash-recovery acceptance matrix: every danger window, every method.

Each scenario kills a durable CLI replay at an instrumented crash site
(:mod:`repro.stream.crash`), recovers from whatever the crash left on
disk, resumes the remaining input suffix, and requires the recovered
trace to diff **empty** against an uninterrupted run — recovering at a
*different worker count* than the crashed run every time (in-process
casualties restore sharded, sharded casualties restore in-process).

Scenarios (for each of ``rh`` / ``lp`` / ``hungarian`` / ``rhtalu``):

* ``worker-mid-round`` — a shard worker dies mid-round; the
  coordinator goes down with the broken pipe.
* ``between-checkpoint-and-journal-flush`` — the coordinator dies
  right after a checkpoint is durable, before the next event's
  journal append.
* ``torn-checkpoint`` — death mid-checkpoint-write leaves a torn
  snapshot file; recovery must skip it and fall back.
* ``torn-journal-tail`` — death mid-journal-append leaves a torn
  final entry; recovery must drop it (it was never applied).

:class:`TestBatchedCrashRecovery` runs the micro-batching flavor of
the same contract — ``batch-post-flush`` (a whole window journaled,
none of it applied) and ``batch-mid-window`` (death between in-window
applies) with ``--batch-window`` armed, recovered *unbatched*.

The supervised flavor (:class:`TestSupervisedChaos`) flips the
contract: the same worker-kill sites, scoped to one generation-0
worker, armed against ``repro stream --supervise`` — and the run must
**complete** with exit 0 (the supervisor heals the shard in place),
its trace diffing empty against an unfailed baseline through the
operator's ``tools/trace_diff.py --align``.
"""

from __future__ import annotations

import pytest

from repro.stream import OnlineAuctionService
from repro.stream.crash import EXIT_CODE, CrashPoint
from repro.workloads import (
    ChurnStreamConfig,
    PaperWorkload,
    PaperWorkloadConfig,
    generate_stream,
)
from tests.stream.fault_injection import (
    assert_crashed,
    audit,
    audit_trace_file,
    audit_via_cli,
    recover_and_resume,
    run_crashing_stream,
    run_supervised_stream,
)

SEED = 4
CONFIG = PaperWorkloadConfig(num_advertisers=24, num_slots=3,
                             num_keywords=2, seed=SEED)
ENGINE_SEED = SEED + 1  # the CLI's --seed + 1 derivation
CHECKPOINT_EVERY = 20
METHODS = ("rh", "lp", "hungarian", "rhtalu")

# (crash point, crashed run's workers, recovery's workers) — the two
# worker counts always differ; that asymmetry is part of the claim.
SCENARIOS = [
    pytest.param("worker-mid-round@9", 2, 0,
                 id="worker-mid-round"),
    pytest.param("service-post-checkpoint@1", 2, 0,
                 id="between-checkpoint-and-journal-flush"),
    pytest.param("checkpoint-mid-write@2", 0, 1,
                 id="torn-checkpoint"),
    pytest.param("journal-mid-write@45", 0, 1,
                 id="torn-journal-tail"),
]


@pytest.fixture(scope="module")
def stream():
    workload = PaperWorkload(CONFIG)
    return generate_stream(workload, ChurnStreamConfig(
        num_events=70, churn_rate=0.25, genesis=12, min_active=4,
        budget_low=4.0, budget_high=30.0, seed=11))


@pytest.fixture(scope="module")
def events_path(stream, tmp_path_factory):
    path = tmp_path_factory.mktemp("fault") / "events.jsonl"
    stream.to_jsonl(path)
    return path


@pytest.fixture(scope="module", params=METHODS)
def method(request):
    return request.param


@pytest.fixture(scope="module")
def baseline(method, stream):
    """The uninterrupted run's trace (in-process; worker count is
    already proven irrelevant to the records by the service tests)."""
    service = OnlineAuctionService(CONFIG, method=method,
                                   engine_seed=ENGINE_SEED)
    try:
        return service.run(stream)
    finally:
        service.close()


class TestCrashRecoveryMatrix:
    @pytest.mark.parametrize(
        "site, crashed_workers, recovery_workers", SCENARIOS)
    def test_recovered_trace_diffs_empty(self, tmp_path, events_path,
                                         stream, baseline, method,
                                         site, crashed_workers,
                                         recovery_workers):
        run = run_crashing_stream(
            tmp_path, events_path, CrashPoint.from_env(site), CONFIG,
            method=method, workers=crashed_workers, seed=SEED,
            checkpoint_every=CHECKPOINT_EVERY)
        assert_crashed(run)
        if crashed_workers == 0:
            # The crash site fired in the driving process itself.
            assert run.proc.returncode == EXIT_CODE

        result, recovered = recover_and_resume(
            run, stream, workers=recovery_workers)

        if site.startswith("checkpoint-mid-write"):
            # The torn second checkpoint must be skipped, falling
            # back to the first (watermark 20).
            assert result.checkpoints_skipped >= 1
            assert result.checkpoint_events == CHECKPOINT_EVERY
        if site.startswith("journal-mid-write"):
            # The half-written append is dropped: that event was
            # never applied, and the resume re-supplies it.
            assert result.torn_tail

        diff = audit(baseline, recovered)
        assert diff.identical, diff.format_report()
        # Fully resumed: the recovered suffix reaches the same final
        # auction as the uninterrupted run.
        assert recovered[-1].auction_id == baseline[-1].auction_id


class TestBatchedCrashRecovery:
    """The micro-batching danger windows (``--batch-window`` armed).

    ``batch-post-flush`` dies right after a whole window's inputs hit
    the journal behind the fsync barrier but before *any* of them is
    applied — the maximal journaled-but-unapplied gap batching can
    create.  ``batch-mid-window`` dies between in-window applies, the
    classic mid-batch kill.  Recovery is always *unbatched* (and at a
    different worker count): the journal must carry no batch
    boundaries for recovery to care about.
    """

    BATCHED = [
        pytest.param("batch-post-flush@2", 0, 1,
                     id="batch-post-flush"),
        pytest.param("batch-mid-window@5", 0, 1,
                     id="batch-mid-window"),
        pytest.param("batch-mid-window@3", 2, 0,
                     id="batch-mid-window-sharded"),
    ]

    @pytest.mark.parametrize(
        "site, crashed_workers, recovery_workers", BATCHED)
    def test_recovered_trace_diffs_empty(self, tmp_path, events_path,
                                         stream, baseline, method,
                                         site, crashed_workers,
                                         recovery_workers):
        run = run_crashing_stream(
            tmp_path, events_path, CrashPoint.from_env(site), CONFIG,
            method=method, workers=crashed_workers, seed=SEED,
            checkpoint_every=CHECKPOINT_EVERY, batch_window=8)
        assert_crashed(run)
        # Batch crash sites fire in the coordinator, worker count
        # notwithstanding.
        assert run.proc.returncode == EXIT_CODE

        result, recovered = recover_and_resume(
            run, stream, workers=recovery_workers)
        if site.startswith("batch-post-flush"):
            # The barrier made the whole window durable before the
            # crash: recovery must replay journaled-but-unapplied
            # input entries.
            assert result.replayed_events > 0

        diff = audit(baseline, recovered)
        assert diff.identical, diff.format_report()
        assert recovered[-1].auction_id == baseline[-1].auction_id


class TestSupervisedChaos:
    """The same worker kills, but with ``--supervise`` on: completion,
    not a crash, is the passing outcome.

    Each crash point is scoped to ``gen=0`` so the replacement worker
    (which declares a higher generation after a respawn, and so does
    the re-planned fleet after a degrade) survives the still-armed
    environment it inherits.
    """

    SUPERVISED = [
        # (site spec, max restarts, counter that must move)
        pytest.param("worker-mid-round:shard=1,gen=0@5", 1,
                     "respawns", id="mid-round-respawn"),
        pytest.param("worker-idle:shard=1,gen=0@5", 1,
                     "respawns", id="idle-respawn"),
        pytest.param("worker-mid-round:shard=0,gen=0@5", 0,
                     "reshards", id="mid-round-degraded"),
    ]

    @pytest.mark.parametrize("site, restarts, counter", SUPERVISED)
    def test_supervised_run_completes_and_diffs_empty(
            self, tmp_path, events_path, baseline, method, site,
            restarts, counter):
        proc, trace = run_supervised_stream(
            tmp_path, events_path, CrashPoint.from_env(site), CONFIG,
            method=method, workers=2, seed=SEED,
            max_worker_restarts=restarts)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        # The summary proves the kill actually landed and was healed
        # (rather than the site never firing).
        assert "supervision:" in proc.stdout, proc.stdout
        healed_nothing = ("0 respawns" if counter == "respawns"
                          else "0 re-shards")
        assert healed_nothing not in proc.stdout, proc.stdout

        audit_proc = audit_trace_file(tmp_path, baseline, trace)
        assert audit_proc.returncode == 0, \
            audit_proc.stdout + audit_proc.stderr
        assert "identical" in audit_proc.stdout

    def test_unsupervised_same_site_still_crashes(
            self, tmp_path, events_path):
        """Control: without ``--supervise`` the identical scoped kill
        is fatal (the matrix covers the unscoped case per method)."""
        run = run_crashing_stream(
            tmp_path, events_path,
            CrashPoint.from_env("worker-mid-round:shard=1,gen=0@5"),
            CONFIG, method="rh", workers=2, seed=SEED,
            checkpoint_every=CHECKPOINT_EVERY)
        assert_crashed(run)


class TestOperatorAudit:
    def test_trace_diff_cli_align_gates_on_exit_status(
            self, tmp_path, events_path, stream):
        """The runbook path end-to-end: crash after an applied event,
        recover onto 2 workers, audit with ``trace_diff.py --align``
        (exit 0 == AUDIT CLEAN)."""
        service = OnlineAuctionService(CONFIG, method="rh",
                                       engine_seed=ENGINE_SEED)
        try:
            baseline = service.run(stream)
        finally:
            service.close()
        run = run_crashing_stream(
            tmp_path, events_path,
            CrashPoint.from_env("service-post-apply@37"), CONFIG,
            method="rh", workers=0, seed=SEED,
            checkpoint_every=CHECKPOINT_EVERY)
        assert_crashed(run)
        assert run.proc.returncode == EXIT_CODE

        result, recovered = recover_and_resume(run, stream, workers=2)
        assert result.replayed_events > 0

        proc = audit_via_cli(tmp_path, baseline, recovered)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "identical" in proc.stdout
