"""Micro-batching oracle suite: batched serving is bit-identical.

The adaptive micro-batcher (:mod:`repro.stream.batching`) is a pure
dispatch transform — it may only change *when* work is amortized,
never any observable outcome.  This suite is the proof:

* unit semantics of :class:`~repro.stream.batching.MicroBatcher` —
  window capping, control-event flushes, adaptive unit sizing, delay
  vs shed backpressure, and the shed audit log;
* the service-level oracle — batched runs equal unbatched runs equal
  rebuild-maintenance runs (records, balances, pause set, emissions,
  provider revenue) for every method, window size, and the sharded
  runtime, over a budget-pressure stream that pauses and re-admits
  advertisers mid-window;
* the durable path — a batched journal is per-origin entry-identical
  to the unbatched journal, and :func:`repro.stream.recover` replays
  it to the same state with zero batching awareness;
* shed mode — dropping is confined to queries, and the serviced
  stream equals the input stream minus exactly the shed log, proven
  by replaying that filtered stream unbatched;
* :class:`~repro.bench.stream_stats.EventTimings` batch attribution —
  window wall time amortizes per event, windows land in the
  ``batching`` block, and :meth:`absorb` merges spliced runs;
* a Hypothesis property — any generated churn/budget stream under any
  drawn window/capacity schedule stays bit-identical for any method.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench import records_identical
from repro.bench.stream_stats import EventTimings
from repro.stream import (
    BACKPRESSURE_MODES,
    BatchingConfig,
    DurableAuctionService,
    MicroBatcher,
    OnlineAuctionService,
    recover,
    scan_journal,
)
from repro.stream.events import (
    AdvertiserLeave,
    BudgetTopUp,
    QueryArrival,
)
from repro.workloads import (
    ChurnStreamConfig,
    PaperWorkload,
    PaperWorkloadConfig,
    generate_stream,
)
from tests.stream.oracle import assert_outcomes_agree, run_service

CONFIG = PaperWorkloadConfig(num_advertisers=24, num_slots=3,
                             num_keywords=2, seed=1)
SEED = 3
METHODS = ("rh", "lp", "hungarian", "rhtalu")
WINDOWS = (1, 4, 16)


def make_stream(num_events: int, *, seed: int = 11):
    """Budget-pressure churn stream: pauses and re-admissions land
    inside query windows, which is exactly what the window-cache
    invalidation has to survive."""
    return generate_stream(PaperWorkload(CONFIG), ChurnStreamConfig(
        num_events=num_events, churn_rate=0.25, genesis=12,
        min_active=4, budget_low=3.0, budget_high=25.0,
        topup_weight=2.0, seed=seed))


@pytest.fixture(scope="module")
def pressure_stream():
    log = make_stream(160)
    counts = log.counts_by_kind()
    assert counts["query"] >= 80 and counts["topup"] >= 5
    return log


@pytest.fixture(scope="module")
def unbatched(pressure_stream):
    """Per-method unbatched oracle outcomes, computed once."""
    return {method: run_service(CONFIG, pressure_stream,
                                method=method, engine_seed=SEED)
            for method in METHODS}


class TestBatchingConfig:
    def test_defaults_are_valid(self):
        config = BatchingConfig()
        assert config.window == 16
        assert config.backpressure in BACKPRESSURE_MODES

    @pytest.mark.parametrize("kwargs", [
        {"window": 0},
        {"ingress_capacity": 0},
        {"backpressure": "drop"},
        {"arrival_rate": 0.0},
        {"arrival_rate": -1.0},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            BatchingConfig(**kwargs)


class TestMicroBatcher:
    def queries(self, count):
        return [QueryArrival(keyword=f"kw{i}") for i in range(count)]

    def test_run_capped_at_window(self):
        events = self.queries(10)
        batcher = MicroBatcher(BatchingConfig(window=4,
                                              ingress_capacity=64))
        units = list(batcher.units(events))
        assert [len(unit) for unit in units] == [4, 4, 2]
        assert [e for unit in units for e in unit] == events
        assert batcher.windows == 3
        assert batcher.batched_queries == 10
        assert batcher.max_window == 4

    def test_control_event_flushes_window(self):
        events = (self.queries(3) + [AdvertiserLeave(advertiser=1)]
                  + self.queries(2) + [BudgetTopUp(advertiser=2,
                                                   amount=5.0)])
        batcher = MicroBatcher(BatchingConfig(window=16))
        units = list(batcher.units(events))
        assert len(units[0]) == 3
        assert units[1] == events[3]  # control: bare event, not list
        assert len(units[2]) == 2
        assert units[3] == events[6]
        assert batcher.max_window == 3

    def test_shallow_queue_dispatches_immediately(self):
        # Capacity 2 keeps the queue shallower than the window: the
        # adaptive policy dispatches what is present instead of
        # idling until the window fills.
        batcher = MicroBatcher(BatchingConfig(window=16,
                                              ingress_capacity=2))
        units = list(batcher.units(self.queries(6)))
        assert all(isinstance(unit, list) for unit in units)
        assert all(len(unit) <= 2 for unit in units)
        assert sum(len(unit) for unit in units) == 6
        assert batcher.shed_count == 0  # delay mode never drops

    def test_delay_mode_is_lossless_in_order(self):
        events = (self.queries(5) + [AdvertiserLeave(advertiser=1)]
                  + self.queries(7))
        batcher = MicroBatcher(BatchingConfig(window=3,
                                              ingress_capacity=4))
        flat = []
        for unit in batcher.units(events):
            flat.extend(unit if isinstance(unit, list) else [unit])
        assert flat == events
        assert batcher.shed_count == 0

    def test_shed_drops_only_queries(self):
        # Rate 3 admissions per serviced event against capacity 2:
        # the queue saturates and overflow queries drop, but the
        # control event threaded through the middle always enters.
        events = (self.queries(10) + [BudgetTopUp(advertiser=2,
                                                  amount=5.0)]
                  + self.queries(10))
        stats = EventTimings()
        batcher = MicroBatcher(
            BatchingConfig(window=2, ingress_capacity=2,
                           backpressure="shed", arrival_rate=3.0),
            stats=stats)
        flat = []
        for unit in batcher.units(events):
            flat.extend(unit if isinstance(unit, list) else [unit])
        assert batcher.shed_count > 0
        assert all(isinstance(e, QueryArrival) for e in batcher.shed)
        assert events[10] in flat  # the top-up was admitted
        serviced_ids = {id(e) for e in flat}
        shed_ids = {id(e) for e in batcher.shed}
        assert serviced_ids.isdisjoint(shed_ids)
        assert serviced_ids | shed_ids == {id(e) for e in events}
        assert stats.batching["shed"] == {
            "query": batcher.shed_count}


class TestBatchedOracle:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("window", WINDOWS)
    def test_batched_equals_unbatched(self, method, window,
                                      pressure_stream, unbatched):
        batched = run_service(
            CONFIG, pressure_stream, method=method, engine_seed=SEED,
            batching=BatchingConfig(window=window,
                                    ingress_capacity=32))
        assert_outcomes_agree(unbatched[method], batched)

    @pytest.mark.parametrize("method", ["rh", "rhtalu"])
    def test_batched_equals_rebuild(self, method, pressure_stream,
                                    unbatched):
        rebuild = run_service(CONFIG, pressure_stream, method=method,
                              maintenance="rebuild", engine_seed=SEED)
        batched = run_service(CONFIG, pressure_stream, method=method,
                              engine_seed=SEED,
                              batching=BatchingConfig(window=8))
        assert_outcomes_agree(rebuild, batched)

    def test_batched_rebuild_maintenance(self, pressure_stream,
                                         unbatched):
        # Batching composes with rebuild maintenance too.
        batched = run_service(CONFIG, pressure_stream, method="rh",
                              maintenance="rebuild", engine_seed=SEED,
                              batching=BatchingConfig(window=8))
        assert_outcomes_agree(unbatched["rh"], batched)

    def test_window_stats_surface(self, pressure_stream):
        with OnlineAuctionService(
                CONFIG, method="rh", engine_seed=SEED,
                batching=BatchingConfig(window=8)) as service:
            service.run(pressure_stream)
            batcher = service.last_batcher
            payload = service.stats.to_dict()["batching"]
        assert batcher is not None and batcher.windows > 0
        assert payload["windows"] == batcher.windows
        assert payload["batched_events"] == batcher.batched_queries
        assert payload["max_window"] == batcher.max_window <= 8
        assert payload["mean_window"] == pytest.approx(
            batcher.batched_queries / batcher.windows)
        num_queries = pressure_stream.counts_by_kind()["query"]
        assert batcher.batched_queries == num_queries


class TestShardedBatched:
    @pytest.mark.parametrize("method", ["rh", "lp", "rhtalu"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_sharded_batched_equals_unbatched(
            self, method, workers, pressure_stream, unbatched):
        batched = run_service(
            CONFIG, pressure_stream, method=method, engine_seed=SEED,
            workers=workers, batching=BatchingConfig(window=8))
        assert_outcomes_agree(unbatched[method], batched)


class TestDurableBatched:
    def run_durable(self, tmp_path, stream, name, *, batching=None,
                    checkpoint_every=0):
        journal = tmp_path / f"{name}.jsonl"
        kwargs = {"batching": batching}
        if checkpoint_every:
            kwargs.update(checkpoint_every=checkpoint_every,
                          checkpoint_dir=tmp_path / f"{name}-ckpt")
        durable = DurableAuctionService.open(
            CONFIG, journal, method="rh", engine_seed=SEED, **kwargs)
        try:
            records = durable.run(stream)
            balances = dict(durable.service.registry.balances())
            emitted = list(durable.emitted)
        finally:
            durable.close()
        return journal, records, balances, emitted

    def test_journal_per_origin_identical(self, tmp_path,
                                          pressure_stream):
        plain_path, plain_records, _, _ = self.run_durable(
            tmp_path, pressure_stream, "plain")
        batch_path, batch_records, _, _ = self.run_durable(
            tmp_path, pressure_stream, "batched",
            batching=BatchingConfig(window=8))
        assert records_identical(plain_records, batch_records)
        plain = scan_journal(plain_path)
        batched = scan_journal(batch_path)
        for origin in ("input", "service"):
            assert [
                (e.seq, e.event) for e in plain.entries
                if e.origin == origin
            ] == [
                (e.seq, e.event) for e in batched.entries
                if e.origin == origin
            ]

    def test_recovery_needs_no_batching_awareness(self, tmp_path,
                                                  pressure_stream,
                                                  unbatched):
        journal, records, balances, emitted = self.run_durable(
            tmp_path, pressure_stream, "recoverable",
            batching=BatchingConfig(window=8),
            checkpoint_every=0)
        result = recover(journal)
        try:
            recovered = result.service
            assert records_identical(unbatched["rh"].records,
                                     records)
            assert dict(recovered.registry.balances()) == balances
            assert list(recovered.emitted) == emitted
            assert recovered.events_processed \
                == len(pressure_stream)
        finally:
            recovered.close()

    def test_batched_checkpoints_recover(self, tmp_path,
                                         pressure_stream, unbatched):
        # Checkpoints taken mid-window-schedule restore and replay
        # the journaled suffix to the same final state.
        journal, records, balances, _ = self.run_durable(
            tmp_path, pressure_stream, "ckpt",
            batching=BatchingConfig(window=8), checkpoint_every=40)
        result = recover(journal,
                         checkpoint_dir=tmp_path / "ckpt-ckpt")
        try:
            assert result.checkpoint_path is not None
            assert records_identical(unbatched["rh"].records,
                                     records)
            assert dict(result.service.registry.balances()) \
                == balances
        finally:
            result.service.close()


class TestShedMode:
    def test_shed_run_equals_filtered_stream(self, pressure_stream):
        # The shed run's observable state must equal an unbatched run
        # over the input stream minus exactly the shed queries — the
        # shed log is a faithful account of what was dropped.
        events = list(pressure_stream)
        with OnlineAuctionService(
                CONFIG, method="rh", engine_seed=SEED,
                batching=BatchingConfig(
                    window=4, ingress_capacity=4,
                    backpressure="shed",
                    arrival_rate=3.0)) as service:
            records = service.run(events)
            batcher = service.last_batcher
            from tests.stream.oracle import capture_outcome
            shed_outcome = capture_outcome(service, records)
            payload = service.stats.to_dict()["batching"]
        assert batcher.shed_count > 0
        assert all(isinstance(e, QueryArrival) for e in batcher.shed)
        assert payload["shed"] == {"query": batcher.shed_count}
        shed_ids = {id(e) for e in batcher.shed}
        survived = [e for e in events if id(e) not in shed_ids]
        replayed = run_service(CONFIG, survived, method="rh",
                               engine_seed=SEED)
        assert_outcomes_agree(replayed, shed_outcome)

    def test_delay_is_the_default_and_sheds_nothing(
            self, pressure_stream, unbatched):
        batched = run_service(
            CONFIG, pressure_stream, method="rh", engine_seed=SEED,
            batching=BatchingConfig(window=4, ingress_capacity=4))
        assert_outcomes_agree(unbatched["rh"], batched)


class TestEventTimingsBatching:
    def test_record_window_amortizes_per_event(self):
        stats = EventTimings()
        stats.record_window("query", 4, 0.8)
        stats.record_window("query", 2, 0.1)
        assert stats.counts["query"] == 6
        assert stats.seconds["query"] == pytest.approx(0.9)
        assert stats.mean_ms("query") == pytest.approx(150.0)
        block = stats.to_dict()["batching"]
        assert block["windows"] == 2
        assert block["batched_events"] == 6
        assert block["max_window"] == 4
        assert block["mean_window"] == pytest.approx(3.0)

    def test_absorb_merges_batching(self):
        first = EventTimings()
        first.record_window("query", 4, 0.4)
        first.record_shed("query")
        second = EventTimings()
        second.record_window("query", 6, 0.2)
        second.record_shed("query")
        second.record_shed("query")
        first.absorb(second)
        block = first.batching
        assert block["windows"] == 2
        assert block["batched_events"] == 10
        assert block["max_window"] == 6  # max, not sum
        assert block["shed"] == {"query": 3}

    def test_unbatched_payload_stays_clean(self):
        stats = EventTimings()
        stats.record("query", 0.1)
        assert "batching" not in stats.to_dict()

    def test_empty_window_records_nothing(self):
        # A zero-event window served nothing: neither the per-kind
        # buckets nor the window counters may move, and the payload
        # stays free of a batching block entirely.
        stats = EventTimings()
        stats.record_window("query", 0, 0.25)
        assert stats.counts == {}
        assert stats.seconds == {}
        assert stats.batching == {}
        assert "batching" not in stats.to_dict()

    def test_control_only_flush_counts_controls_not_windows(self):
        # A control event flushing the batcher is a single-event
        # dispatch through record(), never a window: the batching
        # block tracks query windows only.
        stats = EventTimings()
        stats.record("join", 0.01)
        stats.record_window("query", 3, 0.3)
        stats.record("leave", 0.02)
        payload = stats.to_dict()
        assert payload["by_kind"]["join"]["count"] == 1
        assert payload["by_kind"]["leave"]["count"] == 1
        assert payload["batching"]["windows"] == 1
        assert payload["batching"]["batched_events"] == 3

    def test_shed_while_batching_keeps_window_accounting(self):
        # Sheds land in their own sub-map and never contaminate the
        # window counters; an empty window after a shed still
        # records nothing.
        stats = EventTimings()
        stats.record_window("query", 2, 0.2)
        stats.record_shed("query")
        stats.record_window("query", 0, 0.0)
        block = stats.to_dict()["batching"]
        assert block["windows"] == 1
        assert block["batched_events"] == 2
        assert block["shed"] == {"query": 1}
        assert stats.counts["query"] == 2  # shed events never served


class TestBatchingProperty:
    """Satellite property: any stream x any batching schedule is
    bit-identical to unbatched and to the rebuild oracle."""

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_any_window_schedule_is_bit_identical(self, data):
        method = data.draw(st.sampled_from(METHODS))
        window = data.draw(st.integers(1, 24))
        capacity = data.draw(st.integers(1, 48))
        num_events = data.draw(st.integers(30, 90))
        stream_seed = data.draw(st.integers(0, 50))
        stream = list(make_stream(num_events, seed=stream_seed))
        baseline = run_service(CONFIG, stream, method=method,
                               engine_seed=SEED)
        batched = run_service(
            CONFIG, stream, method=method, engine_seed=SEED,
            batching=BatchingConfig(window=window,
                                    ingress_capacity=capacity))
        assert_outcomes_agree(baseline, batched)
        rebuild = run_service(CONFIG, stream, method=method,
                              maintenance="rebuild", engine_seed=SEED)
        assert_outcomes_agree(rebuild, batched)
