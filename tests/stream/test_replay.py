"""Replay-verified accounting: event-log replay and the trace differ.

The acceptance criterion: ``repro stream --replay`` on a recorded log
reproduces the original trace with an *empty* ``trace_diff`` report —
and when a candidate build does drift, the report names the drifting
advertisers and the first diverging record instead of a bare boolean.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.auction.trace import read_trace, write_trace
from repro.stream import (
    OnlineAuctionService,
    diff_trace_files,
    diff_traces,
)
from repro.workloads import (
    ChurnStreamConfig,
    PaperWorkload,
    PaperWorkloadConfig,
    generate_stream,
)

REPO = Path(__file__).resolve().parent.parent.parent
CONFIG = PaperWorkloadConfig(num_advertisers=24, num_slots=3,
                             num_keywords=2, seed=1)
SEED = 3


@pytest.fixture(scope="module")
def stream():
    workload = PaperWorkload(CONFIG)
    return generate_stream(workload, ChurnStreamConfig(
        num_events=90, churn_rate=0.25, genesis=12, min_active=4,
        budget_low=4.0, budget_high=30.0, seed=11))


@pytest.fixture(scope="module")
def baseline_records(stream):
    service = OnlineAuctionService(CONFIG, method="rh",
                                   engine_seed=SEED)
    records = service.run(stream)
    assert service.emitted  # the lifecycle is live in the fixture
    return records


class TestReplay:
    def test_replayed_log_reproduces_the_trace(self, stream,
                                               baseline_records,
                                               tmp_path):
        # Record the log, reload it, run a fresh service: empty diff.
        path = tmp_path / "events.jsonl"
        stream.to_jsonl(path)
        from repro.stream import EventLog

        replayed = OnlineAuctionService(CONFIG, method="rh",
                                        engine_seed=SEED)
        records = replayed.run(EventLog.from_jsonl(path))
        diff = diff_traces(baseline_records, records)
        assert diff.identical
        assert diff.to_dict()["advertiser_drift"] == {}
        assert "identical" in diff.format_report()

    def test_sharded_replay_matches_in_process_recording(
            self, stream, baseline_records):
        with OnlineAuctionService(CONFIG, method="rh", workers=2,
                                  engine_seed=SEED) as sharded:
            records = sharded.run(stream)
        assert diff_traces(baseline_records, records).identical

    def test_trace_files_roundtrip_through_the_differ(
            self, baseline_records, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        write_trace(first, baseline_records)
        write_trace(second, read_trace(first))
        diff = diff_trace_files(first, second)
        assert diff.identical
        assert diff.baseline_records == len(baseline_records)


class TestDriftReporting:
    def test_diverged_run_reports_per_advertiser_drift(
            self, stream, baseline_records):
        other = OnlineAuctionService(CONFIG, method="rh",
                                     engine_seed=SEED + 1)
        records = other.run(stream)
        diff = diff_traces(baseline_records, records)
        assert not diff.identical
        assert diff.record_mismatches > 0
        assert diff.first_divergence is not None
        assert diff.first_divergence["field"] in (
            "slot_of", "clicked", "purchased", "prices",
            "expected_revenue", "realized_revenue", "keyword")
        assert diff.advertiser_drift
        report = diff.format_report()
        assert "DIFFER" in report and "advertiser" in report

    def test_length_mismatch_is_not_identical(self,
                                              baseline_records):
        diff = diff_traces(baseline_records, baseline_records[:-3])
        assert not diff.identical
        assert diff.candidate_records \
            == diff.baseline_records - 3

    def test_timings_are_ignored(self, baseline_records):
        from dataclasses import replace

        perturbed = [replace(record, eval_seconds=1e9,
                             wd_seconds=1e9, num_candidates=0)
                     for record in baseline_records]
        assert diff_traces(baseline_records, perturbed).identical


class TestTraceDiffCli:
    def run_tool(self, *argv):
        return subprocess.run(
            [sys.executable, str(REPO / "tools" / "trace_diff.py"),
             *argv],
            capture_output=True, text=True)

    def test_identical_traces_exit_zero(self, baseline_records,
                                        tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        write_trace(first, baseline_records)
        write_trace(second, baseline_records)
        result = self.run_tool(str(first), str(second))
        assert result.returncode == 0, result.stderr
        assert "identical" in result.stdout

    def test_drifting_traces_exit_nonzero_with_report(
            self, stream, baseline_records, tmp_path):
        other = OnlineAuctionService(CONFIG, method="rh",
                                     engine_seed=SEED + 1)
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        write_trace(first, baseline_records)
        write_trace(second, other.run(stream))
        result = self.run_tool(str(first), str(second))
        assert result.returncode == 1
        assert "DIFFER" in result.stdout
        json_result = self.run_tool("--json", str(first), str(second))
        assert json_result.returncode == 1
        import json

        payload = json.loads(json_result.stdout)
        assert payload["identical"] is False
        assert payload["advertiser_drift"]
