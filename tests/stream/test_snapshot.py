"""Snapshot/restore: checkpoint mid-stream, resume bit-identically."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import records_identical
from repro.stream import OnlineAuctionService, ServiceSnapshot
from repro.stream.snapshot import (
    capture_from_jsonable,
    capture_to_jsonable,
    merge_captures,
    slice_capture,
)
from repro.workloads import (
    ChurnStreamConfig,
    PaperWorkload,
    PaperWorkloadConfig,
    generate_stream,
)

CONFIG = PaperWorkloadConfig(num_advertisers=36, num_slots=4,
                             num_keywords=3, seed=1)
SEED = 3


@pytest.fixture(scope="module")
def stream():
    workload = PaperWorkload(CONFIG)
    return generate_stream(workload, ChurnStreamConfig(
        num_events=140, churn_rate=0.3, genesis=22, min_active=6,
        seed=7))


def assert_paused_equal(actual: dict, expected: dict) -> None:
    """Paused-row captures equal, array fields bit-for-bit."""
    assert set(actual) == set(expected)
    for advertiser, row in expected.items():
        back = actual[advertiser]
        assert set(back) == set(row)
        for field, value in row.items():
            if isinstance(value, np.ndarray):
                assert np.array_equal(back[field], value), field
            else:
                assert back[field] == value, field


def run_split(method, workers, stream, tmp_path, via_file=True,
              restore_workers=None):
    """Uninterrupted records vs snapshot-at-half then resume."""
    full = OnlineAuctionService(CONFIG, method=method,
                                workers=workers, engine_seed=SEED)
    expected = full.run(stream)
    full.close()

    half = len(stream) // 2
    head_service = OnlineAuctionService(CONFIG, method=method,
                                        workers=workers,
                                        engine_seed=SEED)
    head = head_service.run(stream.prefix(half))
    snapshot = head_service.snapshot()
    if via_file:
        path = tmp_path / f"{method}_{workers}.json"
        snapshot.to_file(path)
        snapshot = ServiceSnapshot.from_file(path)
    head_service.close()

    resumed = OnlineAuctionService.restore(
        snapshot, workers=restore_workers)
    tail = resumed.run(stream[half:])
    resumed.close()
    return expected, head + tail


class TestRoundTrip:
    @pytest.mark.parametrize("method", ["rh", "lp", "rhtalu"])
    def test_in_process(self, method, stream, tmp_path):
        expected, actual = run_split(method, 0, stream, tmp_path)
        assert records_identical(expected, actual)

    @pytest.mark.parametrize("method", ["rh", "rhtalu"])
    def test_sharded_two_workers(self, method, stream, tmp_path):
        expected, actual = run_split(method, 2, stream, tmp_path)
        assert records_identical(expected, actual)

    def test_restore_to_different_worker_count(self, stream,
                                               tmp_path):
        # Captures are global: a 2-worker snapshot restores in-process
        # (and vice versa) without changing a single record.
        expected, actual = run_split("rh", 2, stream, tmp_path,
                                     restore_workers=0)
        assert records_identical(expected, actual)
        expected, actual = run_split("rhtalu", 0, stream, tmp_path,
                                     restore_workers=2)
        assert records_identical(expected, actual)

    def test_registry_and_accounts_survive(self, stream, tmp_path):
        half = len(stream) // 2
        service = OnlineAuctionService(CONFIG, method="rh",
                                       engine_seed=SEED)
        service.run(stream.prefix(half))
        path = tmp_path / "svc.json"
        service.snapshot().to_file(path)
        resumed = OnlineAuctionService.restore(path)
        assert resumed.active_advertisers() \
            == service.active_advertisers()
        for advertiser in service.active_advertisers():
            assert resumed.budget_of(advertiser) \
                == service.budget_of(advertiser)
        assert resumed.accounts.provider_revenue \
            == service.accounts.provider_revenue
        assert resumed.events_processed == service.events_processed


@pytest.fixture(scope="module")
def pressure_stream():
    """Small join budgets: the lifecycle pauses (and re-admits)
    advertisers, so snapshots here are taken *while paused*."""
    workload = PaperWorkload(CONFIG)
    return generate_stream(workload, ChurnStreamConfig(
        num_events=140, churn_rate=0.25, genesis=22, min_active=6,
        budget_low=3.0, budget_high=25.0, topup_weight=2.0, seed=11))


class TestSnapshotWhilePaused:
    """The satellite: checkpoints taken while advertisers are paused
    restore bit-identically — to the same worker count and to a
    different one (paused row captures re-shard with their owners)."""

    @pytest.mark.parametrize("method", ["rh", "lp", "rhtalu"])
    def test_same_worker_count(self, method, pressure_stream,
                               tmp_path):
        expected, actual = run_split(method, 0, pressure_stream,
                                     tmp_path)
        assert records_identical(expected, actual)

    @pytest.mark.parametrize("method,workers,restore_workers",
                             [("rh", 0, 2), ("rh", 2, 0),
                              ("rhtalu", 2, 3), ("rhtalu", 2, 0),
                              ("lp", 0, 2)])
    def test_different_worker_count(self, method, workers,
                                    restore_workers, pressure_stream,
                                    tmp_path):
        expected, actual = run_split(
            method, workers, pressure_stream, tmp_path,
            restore_workers=restore_workers)
        assert records_identical(expected, actual)

    def test_fixture_actually_pauses_at_the_snapshot_point(
            self, pressure_stream):
        service = OnlineAuctionService(CONFIG, method="rh",
                                       engine_seed=SEED)
        service.run(pressure_stream.prefix(len(pressure_stream) // 2))
        assert service.paused_advertisers()
        snapshot = service.snapshot()
        assert snapshot.backend_state["paused"]
        paused_flags = [advertiser for advertiser, entry
                        in snapshot.registry.items()
                        if entry["paused"]]
        assert paused_flags == service.paused_advertisers()

    def test_restored_service_resumes_paused_advertisers(
            self, pressure_stream, tmp_path):
        from repro.stream import BudgetTopUp, QueryArrival

        service = OnlineAuctionService(CONFIG, method="rhtalu",
                                       engine_seed=SEED)
        service.run(pressure_stream.prefix(len(pressure_stream) // 2))
        assert service.paused_advertisers()
        path = tmp_path / "paused.json"
        service.snapshot().to_file(path)
        resumed = OnlineAuctionService.restore(path, workers=2)
        try:
            who = resumed.paused_advertisers()[0]
            assert resumed.paused_advertisers() \
                == service.paused_advertisers()
            resumed.process(BudgetTopUp(advertiser=who, amount=90.0))
            assert who not in resumed.paused_advertisers()
            for _ in range(6):
                resumed.process(QueryArrival("kw0"))
        finally:
            resumed.close()


class TestSnapshotFile:
    def test_rejects_non_snapshot_files(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"format": "something-else"}',
                        encoding="utf-8")
        with pytest.raises(ValueError, match="snapshot"):
            ServiceSnapshot.from_file(path)

    def test_format_1_snapshots_still_restore(self, stream,
                                              tmp_path):
        # Pre-lifecycle snapshots: no pause flags, no paused captures,
        # plain-float budgets that never gated participation.  Every
        # format-1 budget must restore *untracked* — the snapshotted
        # run never enforced it, so enforcing it after restore would
        # change the replayed records and break the round-trip
        # invariant.
        import json
        import math

        service = OnlineAuctionService(CONFIG, method="rh",
                                       engine_seed=SEED)
        service.run(stream.prefix(30))
        path = tmp_path / "v1.json"
        service.snapshot().to_file(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["format"] = "repro-stream-snapshot/1"
        for entry in payload["registry"].values():
            del entry["paused"]
            if entry["budget"] is None:
                entry["budget"] = 0.0
        payload["backend_state"].pop("paused", None)
        path.write_text(json.dumps(payload), encoding="utf-8")

        resumed = OnlineAuctionService.restore(path)
        assert resumed.active_advertisers() \
            == service.active_advertisers()
        assert resumed.paused_advertisers() == []
        for advertiser in service.active_advertisers():
            assert resumed.budget_of(advertiser) == math.inf
        # ... and queries against the untracked restore never pause
        # anybody (new post-restore joins would gate normally).
        from repro.stream import QueryArrival

        resumed.run([event for event in stream[30:]
                     if isinstance(event, QueryArrival)])
        assert resumed.paused_advertisers() == []
        assert not resumed.emitted

    def test_capture_json_roundtrip_is_exact(self, stream):
        service = OnlineAuctionService(CONFIG, method="rhtalu",
                                       engine_seed=SEED)
        service.run(stream.prefix(len(stream) // 2))
        capture = service.backend.capture_state()
        # The budget lifecycle must be live in the fixture, so the
        # round trip covers retained paused-row captures too.
        assert capture["paused"]
        back = capture_from_jsonable(capture_to_jsonable(capture))
        assert set(back) == set(capture)
        for key, value in capture.items():
            if isinstance(value, np.ndarray):
                assert np.array_equal(back[key], value), key
                assert back[key].dtype == value.dtype, key
            elif key == "paused":
                assert_paused_equal(back[key], value)
            else:
                assert back[key] == value, key

    def test_infinite_deadlines_survive_json(self, tmp_path, stream):
        # DeadlineArray's "never" sentinel is +inf; Python json carries
        # it as the (symmetric) Infinity literal.
        service = OnlineAuctionService(CONFIG, method="rhtalu",
                                       engine_seed=SEED)
        service.run(stream.prefix(30))
        capture = service.backend.capture_state()
        assert np.isinf(capture["time_critical"]).any()
        path = tmp_path / "inf.json"
        service.snapshot().to_file(path)
        restored = ServiceSnapshot.from_file(path)
        assert np.array_equal(restored.backend_state["time_critical"],
                              capture["time_critical"])


class TestCapturePlumbing:
    def test_slice_then_merge_is_identity(self, stream):
        service = OnlineAuctionService(CONFIG, method="rhtalu",
                                       engine_seed=SEED)
        service.run(stream.prefix(len(stream) // 2))
        capture = service.backend.capture_state()
        assert capture["paused"]  # the lifecycle must be live here
        spans = [(0, 12), (12, 30), (30, 36)]
        slices = [slice_capture(capture, lo, hi) for lo, hi in spans]
        rejoined = merge_captures(
            [dict(part,
                  ids=np.asarray(part["ids"]) + lo,
                  paused={advertiser + lo: row for advertiser, row
                          in part["paused"].items()})
             for (lo, _), part in zip(spans, slices)],
            spans, CONFIG.num_advertisers)
        for key, value in capture.items():
            if isinstance(value, np.ndarray):
                assert np.array_equal(rejoined[key], value), key
            elif key == "paused":
                assert_paused_equal(rejoined[key], value)
            else:
                assert rejoined[key] == value, key

    def test_merge_requires_a_populated_shard(self):
        with pytest.raises(ValueError):
            merge_captures([{}, {}], [(0, 0), (0, 0)], 0)
