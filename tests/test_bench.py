"""Tests for the benchmark-harness utilities."""

import pytest

from repro.bench import (
    FigureSeries,
    ordering_holds,
    speedup,
    time_auction_run,
    time_callable,
)


def _series():
    series = FigureSeries(name="Figure X", x_label="n",
                          y_label="ms", methods=["lp", "rh"])
    series.record(100, "lp", 10.0)
    series.record(100, "rh", 2.0)
    series.record(200, "lp", 25.0)
    series.record(200, "rh", 2.5)
    return series


class TestFigureSeries:
    def test_record_and_query(self):
        series = _series()
        assert series.xs() == [100.0, 200.0]
        assert series.value(100, "lp") == 10.0
        assert series.value(300, "lp") is None
        assert series.series_for("rh") == [(100.0, 2.0), (200.0, 2.5)]

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            _series().record(100, "quantum", 1.0)

    def test_table_rendering(self):
        table = _series().to_table()
        assert "Figure X" in table
        assert "lp" in table and "rh" in table
        assert "25" in table

    def test_missing_cells_render_dash(self):
        series = FigureSeries(name="f", x_label="n", y_label="ms",
                              methods=["a", "b"])
        series.record(1, "a", 1.0)
        rows = series.to_rows()
        assert rows[1][2] == "-"

    def test_csv_round_trippable(self):
        csv_text = _series().to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "n,lp,rh"
        assert len(lines) == 3


class TestReporting:
    def test_speedup(self):
        report = speedup(_series(), "lp", "rh")
        assert report.rows == ((100.0, 5.0), (200.0, 10.0))
        assert "5.0x" in "\n".join(report.to_lines())

    def test_speedup_skips_missing(self):
        series = FigureSeries(name="f", x_label="n", y_label="ms",
                              methods=["a", "b"])
        series.record(1, "a", 4.0)
        assert speedup(series, "a", "b").rows == ()

    def test_ordering_holds(self):
        assert ordering_holds(_series(), ["lp", "rh"])
        assert not ordering_holds(_series(), ["rh", "lp"])

    def test_ordering_with_missing_method(self):
        series = FigureSeries(name="f", x_label="n", y_label="ms",
                              methods=["a", "b"])
        series.record(1, "a", 4.0)
        assert not ordering_holds(series, ["a", "b"])


class TestTiming:
    def test_time_callable_counts(self):
        calls = []
        result = time_callable(lambda: calls.append(1), repeats=5,
                               warmup=2)
        assert len(calls) == 7
        assert len(result.samples) == 5
        assert result.min_s <= result.median_s
        assert result.mean_ms == pytest.approx(1e3 * result.mean_s)

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)

    def test_time_auction_run_no_warmup(self):
        calls = []
        result = time_auction_run(lambda: calls.append(1), auctions=3)
        assert len(calls) == 3
        assert len(result.samples) == 3


class TestPhaseProfiles:
    def _engine(self):
        from repro.workloads import PaperWorkload, PaperWorkloadConfig
        workload = PaperWorkload(PaperWorkloadConfig(
            num_advertisers=15, num_slots=3, num_keywords=2, seed=1))
        return workload.build_engine("rh", engine_seed=2)

    def test_profile_run_aggregates_phases(self):
        from repro.bench import PHASES, profile_run
        records, profile = profile_run(self._engine(), 12, batch=True,
                                       num_advertisers=15)
        assert len(records) == 12
        assert profile.auctions == 12
        assert profile.batched
        assert profile.groups is not None
        assert profile.auctions_per_second > 0
        phases = profile.phase_ms()
        assert set(phases) == set(PHASES)
        assert all(value >= 0.0 for value in phases.values())
        assert profile.to_dict()["num_advertisers"] == 15

    def test_profile_write_roundtrip(self, tmp_path):
        import json

        from repro.bench import profile_run
        _, profile = profile_run(self._engine(), 4)
        path = profile.write(tmp_path / "deep" / "cell.json")
        data = json.loads(path.read_text())
        assert data["auctions"] == 4
        assert data["batched"] is False
        assert set(data["phase_seconds"]) == {"eval", "wd", "price",
                                              "settle"}

    def test_records_identical_detects_differences(self):
        from repro.bench import records_identical
        engine_a, engine_b = self._engine(), self._engine()
        records_a = engine_a.run(6)
        records_b = engine_b.run_batch(6)
        assert records_identical(records_a, records_b)
        assert not records_identical(records_a, records_b[:-1])
        assert not records_identical(records_a[:3], records_b[3:])

    def test_compare_throughput_verdict(self):
        from repro.bench import compare_throughput
        report = compare_throughput(self._engine(), self._engine(),
                                    auctions=10, warmup=1)
        assert report.identical
        assert report.speedup > 0
        assert report.sequential.auctions == 10
        assert report.batched.auctions == 10
        assert any("speedup" in line for line in report.to_lines())
        assert report.to_dict()["identical"] is True
