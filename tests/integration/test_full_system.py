"""Cross-module integration tests: the whole system working together.

Each test exercises a path that no single package covers: SQL-hosted
programs inside a live engine, the estimation feedback loop, heavyweight
auctions end to end, pricing parity between eager and lazy evaluation,
and the hardness guard at the engine boundary.
"""

import numpy as np
import pytest

from repro.auction import AuctionEngine, EngineConfig, PayYourBid
from repro.core import determine_winners
from repro.core.heavyweight_wd import determine_winners_heavyweight
from repro.auction.user_model import HeavyweightUserModel
from repro.lang import BidsTable, NotOneDependentError
from repro.matching.feedback_arc import above_event
from repro.probability import (
    PenaltyHeavyweightClickModel,
    TabularClickModel,
    estimate_click_model,
    no_purchases,
)
from repro.strategies import (
    KeywordRecord,
    Query,
    SqlBiddingProgram,
)
from repro.workloads import PaperWorkload, PaperWorkloadConfig


class TestSqlProgramsInEngine:
    def test_figure5_programs_drive_real_auctions(self):
        """A population of verbatim Figure 5 SQL programs runs auctions
        through the engine, spends money, and stays consistent."""
        num_advertisers = 4
        rng = np.random.default_rng(0)
        programs = []
        for advertiser in range(num_advertisers):
            keywords = [
                KeywordRecord(text="boot", formula="Click",
                              maxbid=float(rng.uniform(4, 10)), bid=2,
                              value_per_click=float(rng.uniform(4, 10))),
                KeywordRecord(text="shoe", formula="Click",
                              maxbid=float(rng.uniform(4, 10)), bid=2,
                              value_per_click=float(rng.uniform(4, 10))),
            ]
            programs.append(SqlBiddingProgram(
                advertiser, keywords,
                target_spend_rate=float(rng.uniform(1, 3))))

        click_model = TabularClickModel(
            rng.uniform(0.3, 0.8, size=(num_advertisers, 2)))

        def query_source(generator):
            text = "boot" if generator.random() < 0.5 else "shoe"
            return Query(text=text, relevance={text: 1.0})

        engine = AuctionEngine(
            click_model=click_model,
            purchase_model=no_purchases(num_advertisers, 2),
            query_source=query_source,
            config=EngineConfig(num_slots=2, method="rh", seed=1),
            programs=programs)
        records = engine.run(30)

        assert engine.accounts.provider_revenue == pytest.approx(
            sum(r.realized_revenue for r in records))
        total_spent = sum(program.amt_spent for program in programs)
        assert total_spent == pytest.approx(
            engine.accounts.provider_revenue)
        # Figure 5's guard is `bid < maxbid` *before* adding the step,
        # so a bid may legitimately end up to one step past its cap (the
        # verbatim semantics); it can never run away further, and never
        # below zero.
        for program in programs:
            for row in program.database.rows("Keywords"):
                assert 0.0 <= row["bid"] <= row["maxbid"] + 1.0 + 1e-9


class TestEstimationFeedbackLoop:
    def test_provider_relearns_its_click_model(self):
        """Run auctions, estimate the click model from the log, and
        check the estimate converges on well-observed cells."""
        workload = PaperWorkload(PaperWorkloadConfig(
            num_advertisers=12, num_slots=3, num_keywords=2, seed=5))
        engine = AuctionEngine(
            click_model=workload.click_model(),
            purchase_model=workload.purchase_model(),
            query_source=workload.query_source(),
            config=EngineConfig(num_slots=3, method="rh", seed=6,
                                record_log=True),
            programs=workload.build_programs())
        engine.run(4000)
        estimated = estimate_click_model(engine.interaction_log)
        truth = workload.click_matrix
        impressions = engine.interaction_log.impressions
        observed = impressions >= 100
        assert observed.sum() >= 3  # the workload concentrates winners
        errors = np.abs(estimated.matrix - truth)[observed]
        assert errors.max() < 0.15


class TestHeavyweightEndToEnd:
    def test_layout_aware_auction_loop(self):
        """Heavyweight WD + layout-dependent user model, repeatedly."""
        rng = np.random.default_rng(7)
        n, k = 5, 2
        base = TabularClickModel(rng.uniform(0.3, 0.8, size=(n, k)))
        heavy = frozenset({0, 1})
        model = PenaltyHeavyweightClickModel(base=base, penalty=0.5,
                                             exempt=heavy)
        purchase_model = no_purchases(n, k)
        tables = {
            advertiser: BidsTable.from_pairs(
                [("Click", float(rng.uniform(2, 9)))])
            for advertiser in range(n)
        }
        tables[3].add("Slot1 & !HeavyInSlot2", 2.0)
        user_model = HeavyweightUserModel(model, purchase_model, heavy)

        result = determine_winners_heavyweight(tables, heavy, model,
                                               purchase_model)
        clicks = 0
        trials = 800
        for _ in range(trials):
            outcome = user_model.sample(result.allocation, rng)
            clicks += len(outcome.clicked)
            # Realized payments never exceed declared totals.
            for advertiser, table in tables.items():
                assert table.payment(outcome, advertiser) <= \
                    table.total_declared_value() + 1e-9
        # Expected clicks under the layout-aware model:
        layout = result.heavy_slots
        expected_clicks = sum(
            model.p_click(advertiser, slot_index, layout)
            for advertiser, slot_index in result.allocation.slot_of.items())
        assert clicks / trials == pytest.approx(expected_clicks,
                                                rel=0.15)


class TestPriceParityEagerVsLazy:
    def test_gsp_prices_identical(self):
        """RHTALU's candidate set must include every price-setting
        runner-up, so per-advertiser charges match eager RH exactly."""
        def build(method):
            workload = PaperWorkload(PaperWorkloadConfig(
                num_advertisers=50, num_slots=4, num_keywords=3,
                seed=8))
            kwargs = dict(
                click_model=workload.click_model(),
                purchase_model=workload.purchase_model(),
                query_source=workload.query_source(),
                config=EngineConfig(num_slots=4, method=method, seed=9))
            if method == "rhtalu":
                return AuctionEngine(rhtalu=workload.build_rhtalu(),
                                     **kwargs)
            return AuctionEngine(programs=workload.build_programs(),
                                 **kwargs)

        eager = build("rh")
        lazy = build("rhtalu")
        for _ in range(120):
            eager_record = eager.run_auction()
            lazy_record = lazy.run_auction()
            assert eager_record.prices == pytest.approx(
                lazy_record.prices), eager_record.auction_id


class TestHardnessGuardAtTheBoundary:
    def test_cross_advertiser_bid_rejected_before_solving(self):
        rng = np.random.default_rng(10)
        click_model = TabularClickModel(rng.uniform(0.2, 0.8,
                                                    size=(3, 2)))
        tables = {i: BidsTable.from_pairs([("Click", 5)])
                  for i in range(3)}
        tables[0].add(above_event(0, 1, 2), 10.0)
        with pytest.raises(NotOneDependentError):
            determine_winners(tables, click_model, no_purchases(3, 2))


class TestPayYourBidConservation:
    def test_expected_equals_mean_realized(self):
        workload = PaperWorkload(PaperWorkloadConfig(
            num_advertisers=15, num_slots=3, num_keywords=2, seed=13))
        engine = AuctionEngine(
            click_model=workload.click_model(),
            purchase_model=workload.purchase_model(),
            query_source=workload.query_source(),
            config=EngineConfig(num_slots=3, method="hungarian",
                                seed=14),
            programs=workload.build_programs(),
            pricing=PayYourBid())
        records = engine.run(2500)
        expected = sum(r.expected_revenue for r in records)
        realized = sum(r.realized_revenue for r in records)
        assert realized == pytest.approx(expected, rel=0.08)
