"""Tests for the RHTALU evaluator: equivalence with eager RH."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import click_bid_revenue_matrix, solve
from repro.probability.click_models import TabularClickModel
from repro.workloads import PaperWorkload, PaperWorkloadConfig


def _run_paired(n, num_slots, num_keywords, seed, auctions,
                win_probability=0.5):
    """Drive eager-RH and RHTALU through identical auction streams."""
    workload = PaperWorkload(PaperWorkloadConfig(
        num_advertisers=n, num_slots=num_slots,
        num_keywords=num_keywords, seed=seed))
    programs = workload.build_programs()
    evaluator = workload.build_rhtalu()
    click_model = TabularClickModel(workload.click_matrix)
    rng = np.random.default_rng(seed + 1)

    from repro.strategies.base import (
        AuctionContext,
        ProgramNotification,
        Query,
    )

    revenues = []
    for t in range(1, auctions + 1):
        keyword = workload.keywords[int(rng.integers(num_keywords))]
        ctx = AuctionContext(
            auction_id=t, time=float(t),
            query=Query(text=keyword, relevance={keyword: 1.0}),
            num_slots=num_slots)
        bids = np.zeros(n)
        for i, program in enumerate(programs):
            bids[i] = sum(row.value for row in program.bid(ctx))
        eager = solve(click_bid_revenue_matrix(bids, click_model),
                      method="rh")
        lazy = evaluator.run_auction(keyword, float(t))
        assert lazy.expected_revenue == pytest.approx(
            eager.expected_revenue, abs=1e-6), t
        revenues.append(lazy.expected_revenue)

        for advertiser, col in eager.matching.pairs:
            if rng.random() < win_probability:
                price = 0.6 * bids[advertiser]
                if price <= 0:
                    continue
                programs[advertiser].notify(ProgramNotification(
                    auction_id=t, keyword=keyword, slot=col + 1,
                    clicked=True, price_paid=price))
                evaluator.record_win(advertiser, price, float(t))
    return revenues, evaluator


class TestEquivalence:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_rhtalu_equals_rh_on_paper_workload(self, seed):
        _run_paired(n=25, num_slots=4, num_keywords=3, seed=seed,
                    auctions=60)

    def test_longer_run_with_many_wins(self):
        revenues, _ = _run_paired(n=40, num_slots=5, num_keywords=4,
                                  seed=99, auctions=150,
                                  win_probability=0.9)
        assert len(revenues) == 150
        assert all(revenue >= 0 for revenue in revenues)


class TestWorkAccounting:
    def test_candidate_set_is_small(self):
        workload = PaperWorkload(PaperWorkloadConfig(
            num_advertisers=300, num_slots=5, num_keywords=3, seed=7))
        evaluator = workload.build_rhtalu()
        result = evaluator.run_auction(workload.keywords[0], 1.0)
        # Union of per-slot top-(k+1) lists: at most k * (k+1).
        assert len(result.candidates) <= 5 * 6
        assert result.sequential_count < 2 * 300 * 5

    def test_accesses_shrink_relative_to_population(self):
        small = PaperWorkload(PaperWorkloadConfig(
            num_advertisers=100, num_slots=4, num_keywords=2, seed=5))
        large = PaperWorkload(PaperWorkloadConfig(
            num_advertisers=2000, num_slots=4, num_keywords=2, seed=5))
        accesses = {}
        for name, workload in (("small", small), ("large", large)):
            evaluator = workload.build_rhtalu()
            total = 0
            for t in range(1, 20):
                keyword = workload.keywords[t % 2]
                result = evaluator.run_auction(keyword, float(t))
                total += result.sequential_count
            accesses[name] = total
        # 20x the advertisers must NOT cost 20x the accesses.
        assert accesses["large"] < 8 * accesses["small"]


class TestValidation:
    def test_bad_matrix_rejected(self):
        from repro.evaluation.evaluator import RhtaluEvaluator
        from repro.evaluation.pacer_state import LazyPacerState
        with pytest.raises(ValueError):
            RhtaluEvaluator(np.ones(3), LazyPacerState())


class TestScanAuction:
    """The scan/match split the sharded runtime builds on."""

    def test_scan_then_match_equals_run_auction(self):
        workload = PaperWorkload(PaperWorkloadConfig(
            num_advertisers=25, num_slots=4, num_keywords=3, seed=5))
        scanning = workload.build_rhtalu()
        running = workload.build_rhtalu()
        for auction in range(1, 31):
            keyword = f"kw{auction % 3}"
            scan = scanning.scan_auction(keyword, float(auction))
            full = running.run_auction(keyword, float(auction))
            assert tuple(int(a) for a in scan.candidates) \
                == full.candidates
            np.testing.assert_array_equal(scan.candidate_bids,
                                          full.candidate_bids)
            assert scan.sequential_count == full.sequential_count
            assert scan.random_count == full.random_count
            # Union of the slot lists is exactly the candidate set.
            union = set()
            for per_slot in scan.slot_ids:
                union.update(int(a) for a in per_slot)
            assert union == set(full.candidates)
            for advertiser, _ in full.matching.pairs:
                if full.allocation.slot_of:
                    running.record_win(advertiser, 0.5, float(auction))
                    scanning.record_win(advertiser, 0.5, float(auction))

    def test_slot_lists_are_top_depth_by_score(self):
        workload = PaperWorkload(PaperWorkloadConfig(
            num_advertisers=30, num_slots=4, num_keywords=2, seed=9))
        evaluator = workload.build_rhtalu()
        scan = evaluator.scan_auction("kw0", 1.0)
        state = workload.build_lazy_state()
        state.begin_auction("kw0", 1.0)
        eff = np.array([state.effective_bid(a, "kw0")
                        for a in range(30)])
        for slot, per_slot in enumerate(scan.slot_ids):
            scores = workload.click_matrix[:, slot] * eff
            order = np.lexsort((np.arange(30), -scores))
            expected = order[:evaluator.top_depth]
            assert set(int(a) for a in per_slot) \
                == set(int(a) for a in expected)
