"""The Section IV-B invariant: lazy state == eager pacer ensemble.

These tests drive a :class:`LazyPacerState` and an eager
:class:`SimpleROIPacer` population through identical auction/win
sequences — including pacing-mode flips in both directions and bid
saturation at both bounds — and require bid-for-bid agreement.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.pacer_state import LazyPacerState
from repro.strategies.base import AuctionContext, ProgramNotification, Query
from repro.strategies.roi_equalizer import SimpleROIPacer
from repro.strategies.state import KeywordRecord, ProgramState


class Harness:
    """Drives eager programs and lazy state through the same history."""

    def __init__(self, n, keywords, values, targets, initial_fraction=0.5):
        self.keywords = keywords
        self.programs = []
        for i in range(n):
            records = [
                KeywordRecord(text=kw, formula="Click",
                              maxbid=float(values[i, j]),
                              bid=initial_fraction * float(values[i, j]),
                              value_per_click=float(values[i, j]))
                for j, kw in enumerate(keywords)
            ]
            state = ProgramState(target_spend_rate=float(targets[i]),
                                 keywords=records)
            self.programs.append(SimpleROIPacer(i, state))
        self.lazy = LazyPacerState()
        for i in range(n):
            self.lazy.add_advertiser(i, float(targets[i]))
            for j, kw in enumerate(keywords):
                self.lazy.add_keyword_bid(
                    i, kw, initial_bid=initial_fraction * float(values[i, j]),
                    maxbid=float(values[i, j]))

    def auction(self, keyword, time):
        query = Query(text=keyword, relevance={keyword: 1.0})
        ctx = AuctionContext(auction_id=int(time), time=time, query=query,
                             num_slots=3)
        eager_bids = {}
        for program in self.programs:
            table = program.bid(ctx)
            eager_bids[program.advertiser_id] = sum(r.value for r in table)
        self.lazy.begin_auction(keyword, time)
        return eager_bids

    def win(self, advertiser, keyword, price, time):
        self.programs[advertiser].notify(ProgramNotification(
            auction_id=int(time), keyword=keyword, slot=1, clicked=True,
            price_paid=price))
        self.lazy.record_win(advertiser, price, time)

    def assert_parity(self, keyword):
        lazy_bids = self.lazy.bids_for_keyword(keyword)
        for program in self.programs:
            record = program.state.keyword(keyword)
            assert lazy_bids[program.advertiser_id] == pytest.approx(
                record.bid, abs=1e-9), (keyword, program.advertiser_id)


def make_harness(seed, n=12, n_keywords=3):
    rng = np.random.default_rng(seed)
    keywords = [f"kw{j}" for j in range(n_keywords)]
    values = rng.uniform(0.5, 20.0, size=(n, n_keywords))
    targets = rng.uniform(0.5, 5.0, size=n)
    return Harness(n, keywords, values, targets), rng, keywords


class TestRandomTrajectories:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_bids_agree_with_random_wins(self, seed):
        harness, rng, keywords = make_harness(seed)
        for t in range(1, 120):
            keyword = keywords[int(rng.integers(len(keywords)))]
            eager_bids = harness.auction(keyword, float(t))
            harness.assert_parity(keyword)
            # Aggressive prices force overspending -> DEC crossings.
            if rng.random() < 0.4:
                winner = int(rng.integers(len(harness.programs)))
                price = float(rng.uniform(1.0, 15.0))
                if eager_bids[winner] > 0:
                    harness.win(winner, keyword, price, float(t))
        for keyword in keywords:
            harness.assert_parity(keyword)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_modes_agree(self, seed):
        harness, rng, keywords = make_harness(seed, n=8)
        for t in range(1, 80):
            keyword = keywords[int(rng.integers(len(keywords)))]
            harness.auction(keyword, float(t))
            if rng.random() < 0.5:
                winner = int(rng.integers(len(harness.programs)))
                harness.win(winner, keyword,
                            float(rng.uniform(2.0, 20.0)), float(t))
            for program in harness.programs:
                state = program.state
                rate = state.amt_spent / t
                expected = ("inc" if rate < state.target_spend_rate
                            else "dec" if rate > state.target_spend_rate
                            else None)
                if expected is not None:
                    assert harness.lazy.mode_of(
                        program.advertiser_id) == expected, (t, program)


class TestSaturation:
    def test_bids_saturate_at_cap_without_wins(self):
        # Everyone underspends forever: all bids climb to maxbid and stay.
        harness, _, keywords = make_harness(3, n=6, n_keywords=2)
        for t in range(1, 60):
            harness.auction(keywords[t % 2], float(t))
        for keyword in keywords:
            lazy_bids = harness.lazy.bids_for_keyword(keyword)
            for program in harness.programs:
                record = program.state.keyword(keyword)
                assert record.bid == pytest.approx(record.maxbid)
                assert lazy_bids[program.advertiser_id] == pytest.approx(
                    record.maxbid)

    def test_bids_floor_at_zero_under_heavy_spending(self):
        harness, _, keywords = make_harness(5, n=4, n_keywords=1)
        keyword = keywords[0]
        # Massive spend at t=1 -> overspending for a long horizon.
        harness.auction(keyword, 1.0)
        for advertiser in range(4):
            harness.win(advertiser, keyword, 500.0, 1.0)
        for t in range(2, 40):
            harness.auction(keyword, float(t))
            harness.assert_parity(keyword)
        lazy_bids = harness.lazy.bids_for_keyword(keyword)
        assert all(bid == pytest.approx(0.0)
                   for bid in lazy_bids.values())

    def test_mode_flip_back_to_increment(self):
        # One big win, then a long quiet stretch: the critical time
        # t* = spent/target passes and bids climb again.
        harness, _, keywords = make_harness(9, n=3, n_keywords=1)
        keyword = keywords[0]
        harness.auction(keyword, 1.0)
        harness.win(0, keyword, 20.0, 1.0)
        assert harness.lazy.mode_of(0) == "dec"
        horizon = int(20.0 / min(p.state.target_spend_rate
                                 for p in harness.programs)) + 10
        for t in range(2, horizon):
            harness.auction(keyword, float(t))
            harness.assert_parity(keyword)
        assert harness.lazy.mode_of(0) == "inc"


class TestAccounting:
    def test_physical_moves_stay_sublinear(self):
        # The whole point of logical updates: per-auction touched
        # programs ≪ population.
        harness, rng, keywords = make_harness(17, n=60, n_keywords=2)
        for t in range(1, 200):
            harness.auction(keywords[t % 2], float(t))
        total_updates_eager = 200 * 60  # every program, every auction
        assert harness.lazy.physical_moves < total_updates_eager / 10

    def test_trigger_stats_exposed(self):
        harness, _, _ = make_harness(21, n=4, n_keywords=1)
        scheduled, fired, pending = harness.lazy.trigger_stats()
        assert scheduled >= 4  # one bound trigger per placed bid
        assert fired == 0
        assert pending == scheduled


class TestValidation:
    def test_duplicate_advertiser_rejected(self):
        state = LazyPacerState()
        state.add_advertiser(0, 1.0)
        with pytest.raises(KeyError):
            state.add_advertiser(0, 1.0)

    def test_bad_target_rejected(self):
        state = LazyPacerState()
        with pytest.raises(ValueError):
            state.add_advertiser(0, 0.0)

    def test_bad_initial_bid_rejected(self):
        state = LazyPacerState()
        state.add_advertiser(0, 1.0)
        with pytest.raises(ValueError):
            state.add_keyword_bid(0, "kw", initial_bid=5.0, maxbid=2.0)

    def test_unknown_keyword_rejected(self):
        state = LazyPacerState()
        with pytest.raises(KeyError):
            state.begin_auction("missing", 1.0)
