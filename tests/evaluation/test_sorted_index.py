"""Tests for the sorted per-parameter index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.sorted_index import SortedIndex


class TestBasics:
    def test_build_and_iterate_descending(self):
        index = SortedIndex({1: 5.0, 2: 9.0, 3: 1.0})
        assert list(index.descending()) == [(2, 9.0), (1, 5.0), (3, 1.0)]

    def test_insert_remove(self):
        index = SortedIndex()
        index.insert(7, 3.0)
        assert 7 in index
        assert index.key(7) == 3.0
        assert index.remove(7) == 3.0
        assert 7 not in index
        assert len(index) == 0

    def test_duplicate_insert_rejected(self):
        index = SortedIndex({1: 1.0})
        with pytest.raises(KeyError):
            index.insert(1, 2.0)

    def test_update_repositions(self):
        index = SortedIndex({1: 5.0, 2: 9.0})
        index.update(1, 10.0)
        assert list(index.descending())[0] == (1, 10.0)

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            SortedIndex().key(1)

    def test_max_key(self):
        assert SortedIndex().max_key() is None
        assert SortedIndex({1: 2.0, 2: 3.0}).max_key() == 3.0

    def test_equal_keys_coexist(self):
        index = SortedIndex({1: 5.0, 2: 5.0})
        items = list(index.descending())
        assert {item for item, _ in items} == {1, 2}
        assert index.remove(1) == 5.0
        assert index.key(2) == 5.0


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.dictionaries(st.integers(0, 50),
                           st.floats(-100, 100, allow_nan=False),
                           max_size=30))
    def test_descending_matches_sorted(self, items):
        index = SortedIndex(items)
        keys = [key for _, key in index.descending()]
        assert keys == sorted(keys, reverse=True)
        assert {item for item, _ in index.descending()} == set(items)

    @settings(max_examples=100, deadline=None)
    @given(st.dictionaries(st.integers(0, 20),
                           st.floats(-10, 10, allow_nan=False),
                           min_size=1, max_size=15),
           st.lists(st.tuples(st.integers(0, 20),
                              st.floats(-10, 10, allow_nan=False)),
                    max_size=20))
    def test_random_update_sequences(self, items, updates):
        index = SortedIndex(items)
        mirror = dict(items)
        for item, key in updates:
            if item in mirror:
                index.update(item, key)
            else:
                index.insert(item, key)
            mirror[item] = key
        assert index.items() == pytest.approx(mirror)
        keys = [key for _, key in index.descending()]
        assert keys == sorted(keys, reverse=True)
