"""Tests for the sorted per-parameter index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.sorted_index import ColumnArgsortIndex, SortedIndex


class TestBasics:
    def test_build_and_iterate_descending(self):
        index = SortedIndex({1: 5.0, 2: 9.0, 3: 1.0})
        assert list(index.descending()) == [(2, 9.0), (1, 5.0), (3, 1.0)]

    def test_insert_remove(self):
        index = SortedIndex()
        index.insert(7, 3.0)
        assert 7 in index
        assert index.key(7) == 3.0
        assert index.remove(7) == 3.0
        assert 7 not in index
        assert len(index) == 0

    def test_duplicate_insert_rejected(self):
        index = SortedIndex({1: 1.0})
        with pytest.raises(KeyError):
            index.insert(1, 2.0)

    def test_update_repositions(self):
        index = SortedIndex({1: 5.0, 2: 9.0})
        index.update(1, 10.0)
        assert list(index.descending())[0] == (1, 10.0)

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            SortedIndex().key(1)

    def test_max_key(self):
        assert SortedIndex().max_key() is None
        assert SortedIndex({1: 2.0, 2: 3.0}).max_key() == 3.0

    def test_equal_keys_coexist(self):
        index = SortedIndex({1: 5.0, 2: 5.0})
        items = list(index.descending())
        assert {item for item, _ in items} == {1, 2}
        assert index.remove(1) == 5.0
        assert index.key(2) == 5.0


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.dictionaries(st.integers(0, 50),
                           st.floats(-100, 100, allow_nan=False),
                           max_size=30))
    def test_descending_matches_sorted(self, items):
        index = SortedIndex(items)
        keys = [key for _, key in index.descending()]
        assert keys == sorted(keys, reverse=True)
        assert {item for item, _ in index.descending()} == set(items)

    @settings(max_examples=100, deadline=None)
    @given(st.dictionaries(st.integers(0, 20),
                           st.floats(-10, 10, allow_nan=False),
                           min_size=1, max_size=15),
           st.lists(st.tuples(st.integers(0, 20),
                              st.floats(-10, 10, allow_nan=False)),
                    max_size=20))
    def test_random_update_sequences(self, items, updates):
        index = SortedIndex(items)
        mirror = dict(items)
        for item, key in updates:
            if item in mirror:
                index.update(item, key)
            else:
                index.insert(item, key)
            mirror[item] = key
        assert index.items() == pytest.approx(mirror)
        keys = [key for _, key in index.descending()]
        assert keys == sorted(keys, reverse=True)


class TestAdversarialUpdates:
    """Update paths under equal keys and repeated churn."""

    def test_equal_keys_iterate_higher_id_first(self):
        index = SortedIndex({3: 5.0, 1: 5.0, 2: 5.0})
        assert [item for item, _ in index.descending()] == [3, 2, 1]

    def test_remove_specific_id_among_equal_keys(self):
        index = SortedIndex({1: 5.0, 2: 5.0, 3: 5.0})
        assert index.remove(2) == 5.0
        assert [item for item, _ in index.descending()] == [3, 1]
        index.insert(2, 5.0)
        assert [item for item, _ in index.descending()] == [3, 2, 1]

    def test_update_within_a_tie_class_is_stable(self):
        index = SortedIndex({1: 5.0, 2: 5.0, 3: 5.0})
        index.update(3, 5.0)  # no-op reposition among equals
        assert [item for item, _ in index.descending()] == [3, 2, 1]

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["insert", "remove",
                                               "update"]),
                              st.integers(0, 8),
                              st.sampled_from([0.0, 1.0, 1.0, 2.0])),
                    max_size=40))
    def test_churn_with_heavy_ties_matches_mirror(self, ops):
        # Keys drawn from {0, 1, 2} force dense tie classes; every op
        # must keep the (key, id) order exact and never corrupt the
        # entry list (the internal assert in remove() would fire).
        index = SortedIndex()
        mirror: dict[int, float] = {}
        for op, item, key in ops:
            if op == "insert" and item not in mirror:
                index.insert(item, key)
                mirror[item] = key
            elif op == "remove" and item in mirror:
                assert index.remove(item) == mirror.pop(item)
            elif op == "update" and item in mirror:
                index.update(item, key)
                mirror[item] = key
        assert index.items() == mirror
        stream = list(index.descending())
        assert [key for _, key in stream] \
            == sorted(mirror.values(), reverse=True)
        # Within a tie class, ids descend (the reversed (key, id) sort).
        for (id_a, key_a), (id_b, key_b) in zip(stream, stream[1:]):
            if key_a == key_b:
                assert id_a > id_b


class TestColumnArgsortIndex:
    def test_columns_match_per_slot_sorted_indexes(self):
        rng = np.random.default_rng(5)
        matrix = rng.uniform(0.1, 0.9, size=(40, 4))
        matrix[rng.random((40, 4)) < 0.2] = 0.5  # tie classes
        shared = ColumnArgsortIndex(matrix)
        for col in range(4):
            reference = SortedIndex({i: float(matrix[i, col])
                                     for i in range(40)})
            assert list(shared.column(col).descending()) \
                == list(reference.descending())

    def test_rank_is_the_inverse_of_order(self):
        matrix = np.random.default_rng(6).uniform(size=(25, 3))
        shared = ColumnArgsortIndex(matrix)
        for col in range(3):
            order = shared.order[:, col]
            assert (shared.rank[order, col]
                    == np.arange(len(order))).all()

    def test_sorted_values_align_with_order(self):
        matrix = np.random.default_rng(7).uniform(size=(10, 2))
        shared = ColumnArgsortIndex(matrix)
        np.testing.assert_array_equal(
            shared.sorted_values,
            np.take_along_axis(matrix, shared.order, axis=0))

    def test_column_view_random_access(self):
        matrix = np.array([[0.3, 0.6], [0.9, 0.1]])
        shared = ColumnArgsortIndex(matrix)
        view = shared.column(1)
        assert view.key(0) == 0.6
        assert len(view) == 2
        assert 1 in view and 5 not in view

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            ColumnArgsortIndex(np.ones(3))


class TestColumnArgsortIndexChurn:
    """Incremental membership maintenance (the online serving layer):
    insert/remove must reproduce a fresh stable argsort of the
    surviving member set exactly, including tie order."""

    def assert_equal_to_fresh(self, index, matrix, members):
        fresh = ColumnArgsortIndex(matrix,
                                   members=np.asarray(members,
                                                      dtype=np.int64))
        np.testing.assert_array_equal(index.order, fresh.order)
        np.testing.assert_array_equal(index.sorted_values,
                                      fresh.sorted_values)
        np.testing.assert_array_equal(index.rank, fresh.rank)

    def test_incremental_equals_fresh_with_ties(self):
        rng = np.random.default_rng(11)
        matrix = rng.uniform(0.1, 0.9, size=(30, 3))
        matrix[rng.random((30, 3)) < 0.3] = 0.4  # heavy tie classes
        members = sorted(rng.choice(30, size=12,
                                    replace=False).tolist())
        index = ColumnArgsortIndex(
            matrix, members=np.asarray(members[:5], dtype=np.int64))
        for item in members[5:]:
            index.insert(item)
        for item in members[:3]:
            index.remove(item)
        self.assert_equal_to_fresh(index, matrix, members[3:])

    def test_grow_from_empty_and_drain(self):
        matrix = np.random.default_rng(12).uniform(size=(8, 2))
        index = ColumnArgsortIndex(matrix,
                                   members=np.empty(0, dtype=np.int64))
        assert index.num_ids == 0
        for item in (3, 0, 7, 5):
            index.insert(item)
        self.assert_equal_to_fresh(index, matrix, [0, 3, 5, 7])
        for item in (0, 3, 5, 7):
            index.remove(item)
        assert index.num_ids == 0
        assert not (0 in index)

    def test_membership_and_errors(self):
        matrix = np.random.default_rng(13).uniform(size=(6, 2))
        index = ColumnArgsortIndex(matrix,
                                   members=np.array([1, 4]))
        assert 1 in index and 4 in index and 2 not in index
        with pytest.raises(KeyError):
            index.insert(4)
        with pytest.raises(KeyError):
            index.insert(17)
        with pytest.raises(KeyError):
            index.remove(2)
        with pytest.raises(ValueError):
            ColumnArgsortIndex(matrix, members=np.array([4, 1]))
        with pytest.raises(ValueError):
            ColumnArgsortIndex(matrix, members=np.array([5, 9]))

    def test_full_membership_matches_default_build(self):
        matrix = np.random.default_rng(14).uniform(size=(15, 4))
        full = ColumnArgsortIndex(matrix)
        explicit = ColumnArgsortIndex(matrix,
                                      members=np.arange(15))
        np.testing.assert_array_equal(full.order, explicit.order)
        np.testing.assert_array_equal(full.rank, explicit.rank)
