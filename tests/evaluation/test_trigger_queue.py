"""Tests for the trigger queue on monotonic variables."""

from repro.evaluation.trigger_queue import TriggerQueue


class TestTriggerQueue:
    def test_strict_threshold(self):
        queue = TriggerQueue()
        queue.schedule("time", 5.0, "a")
        assert queue.advance("time", 5.0) == []  # strict: 5 is not past 5
        assert queue.advance("time", 5.0001) == ["a"]

    def test_ordering_by_critical_value(self):
        queue = TriggerQueue()
        queue.schedule("time", 3.0, "late")
        queue.schedule("time", 1.0, "early")
        assert queue.advance("time", 10.0) == ["early", "late"]

    def test_fifo_within_equal_critical(self):
        queue = TriggerQueue()
        queue.schedule("time", 1.0, "first")
        queue.schedule("time", 1.0, "second")
        assert queue.advance("time", 2.0) == ["first", "second"]

    def test_variables_are_independent(self):
        queue = TriggerQueue()
        queue.schedule("time", 1.0, "t")
        queue.schedule(("count", "kw"), 1.0, "c")
        assert queue.advance("time", 5.0) == ["t"]
        assert queue.pending(("count", "kw")) == 1

    def test_advance_unknown_variable(self):
        queue = TriggerQueue()
        assert queue.advance("nothing", 1.0) == []

    def test_stats(self):
        queue = TriggerQueue()
        queue.schedule("x", 1.0, "a")
        queue.schedule("x", 9.0, "b")
        queue.advance("x", 2.0)
        assert queue.scheduled_total == 2
        assert queue.fired_total == 1
        assert queue.pending_total() == 1
