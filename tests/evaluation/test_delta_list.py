"""Tests for delta lists and the merged descending source (IV-B)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.delta_list import DeltaList, MergedDeltaSource


class TestDeltaList:
    def test_adjust_shifts_everyone(self):
        lst = DeltaList()
        lst.insert(1, 5.0)
        lst.insert(2, 3.0)
        lst.adjust(-1.0)
        assert lst.key(1) == 4.0
        assert lst.key(2) == 2.0

    def test_insert_after_adjust_uses_effective_value(self):
        lst = DeltaList()
        lst.adjust(10.0)
        lst.insert(1, 5.0)
        assert lst.key(1) == 5.0
        lst.adjust(1.0)
        assert lst.key(1) == 6.0

    def test_remove_returns_effective(self):
        lst = DeltaList()
        lst.insert(1, 5.0)
        lst.adjust(2.0)
        assert lst.remove(1) == 7.0
        assert 1 not in lst

    def test_descending_order_preserved_under_adjustment(self):
        lst = DeltaList()
        for item, value in [(1, 5.0), (2, 9.0), (3, 1.0)]:
            lst.insert(item, value)
        lst.adjust(-3.0)
        assert [item for item, _ in lst.descending()] == [2, 1, 3]

    def test_max_effective(self):
        lst = DeltaList()
        assert lst.max_effective() is None
        lst.insert(1, 5.0)
        lst.adjust(1.0)
        assert lst.max_effective() == 6.0

    @settings(max_examples=100, deadline=None)
    @given(st.dictionaries(st.integers(0, 30),
                           st.floats(-50, 50, allow_nan=False),
                           max_size=20),
           st.lists(st.floats(-5, 5, allow_nan=False), max_size=10))
    def test_logical_equals_eager(self, items, adjustments):
        lazy = DeltaList()
        eager = dict(items)
        for item, value in items.items():
            lazy.insert(item, value)
        for delta in adjustments:
            lazy.adjust(delta)
            eager = {item: value + delta for item, value in eager.items()}
        assert lazy.items() == pytest.approx(eager)


class TestMergedSource:
    def test_merge_is_globally_descending(self):
        a, b, c = DeltaList(), DeltaList(), DeltaList()
        a.insert(1, 5.0)
        a.insert(2, 1.0)
        b.insert(3, 4.0)
        c.insert(4, 9.0)
        b.adjust(1.0)  # 3 -> 5.0: ties with 1; lower id first
        merged = MergedDeltaSource([a, b, c])
        assert [item for item, _ in merged.descending()] == [4, 1, 3, 2]

    def test_random_access_probes_all_lists(self):
        a, b = DeltaList(), DeltaList()
        a.insert(1, 5.0)
        b.insert(2, 3.0)
        merged = MergedDeltaSource([a, b])
        assert merged.key(1) == 5.0
        assert merged.key(2) == 3.0
        with pytest.raises(KeyError):
            merged.key(99)

    def test_len_and_contains(self):
        a, b = DeltaList(), DeltaList()
        a.insert(1, 5.0)
        merged = MergedDeltaSource([a, b])
        assert len(merged) == 1
        assert 1 in merged
        assert 2 not in merged

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.dictionaries(st.integers(0, 100),
                                    st.floats(-10, 10, allow_nan=False),
                                    max_size=10),
                    min_size=1, max_size=4))
    def test_merge_matches_concatenated_sort(self, list_contents):
        # Assign ids to a single list each (the pacer-state invariant).
        seen: set[int] = set()
        lists = []
        expected = {}
        for contents in list_contents:
            lst = DeltaList()
            for item, value in contents.items():
                if item in seen:
                    continue
                seen.add(item)
                lst.insert(item, value)
                expected[item] = value
            lists.append(lst)
        merged = MergedDeltaSource(lists)
        stream = list(merged.descending())
        values = [value for _, value in stream]
        assert values == sorted(values, reverse=True)
        assert {item for item, _ in stream} == set(expected)
