"""Tests for delta lists and the merged descending source (IV-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.delta_list import (
    ArrayDeltaList,
    DeltaList,
    MergedDeltaSource,
    merged_descending,
)


class TestDeltaList:
    def test_adjust_shifts_everyone(self):
        lst = DeltaList()
        lst.insert(1, 5.0)
        lst.insert(2, 3.0)
        lst.adjust(-1.0)
        assert lst.key(1) == 4.0
        assert lst.key(2) == 2.0

    def test_insert_after_adjust_uses_effective_value(self):
        lst = DeltaList()
        lst.adjust(10.0)
        lst.insert(1, 5.0)
        assert lst.key(1) == 5.0
        lst.adjust(1.0)
        assert lst.key(1) == 6.0

    def test_remove_returns_effective(self):
        lst = DeltaList()
        lst.insert(1, 5.0)
        lst.adjust(2.0)
        assert lst.remove(1) == 7.0
        assert 1 not in lst

    def test_descending_order_preserved_under_adjustment(self):
        lst = DeltaList()
        for item, value in [(1, 5.0), (2, 9.0), (3, 1.0)]:
            lst.insert(item, value)
        lst.adjust(-3.0)
        assert [item for item, _ in lst.descending()] == [2, 1, 3]

    def test_max_effective(self):
        lst = DeltaList()
        assert lst.max_effective() is None
        lst.insert(1, 5.0)
        lst.adjust(1.0)
        assert lst.max_effective() == 6.0

    @settings(max_examples=100, deadline=None)
    @given(st.dictionaries(st.integers(0, 30),
                           st.floats(-50, 50, allow_nan=False),
                           max_size=20),
           st.lists(st.floats(-5, 5, allow_nan=False), max_size=10))
    def test_logical_equals_eager(self, items, adjustments):
        lazy = DeltaList()
        eager = dict(items)
        for item, value in items.items():
            lazy.insert(item, value)
        for delta in adjustments:
            lazy.adjust(delta)
            eager = {item: value + delta for item, value in eager.items()}
        assert lazy.items() == pytest.approx(eager)


class TestMergedSource:
    def test_merge_is_globally_descending(self):
        a, b, c = DeltaList(), DeltaList(), DeltaList()
        a.insert(1, 5.0)
        a.insert(2, 1.0)
        b.insert(3, 4.0)
        c.insert(4, 9.0)
        b.adjust(1.0)  # 3 -> 5.0: ties with 1; lower id first
        merged = MergedDeltaSource([a, b, c])
        assert [item for item, _ in merged.descending()] == [4, 1, 3, 2]

    def test_random_access_probes_all_lists(self):
        a, b = DeltaList(), DeltaList()
        a.insert(1, 5.0)
        b.insert(2, 3.0)
        merged = MergedDeltaSource([a, b])
        assert merged.key(1) == 5.0
        assert merged.key(2) == 3.0
        with pytest.raises(KeyError):
            merged.key(99)

    def test_len_and_contains(self):
        a, b = DeltaList(), DeltaList()
        a.insert(1, 5.0)
        merged = MergedDeltaSource([a, b])
        assert len(merged) == 1
        assert 1 in merged
        assert 2 not in merged

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.dictionaries(st.integers(0, 100),
                                    st.floats(-10, 10, allow_nan=False),
                                    max_size=10),
                    min_size=1, max_size=4))
    def test_merge_matches_concatenated_sort(self, list_contents):
        # Assign ids to a single list each (the pacer-state invariant).
        seen: set[int] = set()
        lists = []
        expected = {}
        for contents in list_contents:
            lst = DeltaList()
            for item, value in contents.items():
                if item in seen:
                    continue
                seen.add(item)
                lst.insert(item, value)
                expected[item] = value
            lists.append(lst)
        merged = MergedDeltaSource(lists)
        stream = list(merged.descending())
        values = [value for _, value in stream]
        assert values == sorted(values, reverse=True)
        assert {item for item, _ in stream} == set(expected)

    def test_empty_sources_merge_cleanly(self):
        assert list(MergedDeltaSource([]).descending()) == []
        empty, full = DeltaList(), DeltaList()
        full.insert(1, 4.0)
        merged = MergedDeltaSource([empty, full, DeltaList()])
        assert list(merged.descending()) == [(1, 4.0)]
        assert len(merged) == 1


class TestAdversarialDeltaList:
    """Update paths under equal keys, repeated churn, empty lists."""

    def test_equal_effective_values_coexist_and_remove_exactly(self):
        lst = DeltaList()
        lst.insert(1, 5.0)
        lst.adjust(2.0)
        lst.insert(2, 5.0)  # stored 3.0 vs stored 5.0: same effective
        assert lst.key(1) == 7.0 and lst.key(2) == 5.0
        lst.adjust(-2.0)
        assert lst.remove(1) == 5.0
        assert lst.key(2) == 3.0

    def test_reinsert_after_remove_under_drifted_adjustment(self):
        lst = DeltaList()
        for _ in range(5):
            lst.insert(7, 2.5)
            lst.adjust(-1.0)
            assert lst.remove(7) == 1.5
        assert len(lst) == 0
        assert lst.adjustment == -5.0

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["insert", "remove",
                                               "adjust"]),
                              st.integers(0, 6),
                              st.sampled_from([0.0, 0.5, 1.0])),
                    max_size=40))
    def test_churn_matches_eager_mirror(self, ops):
        lst = DeltaList()
        mirror: dict[int, float] = {}
        for op, item, value in ops:
            if op == "insert" and item not in mirror:
                lst.insert(item, value)
                mirror[item] = value
            elif op == "remove" and item in mirror:
                assert lst.remove(item) == pytest.approx(
                    mirror.pop(item), abs=1e-12)
            elif op == "adjust":
                lst.adjust(value - 0.5)
                mirror = {k: v + (value - 0.5)
                          for k, v in mirror.items()}
        assert lst.items() == pytest.approx(mirror)
        stream = [value for _, value in lst.descending()]
        assert stream == sorted(stream, reverse=True)


class TestArrayDeltaList:
    def test_batch_insert_keeps_ascending_stored_order(self):
        lst = ArrayDeltaList()
        lst.insert_batch(np.array([3, 1, 2]), np.array([5.0, 9.0, 5.0]))
        assert list(lst.stored) == sorted(lst.stored)
        assert lst.items() == {3: 5.0, 2: 5.0, 1: 9.0}

    def test_adjust_shifts_effective_only(self):
        lst = ArrayDeltaList()
        lst.insert_batch(np.array([1]), np.array([5.0]))
        lst.adjust(-2.0)
        assert lst.items() == {1: 3.0}
        lst.insert_batch(np.array([2]), np.array([3.0]))
        assert lst.remove_id(2) == 3.0
        assert lst.remove_id(1) == 3.0

    def test_remove_mask_compresses_members_only(self):
        lst = ArrayDeltaList()
        lst.insert_batch(np.array([0, 2, 4]),
                         np.array([1.0, 2.0, 3.0]))
        mask = np.zeros(6, dtype=bool)
        mask[[2, 3]] = True  # 3 is not a member: no effect
        lst.remove_mask(mask)
        assert lst.items() == {0: 1.0, 4: 3.0}

    def test_remove_missing_id_raises(self):
        with pytest.raises(KeyError):
            ArrayDeltaList().remove_id(3)

    def test_empty_batch_is_a_noop(self):
        lst = ArrayDeltaList()
        lst.insert_batch(np.empty(0, dtype=np.int64), np.empty(0))
        lst.remove_mask(np.ones(4, dtype=bool))
        assert len(lst) == 0

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["insert", "remove",
                                               "adjust"]),
                              st.lists(st.integers(0, 9), min_size=1,
                                       max_size=4, unique=True),
                              st.sampled_from([0.0, 0.5, 1.0, 2.0])),
                    max_size=30))
    def test_array_list_matches_dict_delta_list(self, ops):
        array_list, reference = ArrayDeltaList(), DeltaList()
        for op, ids, value in ops:
            members = [item for item in ids if item in reference]
            if op == "insert":
                fresh = [item for item in ids
                         if item not in reference]
                array_list.insert_batch(
                    np.array(fresh, dtype=np.int64),
                    np.full(len(fresh), value))
                for item in fresh:
                    reference.insert(item, value)
            elif op == "remove" and members:
                mask = np.zeros(10, dtype=bool)
                mask[members] = True
                array_list.remove_mask(mask)
                for item in members:
                    reference.remove(item)
            elif op == "adjust":
                array_list.adjust(value - 1.0)
                reference.adjust(value - 1.0)
        assert array_list.items() == pytest.approx(reference.items())
        assert list(array_list.stored) == sorted(array_list.stored)


class TestMergedDescendingArrays:
    def test_merge_is_globally_descending_with_all_ids(self):
        lists = [ArrayDeltaList() for _ in range(3)]
        lists[0].insert_batch(np.array([1, 2]), np.array([5.0, 1.0]))
        lists[1].insert_batch(np.array([3]), np.array([4.0]))
        lists[1].adjust(1.0)  # 3 -> 5.0, tying with 1
        lists[2].insert_batch(np.array([4]), np.array([9.0]))
        ids, values = merged_descending(lists)
        assert list(values) == sorted(values, reverse=True)
        assert set(ids.tolist()) == {1, 2, 3, 4}
        assert ids[0] == 4 and ids[-1] == 2

    def test_empty_lists_are_skipped(self):
        ids, values = merged_descending([ArrayDeltaList()])
        assert len(ids) == 0 and len(values) == 0

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.lists(st.tuples(st.integers(0, 50),
                                       st.floats(0, 20,
                                                 allow_nan=False)),
                             max_size=12),
                    min_size=1, max_size=3),
           st.lists(st.floats(-3, 3, allow_nan=False), max_size=3))
    def test_matches_concatenated_sort(self, contents, adjustments):
        seen: set[int] = set()
        lists = []
        expected: dict[int, float] = {}
        for index, pairs in enumerate(contents):
            lst = ArrayDeltaList()
            if index < len(adjustments):
                lst.adjust(adjustments[index])
            fresh_ids, fresh_vals = [], []
            for item, value in pairs:
                if item in seen:
                    continue
                seen.add(item)
                fresh_ids.append(item)
                fresh_vals.append(value)
                expected[item] = value
            lst.insert_batch(np.array(fresh_ids, dtype=np.int64),
                             np.array(fresh_vals))
            lists.append(lst)
        ids, values = merged_descending(lists)
        assert list(values) == sorted(values, reverse=True)
        assert {int(i): float(v) for i, v in zip(ids, values)} \
            == pytest.approx(expected)
