"""The array mirror's contract: LazyPacerArrays == LazyPacerState.

The vectorized RHTALU path replaces the dict-backed lazy state with
:class:`~repro.evaluation.pacer_arrays.LazyPacerArrays`.  These tests
drive both implementations through identical auction/win sequences —
mode flips in both directions, bid saturation at both bounds, trigger
storms — and require bid-for-bid and mode-for-mode agreement, plus the
merged-walk invariants the TA kernel relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.pacer_arrays import LazyPacerArrays
from repro.evaluation.pacer_state import LazyPacerState
from repro.evaluation.sorted_index import ColumnArgsortIndex


def build_states(seed, n=15, n_keywords=3, initial_fraction=0.5):
    rng = np.random.default_rng(seed)
    keywords = [f"kw{j}" for j in range(n_keywords)]
    values = rng.uniform(0.5, 20.0, size=(n, n_keywords))
    targets = rng.uniform(0.5, 5.0, size=n)
    reference = LazyPacerState()
    for i in range(n):
        reference.add_advertiser(i, float(targets[i]))
        for j, text in enumerate(keywords):
            reference.add_keyword_bid(
                i, text,
                initial_bid=initial_fraction * float(values[i, j]),
                maxbid=float(values[i, j]))
    mirror = LazyPacerArrays.from_state(reference, n)
    return reference, mirror, keywords, rng


def assert_parity(reference, mirror, keywords, context):
    for text in keywords:
        expected = reference.bids_for_keyword(text)
        actual = mirror.bids_for_keyword(text)
        for advertiser, bid in expected.items():
            assert actual[advertiser] == pytest.approx(bid, abs=1e-9), \
                (context, text, advertiser)
    for advertiser in range(mirror.num_advertisers):
        assert reference.mode_of(advertiser) \
            == mirror.mode_of(advertiser), (context, advertiser)


class TestMirrorParity:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_random_trajectories_agree(self, seed):
        reference, mirror, keywords, rng = build_states(seed)
        for t in range(1, 100):
            text = keywords[int(rng.integers(len(keywords)))]
            reference.begin_auction(text, float(t))
            source = mirror.begin_auction(text, float(t))
            walk = list(source.descending())
            assert len(walk) == mirror.num_advertisers
            values = [value for _, value in walk]
            assert values == sorted(values, reverse=True)
            if rng.random() < 0.4:
                winner = int(rng.integers(mirror.num_advertisers))
                price = float(rng.uniform(1.0, 15.0))
                reference.record_win(winner, price, float(t))
                mirror.record_win(winner, price, float(t))
        assert_parity(reference, mirror, keywords, seed)

    def test_saturation_at_cap_without_wins(self):
        reference, mirror, keywords, _ = build_states(3, n=6,
                                                      n_keywords=2)
        for t in range(1, 60):
            text = keywords[t % 2]
            reference.begin_auction(text, float(t))
            mirror.begin_auction(text, float(t))
        assert_parity(reference, mirror, keywords, "cap")
        for text in keywords:
            bids = mirror.bids_for_keyword(text)
            col = mirror.kw_index[text]
            for advertiser, bid in bids.items():
                assert bid == pytest.approx(
                    mirror.maxbid[advertiser, col])

    def test_floor_at_zero_and_mode_flip_back(self):
        reference, mirror, keywords, _ = build_states(9, n=4,
                                                      n_keywords=1)
        text = keywords[0]
        reference.begin_auction(text, 1.0)
        mirror.begin_auction(text, 1.0)
        for advertiser in range(4):
            reference.record_win(advertiser, 300.0, 1.0)
            mirror.record_win(advertiser, 300.0, 1.0)
        assert all(mirror.mode_of(a) == "dec" for a in range(4))
        horizon = int(300.0 * 4 / float(mirror.target.min())) + 10
        stride = max(horizon // 80, 1)
        for t in range(2, horizon, stride):
            reference.begin_auction(text, float(t))
            mirror.begin_auction(text, float(t))
            assert_parity(reference, mirror, keywords, t)
        assert all(mirror.mode_of(a) == "inc" for a in range(4))

    def test_effective_bid_matches_snapshot(self):
        _, mirror, keywords, _ = build_states(5)
        mirror.begin_auction(keywords[0], 1.0)
        snapshot = mirror.bids_for_keyword(keywords[0])
        for advertiser, bid in snapshot.items():
            assert mirror.effective_bid(advertiser, keywords[0]) == bid


class TestBidSourceView:
    def test_dense_mirror_matches_walk(self):
        _, mirror, keywords, _ = build_states(7)
        source = mirror.begin_auction(keywords[0], 1.0)
        for item, value in source.descending():
            assert source.eff[item] == value
            assert source.key(item) == value
        assert 0 in source
        assert mirror.num_advertisers not in source

    def test_view_is_invalidated_by_next_auction(self):
        # Documented lifetime: the eff buffer is per-state scratch.
        _, mirror, keywords, _ = build_states(8, n_keywords=2)
        first = mirror.begin_auction(keywords[0], 1.0)
        second = mirror.begin_auction(keywords[1], 2.0)
        assert first.eff is second.eff


class TestAccounting:
    def test_physical_moves_stay_sublinear(self):
        reference, mirror, keywords, _ = build_states(17, n=40,
                                                      n_keywords=2)
        for t in range(1, 150):
            text = keywords[t % 2]
            reference.begin_auction(text, float(t))
            mirror.begin_auction(text, float(t))
        eager_updates = 150 * 40
        assert mirror.physical_moves < eager_updates / 10
        assert mirror.keyword_count(keywords[0]) \
            == reference.keyword_count(keywords[0])

    def test_trigger_stats_exposed(self):
        _, mirror, _, _ = build_states(21, n=4, n_keywords=1)
        scheduled, fired, pending = mirror.trigger_stats()
        assert scheduled >= 4  # one bound trigger per unsaturated bid
        assert fired == 0
        assert pending == scheduled


class TestChurnEqualsFreshBuild:
    """Any interleaving of join/leave/update (and auctions, and wins)
    leaves the incrementally-maintained state equal to a fresh build
    from the surviving population — the online serving layer's
    maintenance invariant, at the data-structure level."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_random_churn_interleavings(self, seed):
        rng = np.random.default_rng(seed)
        capacity, n_keywords = 20, 2
        keywords = [f"kw{j}" for j in range(n_keywords)]
        values = rng.uniform(0.5, 20.0, size=(capacity, n_keywords))
        matrix = rng.uniform(0.1, 0.9, size=(capacity, 3))
        state = LazyPacerArrays(np.ones(capacity), keywords)
        index = ColumnArgsortIndex(matrix, members=state.active_ids())
        active: list[int] = []
        time = 0.0
        for _ in range(120):
            time += 1.0
            action = rng.random()
            if action < 0.25 and len(active) < capacity:
                advertiser = int(rng.choice(
                    [a for a in range(capacity) if a not in active]))
                caps = values[advertiser]
                state.join(advertiser, float(rng.uniform(0.5, 5.0)),
                           bids=caps * 0.5, maxbids=caps)
                index.insert(advertiser)
                active.append(advertiser)
            elif action < 0.4 and len(active) > 1:
                advertiser = int(rng.choice(active))
                state.leave(advertiser)
                index.remove(advertiser)
                active.remove(advertiser)
            elif action < 0.55 and active:
                advertiser = int(rng.choice(active))
                col = int(rng.integers(n_keywords))
                maxbid = float(values[advertiser, col])
                state.update_bid(advertiser, keywords[col],
                                 float(rng.uniform(0.0, maxbid)),
                                 maxbid)
            elif active:
                text = keywords[int(rng.integers(n_keywords))]
                state.begin_auction(text, time)
                if rng.random() < 0.5:
                    winner = int(rng.choice(active))
                    state.record_win(winner,
                                     float(rng.uniform(1.0, 10.0)),
                                     time)

        # The argsort index must equal a fresh stable argsort of the
        # survivors, array for array.
        survivors = np.array(sorted(active), dtype=np.int64)
        fresh_index = ColumnArgsortIndex(matrix, members=survivors)
        assert np.array_equal(index.order, fresh_index.order)
        assert np.array_equal(index.sorted_values,
                              fresh_index.sorted_values)
        assert np.array_equal(index.rank, fresh_index.rank)

        # The pacer state must equal a from-scratch rebuild of its
        # primary capture: same population, same effective bids (to
        # the bit), same modes, counters, and deadlines.
        rebuilt = LazyPacerArrays.from_capture(state.capture())
        assert np.array_equal(rebuilt.active_ids(), survivors)
        assert np.array_equal(state.active_ids(), survivors)
        for text in keywords:
            assert rebuilt.bids_for_keyword(text) \
                == state.bids_for_keyword(text)
        for advertiser in survivors:
            assert rebuilt.mode_of(advertiser) \
                == state.mode_of(advertiser)
        assert np.array_equal(rebuilt.counts, state.counts)
        assert np.array_equal(rebuilt.count_deadlines.critical,
                              state.count_deadlines.critical)
        assert np.array_equal(rebuilt.time_deadlines.critical,
                              state.time_deadlines.critical)
        # Walk parity: the merged descending walks surface the same
        # member sets at the same effective values.
        if len(survivors):
            time += 1.0
            first = state.begin_auction(keywords[0], time)
            second = rebuilt.begin_auction(keywords[0], time)
            assert sorted(first.descending()) \
                == sorted(second.descending())


class TestValidation:
    def test_sparse_registration_rejected(self):
        state = LazyPacerState()
        state.add_advertiser(0, 1.0)
        state.add_advertiser(1, 1.0)
        state.add_keyword_bid(0, "kw", initial_bid=1.0, maxbid=2.0)
        with pytest.raises(ValueError):
            LazyPacerArrays.from_state(state, 2)

    def test_non_dense_ids_rejected(self):
        state = LazyPacerState()
        state.add_advertiser(3, 1.0)
        state.add_keyword_bid(3, "kw", initial_bid=1.0, maxbid=2.0)
        with pytest.raises(ValueError):
            LazyPacerArrays.from_state(state, 2)

    def test_no_keywords_rejected(self):
        state = LazyPacerState()
        with pytest.raises(ValueError):
            LazyPacerArrays.from_state(state, 0)

    def test_unknown_keyword_rejected(self):
        _, mirror, _, _ = build_states(1)
        with pytest.raises(KeyError):
            mirror.begin_auction("missing", 1.0)

    def test_negative_price_rejected(self):
        _, mirror, _, _ = build_states(2)
        with pytest.raises(ValueError):
            mirror.record_win(0, -1.0, 1.0)

    def test_bad_step_rejected(self):
        with pytest.raises(ValueError):
            LazyPacerArrays(np.array([1.0]), ["kw"], step=0.0)

    def test_churn_op_validation(self):
        state = LazyPacerArrays(np.ones(3), ["kw"])
        bid, cap = np.array([1.0]), np.array([2.0])
        with pytest.raises(KeyError, match="outside capacity"):
            state.join(5, 1.0, bid, cap)
        with pytest.raises(KeyError, match="outside capacity"):
            state.join(-1, 1.0, bid, cap)
        state.join(0, 1.0, bid, cap)
        with pytest.raises(KeyError, match="already active"):
            state.join(0, 1.0, bid, cap)
        with pytest.raises(ValueError):
            state.join(1, 0.0, bid, cap)  # non-positive target
        with pytest.raises(ValueError):
            state.join(1, 1.0, np.ones(2), np.ones(2))  # wrong width
        with pytest.raises(KeyError):
            state.leave(2)  # never joined
        with pytest.raises(KeyError):
            state.update_bid(2, "kw", 1.0, 2.0)
        with pytest.raises(ValueError):
            state.update_bid(0, "kw", 1.0, -2.0)  # negative cap
        with pytest.raises(KeyError):
            state.effective_bid(2, "kw")  # inactive row
