"""Tests for the threshold algorithm (Section IV-A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.sorted_index import ColumnArgsortIndex, SortedIndex
from repro.evaluation.threshold import (
    full_scan_top_k,
    product_aggregate,
    product_top_k_all_slots,
    threshold_top_k,
)


def _sources_from_arrays(*arrays):
    return [SortedIndex({i: float(value) for i, value in enumerate(array)})
            for array in arrays]


class TestBasics:
    def test_top_one_product(self):
        sources = _sources_from_arrays([0.9, 0.1, 0.5], [1.0, 10.0, 2.0])
        result = threshold_top_k(sources, product_aggregate, 1)
        # scores: 0.9, 1.0, 1.0 -> tie between 1 and 2; lower id wins.
        assert result.ids() == [1]

    def test_k_zero(self):
        sources = _sources_from_arrays([1.0])
        assert threshold_top_k(sources, product_aggregate, 0).items == ()

    def test_k_exceeds_universe(self):
        sources = _sources_from_arrays([3.0, 1.0])
        result = threshold_top_k(sources, product_aggregate, 5)
        assert result.ids() == [0, 1]

    def test_no_sources_rejected(self):
        with pytest.raises(ValueError):
            threshold_top_k([], product_aggregate, 1)

    def test_single_source_is_prefix(self):
        sources = _sources_from_arrays([5.0, 9.0, 1.0, 7.0])
        result = threshold_top_k(sources, product_aggregate, 2)
        assert result.ids() == [1, 3]
        # With one list TA reads exactly k entries.
        assert result.sequential_accesses == 2


class TestCorrectness:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(1, 50), st.integers(1, 8),
           st.integers(0, 2**31 - 1))
    def test_matches_full_scan(self, n, k, seed):
        rng = np.random.default_rng(seed)
        attributes = rng.uniform(0, 1, size=(2, n))
        sources = _sources_from_arrays(*attributes)
        ta = threshold_top_k(sources, product_aggregate, k)
        scan = full_scan_top_k(sources, product_aggregate, k,
                               universe=range(n))
        # Score multisets must match (ties may differ in id only when
        # scores are equal; uniform draws make that measure-zero, so
        # compare ids too).
        assert ta.ids() == scan.ids()
        assert [score for _, score in ta.items] == pytest.approx(
            [score for _, score in scan.items])

    @settings(max_examples=50, deadline=None)
    @given(st.integers(5, 60), st.integers(0, 2**31 - 1))
    def test_sum_aggregate(self, n, seed):
        rng = np.random.default_rng(seed)
        attributes = rng.uniform(0, 1, size=(3, n))
        sources = _sources_from_arrays(*attributes)
        ta = threshold_top_k(sources, sum, 4)
        scan = full_scan_top_k(sources, sum, 4, universe=range(n))
        assert ta.ids() == scan.ids()


class TestInstanceOptimalityInPractice:
    def test_correlated_lists_stop_early(self):
        # When both attributes rank identically, TA stops after ~k rounds.
        n, k = 1000, 5
        values = np.linspace(1.0, 2.0, n)
        sources = _sources_from_arrays(values, values)
        result = threshold_top_k(sources, product_aggregate, k)
        assert result.sequential_accesses <= 2 * (k + 1)

    def test_accesses_bounded_by_full_scan(self):
        rng = np.random.default_rng(1)
        n, k = 400, 5
        sources = _sources_from_arrays(rng.uniform(0.1, 0.9, n),
                                       rng.uniform(0, 50, n))
        result = threshold_top_k(sources, product_aggregate, k)
        assert result.sequential_accesses <= 2 * n
        # and typically far fewer:
        assert result.sequential_accesses < n

    def test_threshold_reported(self):
        sources = _sources_from_arrays([1.0, 0.5], [1.0, 0.5])
        result = threshold_top_k(sources, product_aggregate, 1)
        assert result.threshold_at_stop <= 1.0


class TestTieBreaking:
    """Lock TA's tie semantics before/under the array rewrite.

    TA's contract is *score* exactness: among items it has seen, equal
    scores resolve toward the lower id (the ``(score, -id)`` heap
    order), but sorted access surfaces equal keys higher-id first
    (``SortedIndex.descending()``), and TA legitimately stops without
    seeing every member of a tie class — so tie *identity* depends on
    the walk, and these tests pin the exact current outcomes.
    """

    def test_all_equal_scores_stop_at_first_seen(self):
        # Equal keys walk 7, 6, 5, ...; TA stops once the heap fills
        # and the threshold matches, never seeing ids 0-4.
        sources = _sources_from_arrays([2.0] * 8, [3.0] * 8)
        result = threshold_top_k(sources, product_aggregate, 3)
        assert result.ids() == [5, 6, 7]
        assert result.threshold_at_stop == 6.0

    def test_tie_at_the_cut_prefers_lower_seen_ids(self):
        # id0 scores 8; ids 1-4 tie at 6.  The walk surfaces 4, 3 (and
        # 0) before stopping; among the seen tie class the lower ids
        # win the remaining heap slots.
        sources = _sources_from_arrays([4.0, 3.0, 3.0, 3.0, 3.0],
                                       [2.0, 2.0, 2.0, 2.0, 2.0])
        result = threshold_top_k(sources, product_aggregate, 3)
        assert result.ids() == [0, 3, 4]

    def test_zero_score_ties(self):
        # The zero-bid source yields id 3 first; both seen zeros tie
        # and survive, lower id ordered first in the result.
        sources = _sources_from_arrays([0.5, 0.4, 0.3, 0.2],
                                       [0.0, 0.0, 0.0, 0.0])
        result = threshold_top_k(sources, product_aggregate, 2)
        assert result.ids() == [0, 3]
        assert [score for _, score in result.items] == [0.0, 0.0]

    def test_fully_walked_ties_break_toward_lower_ids(self):
        # k = n forces TA to exhaust both sources: with everything
        # seen, tie-breaking is purely the (score, -id) heap order.
        sources = _sources_from_arrays([1.0, 1.0, 1.0, 2.0],
                                       [1.0, 1.0, 1.0, 0.5])
        result = threshold_top_k(sources, product_aggregate, 4)
        assert result.ids() == [0, 1, 2, 3]

    @settings(max_examples=60, deadline=None)
    @given(st.integers(2, 30), st.integers(1, 6),
           st.integers(0, 2**31 - 1))
    def test_tied_universes_match_full_scan_scores(self, n, k, seed):
        # Draw attributes from a tiny value set so exact ties abound:
        # identities may differ across the seen boundary, but the
        # score multiset must match the full scan exactly.
        rng = np.random.default_rng(seed)
        attributes = rng.choice([0.0, 0.25, 0.5, 1.0], size=(2, n))
        sources = _sources_from_arrays(*attributes)
        ta = threshold_top_k(sources, product_aggregate, k)
        scan = full_scan_top_k(sources, product_aggregate, k,
                               universe=range(n))
        assert [score for _, score in ta.items] \
            == [score for _, score in scan.items]


class TestFusedKernel:
    """product_top_k_all_slots against the per-slot reference."""

    @staticmethod
    def _run(matrix, bids, depth, block=16):
        index = ColumnArgsortIndex(matrix)
        walk = np.argsort(-bids, kind="stable").astype(np.int64)
        rank = np.empty_like(walk)
        rank[walk] = np.arange(len(walk))
        return product_top_k_all_slots(index, walk, bids[walk], rank,
                                       bids, depth, block=block)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 120), st.integers(1, 6), st.integers(1, 9),
           st.integers(0, 2**31 - 1))
    def test_matches_full_scan_scores_per_slot(self, n, k, depth, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.uniform(0.05, 0.95, size=(n, k))
        bids = rng.uniform(0, 50, size=n)
        bids[rng.random(n) < 0.2] = 0.0  # zero-score ties
        result = self._run(matrix, bids, depth)
        for col in range(k):
            scan = full_scan_top_k(
                [SortedIndex({i: float(matrix[i, col])
                              for i in range(n)}),
                 SortedIndex({i: float(bids[i]) for i in range(n)})],
                product_aggregate, depth, universe=range(n))
            got = sorted((float(matrix[i, col] * bids[i])
                          for i in result.slot_ids[col]), reverse=True)
            want = sorted((score for _, score in scan.items),
                          reverse=True)
            assert got == pytest.approx(want, abs=1e-12)
            ids = [int(i) for i in result.slot_ids[col]]
            assert len(set(ids)) == len(ids)  # dedup across sources

    def test_ties_resolve_toward_lower_ids(self):
        matrix = np.full((6, 2), 0.5)
        bids = np.full(6, 3.0)
        result = self._run(matrix, bids, depth=3)
        for col in range(2):
            assert sorted(int(i) for i in result.slot_ids[col]) \
                == [0, 1, 2]

    def test_depth_beyond_universe_returns_everyone(self):
        matrix = np.array([[0.2], [0.8]])
        bids = np.array([1.0, 2.0])
        result = self._run(matrix, bids, depth=10)
        assert sorted(int(i) for i in result.slot_ids[0]) == [0, 1]

    def test_depth_zero(self):
        result = self._run(np.ones((3, 2)), np.ones(3), depth=0)
        assert all(len(ids) == 0 for ids in result.slot_ids)
        assert result.sequential_count == 0

    def test_mismatched_walk_rejected(self):
        index = ColumnArgsortIndex(np.ones((3, 1)))
        with pytest.raises(ValueError):
            product_top_k_all_slots(index, np.arange(2), np.ones(2),
                                    np.arange(2), np.ones(3), 1)

    def _scores_match_scan(self, matrix, bids, depth, block):
        result = self._run(matrix, bids, depth, block=block)
        n, k = matrix.shape
        for col in range(k):
            scan = full_scan_top_k(
                [SortedIndex({i: float(matrix[i, col])
                              for i in range(n)}),
                 SortedIndex({i: float(bids[i]) for i in range(n)})],
                product_aggregate, depth, universe=range(n))
            got = sorted((float(matrix[i, col] * bids[i])
                          for i in result.slot_ids[col]), reverse=True)
            want = sorted((score for _, score in scan.items),
                          reverse=True)
            assert got == pytest.approx(want, abs=1e-12), (col, block)

    def test_cross_block_duplicate_cannot_stop_early(self):
        # Regression: an id surfaced by the bid walk in an early block
        # and by the click walk in a later one must not occupy two
        # running top-k slots — the duplicated high score would
        # inflate the k-th best and fire the threshold stop before a
        # qualifying unseen id is reached.  Discrete values make such
        # cross-block overlaps common; block=1 maximizes block skew.
        rng = np.random.default_rng(0)
        for _ in range(123):
            matrix = rng.choice([0.1, 0.3, 0.5, 0.7, 0.9],
                                size=(48, 2))
            bids = rng.choice([0.0, 1.0, 2.0, 5.0, 10.0], size=48)
        for block in (1, 2, 5, 16):
            self._scores_match_scan(matrix, bids, 4, block)

    @settings(max_examples=80, deadline=None)
    @given(st.integers(2, 60), st.integers(1, 4), st.integers(1, 6),
           st.integers(1, 7), st.integers(0, 2**31 - 1))
    def test_discrete_values_match_scan_at_any_block(self, n, k, depth,
                                                     block, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.choice([0.1, 0.3, 0.5, 0.7, 0.9], size=(n, k))
        bids = rng.choice([0.0, 1.0, 2.0, 5.0, 10.0], size=n)
        self._scores_match_scan(matrix, bids, depth, block)

    def test_accesses_stay_sublinear_on_correlated_inputs(self):
        # Both sources rank identically: the kernel stops after the
        # first block even though n is large.
        n = 4000
        values = np.linspace(1.0, 2.0, n)
        matrix = values[:, None] * np.ones((1, 3))
        result = self._run(matrix, values.copy(), depth=4, block=16)
        assert result.sequential_count <= 3 * 2 * 16
        assert result.random_count < 3 * 2 * 16
