"""Tests for the threshold algorithm (Section IV-A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.sorted_index import SortedIndex
from repro.evaluation.threshold import (
    full_scan_top_k,
    product_aggregate,
    threshold_top_k,
)


def _sources_from_arrays(*arrays):
    return [SortedIndex({i: float(value) for i, value in enumerate(array)})
            for array in arrays]


class TestBasics:
    def test_top_one_product(self):
        sources = _sources_from_arrays([0.9, 0.1, 0.5], [1.0, 10.0, 2.0])
        result = threshold_top_k(sources, product_aggregate, 1)
        # scores: 0.9, 1.0, 1.0 -> tie between 1 and 2; lower id wins.
        assert result.ids() == [1]

    def test_k_zero(self):
        sources = _sources_from_arrays([1.0])
        assert threshold_top_k(sources, product_aggregate, 0).items == ()

    def test_k_exceeds_universe(self):
        sources = _sources_from_arrays([3.0, 1.0])
        result = threshold_top_k(sources, product_aggregate, 5)
        assert result.ids() == [0, 1]

    def test_no_sources_rejected(self):
        with pytest.raises(ValueError):
            threshold_top_k([], product_aggregate, 1)

    def test_single_source_is_prefix(self):
        sources = _sources_from_arrays([5.0, 9.0, 1.0, 7.0])
        result = threshold_top_k(sources, product_aggregate, 2)
        assert result.ids() == [1, 3]
        # With one list TA reads exactly k entries.
        assert result.sequential_accesses == 2


class TestCorrectness:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(1, 50), st.integers(1, 8),
           st.integers(0, 2**31 - 1))
    def test_matches_full_scan(self, n, k, seed):
        rng = np.random.default_rng(seed)
        attributes = rng.uniform(0, 1, size=(2, n))
        sources = _sources_from_arrays(*attributes)
        ta = threshold_top_k(sources, product_aggregate, k)
        scan = full_scan_top_k(sources, product_aggregate, k,
                               universe=range(n))
        # Score multisets must match (ties may differ in id only when
        # scores are equal; uniform draws make that measure-zero, so
        # compare ids too).
        assert ta.ids() == scan.ids()
        assert [score for _, score in ta.items] == pytest.approx(
            [score for _, score in scan.items])

    @settings(max_examples=50, deadline=None)
    @given(st.integers(5, 60), st.integers(0, 2**31 - 1))
    def test_sum_aggregate(self, n, seed):
        rng = np.random.default_rng(seed)
        attributes = rng.uniform(0, 1, size=(3, n))
        sources = _sources_from_arrays(*attributes)
        ta = threshold_top_k(sources, sum, 4)
        scan = full_scan_top_k(sources, sum, 4, universe=range(n))
        assert ta.ids() == scan.ids()


class TestInstanceOptimalityInPractice:
    def test_correlated_lists_stop_early(self):
        # When both attributes rank identically, TA stops after ~k rounds.
        n, k = 1000, 5
        values = np.linspace(1.0, 2.0, n)
        sources = _sources_from_arrays(values, values)
        result = threshold_top_k(sources, product_aggregate, k)
        assert result.sequential_accesses <= 2 * (k + 1)

    def test_accesses_bounded_by_full_scan(self):
        rng = np.random.default_rng(1)
        n, k = 400, 5
        sources = _sources_from_arrays(rng.uniform(0.1, 0.9, n),
                                       rng.uniform(0, 50, n))
        result = threshold_top_k(sources, product_aggregate, k)
        assert result.sequential_accesses <= 2 * n
        # and typically far fewer:
        assert result.sequential_accesses < n

    def test_threshold_reported(self):
        sources = _sources_from_arrays([1.0, 0.5], [1.0, 0.5])
        result = threshold_top_k(sources, product_aggregate, 1)
        assert result.threshold_at_stop <= 1.0
