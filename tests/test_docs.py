"""The documentation set stays buildable, linked, and complete.

Runs the same checks as the CI docs gate
(``python tools/build_docs.py --strict``) from inside the test suite,
so a broken link, an unresolved docstring cross-reference, a package
missing from ``docs/architecture.md``, or a stale generated API page
fails tier-1 — not just the docs job.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent


@pytest.fixture(scope="module")
def build_docs():
    spec = importlib.util.spec_from_file_location(
        "build_docs", REPO / "tools" / "build_docs.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop(spec.name, None)


def test_strict_build_passes(build_docs, capsys):
    assert build_docs.main(["--strict"]) == 0
    assert "OK" in capsys.readouterr().out


def test_every_package_has_an_architecture_section(build_docs):
    errors: list[str] = []
    build_docs.check_architecture_covers_packages(errors)
    assert errors == []


def test_api_reference_covers_every_package(build_docs):
    packages = build_docs.repro_packages()
    assert "repro.runtime" in packages
    for package in packages:
        page = REPO / "docs" / "api" / f"{package}.md"
        assert page.exists(), f"missing generated page for {package}"
    index = (REPO / "docs" / "api" / "index.md").read_text(
        encoding="utf-8")
    for package in packages:
        assert f"{package}.md" in index


def test_checker_catches_broken_links(build_docs, tmp_path,
                                      monkeypatch):
    # The gate must actually gate: a document with a dangling link has
    # to be reported.
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "page.md").write_text("[gone](missing.md)",
                                  encoding="utf-8")
    (tmp_path / "README.md").write_text("fine", encoding="utf-8")
    monkeypatch.setattr(build_docs, "REPO", tmp_path)
    monkeypatch.setattr(build_docs, "DOCS", docs)
    errors: list[str] = []
    build_docs.check_links(errors)
    assert any("missing.md" in error for error in errors)


def test_checker_catches_unresolved_references(build_docs):
    assert build_docs.resolve_reference("repro.runtime.ShardPlan")
    assert build_docs.resolve_reference(
        "repro.auction.settlement.AuctionSettler.settle")
    assert not build_docs.resolve_reference("repro.runtime.Nonexistent")
    assert not build_docs.resolve_reference("repro.no_such_module.X")


def test_mkdocs_nav_references_existing_pages():
    # mkdocs.yml is the optional site build; its nav must not rot.
    text = (REPO / "mkdocs.yml").read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if line.endswith(".md"):
            target = line.split(": ")[-1]
            assert (REPO / "docs" / target).exists(), target
