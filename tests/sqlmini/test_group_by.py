"""Tests for GROUP BY / HAVING (sqlmini extension).

Per-formula aggregation is exactly what Figure 5's Bids update does with
a correlated subquery; GROUP BY expresses it directly, so the extension
is squarely inside the dialect's intended use.
"""

import pytest

from repro.sqlmini.database import Database
from repro.sqlmini.errors import SqlRuntimeError


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE Keywords (text TEXT, formula TEXT, bid REAL, "
        "relevance REAL)")
    database.execute("""
        INSERT INTO Keywords VALUES
            ('boot',   'Click & Slot1', 4, 0.8),
            ('boots',  'Click & Slot1', 2, 0.9),
            ('shoe',   'Click',         8, 0.2),
            ('shoes',  'Click',         1, 0.95)
    """)
    return database


class TestBasics:
    def test_group_with_aggregates(self, db):
        result = db.query(
            "SELECT formula, SUM(bid), COUNT(*) FROM Keywords "
            "GROUP BY formula")
        assert result.columns == ("formula", "sum", "count")
        assert set(result.rows) == {("Click & Slot1", 6.0, 2),
                                    ("Click", 9.0, 2)}

    def test_group_order_is_first_occurrence(self, db):
        result = db.query(
            "SELECT formula, MAX(bid) FROM Keywords GROUP BY formula")
        assert [row[0] for row in result.rows] == ["Click & Slot1",
                                                   "Click"]

    def test_where_filters_before_grouping(self, db):
        # The Figure 5 semantics, GROUP BY style: sum bids of
        # sufficiently relevant keywords per formula.
        result = db.query(
            "SELECT formula, SUM(bid) FROM Keywords "
            "WHERE relevance > 0.7 GROUP BY formula")
        assert set(result.rows) == {("Click & Slot1", 6.0),
                                    ("Click", 1.0)}

    def test_having_filters_groups(self, db):
        result = db.query(
            "SELECT formula FROM Keywords GROUP BY formula "
            "HAVING SUM(bid) > 7")
        assert result.rows == (("Click",),)

    def test_order_by_aggregate(self, db):
        result = db.query(
            "SELECT formula, SUM(bid) s FROM Keywords "
            "GROUP BY formula ORDER BY SUM(bid) DESC")
        assert [row[1] for row in result.rows] == [9.0, 6.0]

    def test_arithmetic_over_aggregates_and_keys(self, db):
        result = db.query(
            "SELECT formula, SUM(bid) / COUNT(*) FROM Keywords "
            "GROUP BY formula ORDER BY formula")
        by_formula = dict(result.rows)
        assert by_formula["Click"] == pytest.approx(4.5)
        assert by_formula["Click & Slot1"] == pytest.approx(3.0)

    def test_limit(self, db):
        result = db.query(
            "SELECT formula FROM Keywords GROUP BY formula LIMIT 1")
        assert len(result.rows) == 1


class TestKeys:
    def test_expression_keys(self, db):
        result = db.query(
            "SELECT relevance > 0.7, COUNT(*) FROM Keywords "
            "GROUP BY relevance > 0.7")
        assert set(result.rows) == {(True, 3), (False, 1)}

    def test_numeric_keys_unify_int_and_float(self, db):
        db.execute("CREATE TABLE T (x REAL)")
        db.execute("INSERT INTO T VALUES (2), (2.0), (3)")
        result = db.query("SELECT x, COUNT(*) FROM T GROUP BY x")
        assert set(result.rows) == {(2.0, 2), (3.0, 1)}

    def test_null_keys_group_together(self, db):
        db.execute("CREATE TABLE T (x TEXT)")
        db.execute("INSERT INTO T (x) VALUES (NULL), (NULL), ('a')")
        result = db.query("SELECT COUNT(*) FROM T GROUP BY x "
                          "ORDER BY COUNT(*) DESC")
        assert result.rows == ((2,), (1,))


class TestErrors:
    def test_non_grouped_column_rejected(self, db):
        with pytest.raises(SqlRuntimeError):
            db.query("SELECT text, SUM(bid) FROM Keywords "
                     "GROUP BY formula")

    def test_star_with_group_by_rejected(self, db):
        with pytest.raises(SqlRuntimeError):
            db.query("SELECT * FROM Keywords GROUP BY formula")

    def test_having_with_non_grouped_column_rejected(self, db):
        with pytest.raises(SqlRuntimeError):
            db.query("SELECT formula FROM Keywords GROUP BY formula "
                     "HAVING bid > 1")


class TestEquivalenceWithFigure5Subquery:
    def test_group_by_matches_correlated_subquery(self, db):
        grouped = dict(db.query(
            "SELECT formula, SUM(bid) FROM Keywords "
            "WHERE relevance > 0.7 GROUP BY formula").rows)
        db.execute("CREATE TABLE Bids (formula TEXT, value REAL)")
        db.execute("INSERT INTO Bids VALUES ('Click & Slot1', 0), "
                   "('Click', 0)")
        db.execute(
            "UPDATE Bids SET value = ( SELECT SUM(K.bid) FROM Keywords K "
            "WHERE K.relevance > 0.7 AND K.formula = Bids.formula )")
        subquery = {row["formula"]: row["value"]
                    for row in db.rows("Bids")}
        assert grouped == subquery
