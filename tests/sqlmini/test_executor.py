"""Tests for sqlmini statement execution and expression semantics."""

import pytest

from repro.sqlmini.database import Database
from repro.sqlmini.errors import (
    SqlNameError,
    SqlRuntimeError,
    SqlSchemaError,
    SqlTypeError,
)


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE T (name TEXT, score REAL, n INT)")
    database.execute("INSERT INTO T VALUES ('a', 1.5, 1), "
                     "('b', 2.5, 2), ('c', 0.5, 3)")
    return database


class TestSelect:
    def test_projection_and_where(self, db):
        result = db.query("SELECT name FROM T WHERE score > 1")
        assert result.single_column() == ["a", "b"]

    def test_order_by_desc_and_limit(self, db):
        result = db.query("SELECT name FROM T ORDER BY score DESC LIMIT 2")
        assert result.single_column() == ["b", "a"]

    def test_star(self, db):
        result = db.query("SELECT * FROM T WHERE n = 2")
        assert result.columns == ("name", "score", "n")
        assert result.rows == (("b", 2.5, 2),)

    def test_expression_projection(self, db):
        result = db.query("SELECT score * 2 doubled FROM T WHERE n = 1")
        assert result.columns == ("doubled",)
        assert result.rows == ((3.0,),)

    def test_distinct(self, db):
        db.execute("INSERT INTO T VALUES ('a', 1.5, 9)")
        result = db.query("SELECT DISTINCT name FROM T ORDER BY name")
        assert result.single_column() == ["a", "b", "c"]

    def test_aggregates(self, db):
        result = db.query(
            "SELECT COUNT(*), SUM(score), MAX(score), MIN(n), AVG(score) "
            "FROM T")
        assert result.rows == ((3, 4.5, 2.5, 1, 1.5),)

    def test_aggregate_with_where(self, db):
        result = db.query("SELECT SUM(n) FROM T WHERE score > 1")
        assert result.scalar() == 3

    def test_sum_over_empty_is_zero(self, db):
        # Deliberate divergence from SQL NULL: Figure 6 requires 0.
        result = db.query("SELECT SUM(score) FROM T WHERE n > 99")
        assert result.scalar() == 0

    def test_max_over_empty_is_null(self, db):
        assert db.query("SELECT MAX(score) FROM T WHERE n > 99").scalar() \
            is None

    def test_count_star_vs_count_column(self, db):
        db.execute("INSERT INTO T (name) VALUES ('d')")  # score NULL
        result = db.query("SELECT COUNT(*), COUNT(score) FROM T")
        assert result.rows == ((4, 3),)

    def test_mixed_aggregate_and_bare_column_rejected(self, db):
        with pytest.raises(SqlRuntimeError):
            db.query("SELECT name, MAX(score) FROM T")

    def test_aggregate_arithmetic(self, db):
        result = db.query("SELECT MAX(score) - MIN(score) FROM T")
        assert result.scalar() == 2.0

    def test_select_without_from(self, db):
        assert db.query("SELECT 1 + 2").scalar() == 3


class TestUpdateDelete:
    def test_update_where(self, db):
        count = db.execute("UPDATE T SET score = 0 WHERE n >= 2")
        assert count == 2
        assert db.query("SELECT SUM(score) FROM T").scalar() == 1.5

    def test_snapshot_semantics(self, db):
        # Incrementing the max: the subquery must see pre-update values,
        # so exactly one row (the old max) moves.
        db.execute("UPDATE T SET score = score + 10 "
                   "WHERE score = (SELECT MAX(score) FROM T)")
        result = db.query("SELECT name FROM T WHERE score > 10")
        assert result.single_column() == ["b"]

    def test_update_type_coercion(self, db):
        db.execute("UPDATE T SET n = 2.0 WHERE name = 'a'")
        assert db.query("SELECT n FROM T WHERE name = 'a'").scalar() == 2

    def test_update_type_error(self, db):
        with pytest.raises(SqlTypeError):
            db.execute("UPDATE T SET n = 'x'")

    def test_delete(self, db):
        removed = db.execute("DELETE FROM T WHERE score < 1")
        assert removed == 1
        assert db.query("SELECT COUNT(*) FROM T").scalar() == 2

    def test_delete_all(self, db):
        assert db.execute("DELETE FROM T") == 3


class TestCorrelatedSubqueries:
    def test_outer_row_visible_by_table_name(self, db):
        db.execute("CREATE TABLE S (name TEXT, bonus REAL)")
        db.execute("INSERT INTO S VALUES ('a', 10), ('b', 20)")
        db.execute("UPDATE T SET score = "
                   "(SELECT X.bonus FROM S X WHERE X.name = T.name)")
        result = db.query("SELECT score FROM T ORDER BY name")
        assert result.single_column() == [10.0, 20.0, None]


class TestNullSemantics:
    def test_arithmetic_propagates_null(self, db):
        assert db.query("SELECT NULL + 1").scalar() is None

    def test_comparison_with_null_is_unknown(self, db):
        # WHERE treats unknown as not-satisfied.
        db.execute("INSERT INTO T (name) VALUES ('d')")
        result = db.query("SELECT name FROM T WHERE score > 0")
        assert "d" not in result.single_column()

    def test_kleene_and_or(self, db):
        assert db.query("SELECT NULL AND FALSE").scalar() is False
        assert db.query("SELECT NULL AND TRUE").scalar() is None
        assert db.query("SELECT NULL OR TRUE").scalar() is True
        assert db.query("SELECT NOT NULL").scalar() is None

    def test_null_sorts_first(self, db):
        db.execute("INSERT INTO T (name) VALUES ('d')")
        result = db.query("SELECT name FROM T ORDER BY score")
        assert result.single_column()[0] == "d"


class TestErrors:
    def test_division_by_zero(self, db):
        with pytest.raises(SqlRuntimeError):
            db.query("SELECT 1 / 0")

    def test_unknown_column(self, db):
        with pytest.raises(SqlNameError):
            db.query("SELECT wat FROM T")

    def test_unknown_table(self, db):
        with pytest.raises(SqlNameError):
            db.query("SELECT 1 FROM Missing")

    def test_scalar_subquery_multiple_rows(self, db):
        with pytest.raises(SqlRuntimeError):
            db.query("SELECT (SELECT name FROM T)")

    def test_duplicate_table(self, db):
        with pytest.raises(SqlSchemaError):
            db.execute("CREATE TABLE T (x INT)")

    def test_boolean_context_type_error(self, db):
        with pytest.raises(SqlTypeError):
            db.query("SELECT 1 AND TRUE")

    def test_incomparable_types(self, db):
        with pytest.raises(SqlTypeError):
            db.query("SELECT name FROM T WHERE name > 1")

    def test_aggregate_outside_select(self, db):
        with pytest.raises(SqlRuntimeError):
            db.execute("UPDATE T SET score = MAX(score)")

    def test_insert_arity_mismatch(self, db):
        with pytest.raises(SqlTypeError):
            db.execute("INSERT INTO T VALUES (1)")


class TestScalarFunctions:
    def test_abs_round(self, db):
        assert db.query("SELECT ABS(0 - 5)").scalar() == 5
        assert db.query("SELECT ROUND(2.567, 1)").scalar() == 2.6

    def test_coalesce(self, db):
        assert db.query("SELECT COALESCE(NULL, NULL, 7)").scalar() == 7

    def test_least_greatest(self, db):
        assert db.query("SELECT LEAST(3, 1, 2)").scalar() == 1
        assert db.query("SELECT GREATEST(3, 1, 2)").scalar() == 3

    def test_unknown_function(self, db):
        with pytest.raises(SqlNameError):
            db.query("SELECT FROBNICATE(1)")

    def test_string_concatenation(self, db):
        assert db.query("SELECT 'a' + 'b'").scalar() == "ab"
