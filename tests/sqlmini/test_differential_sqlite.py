"""Differential tests: sqlmini vs SQLite on their common dialect.

For queries both engines understand identically — single-table SELECT
with WHERE / ORDER BY / aggregates / GROUP BY over numeric and text
columns with NULLs — the two must agree.  Hypothesis generates random
tables and predicates; results are compared as sorted multisets so
nondeterministic tie orders cannot flake.

Known, deliberate divergences are normalised out:

* sqlmini's ``SUM`` over the empty set is 0 (Figure 6 requires it);
  SQLite's ``TOTAL()`` has the same semantics, so SUM is compared via
  TOTAL.
* sqlmini rejects mixed-type comparisons; generated predicates only
  compare like with like.
"""

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlmini.database import Database

# -- value & row strategies ---------------------------------------------------

ints = st.one_of(st.none(), st.integers(-50, 50))
reals = st.one_of(st.none(),
                  st.floats(-50, 50, allow_nan=False).map(
                      lambda v: round(v, 3)))
texts = st.one_of(st.none(), st.sampled_from(["a", "b", "c", "dd"]))

rows_strategy = st.lists(st.tuples(ints, reals, texts), min_size=0,
                         max_size=12)


def predicates() -> st.SearchStrategy[str]:
    """WHERE predicates valid and identical in both dialects."""
    number_comparisons = st.builds(
        lambda col, op, value: f"{col} {op} {value}",
        st.sampled_from(["x", "y"]),
        st.sampled_from(["<", "<=", ">", ">=", "=", "<>"]),
        st.integers(-40, 40))
    text_comparisons = st.builds(
        lambda op, value: f"t {op} '{value}'",
        st.sampled_from(["=", "<>"]),
        st.sampled_from(["a", "b", "zz"]))
    leaf = st.one_of(number_comparisons, text_comparisons)
    return st.recursive(
        leaf,
        lambda inner: st.one_of(
            st.builds(lambda a, b: f"({a}) AND ({b})", inner, inner),
            st.builds(lambda a, b: f"({a}) OR ({b})", inner, inner),
            st.builds(lambda a: f"NOT ({a})", inner),
        ),
        max_leaves=4)


def _build_engines(rows):
    mini = Database()
    mini.execute("CREATE TABLE T (x INT, y REAL, t TEXT)")
    lite = sqlite3.connect(":memory:")
    lite.execute("CREATE TABLE T (x INT, y REAL, t TEXT)")
    for x, y, t in rows:
        mini.table("T").insert([x, y, t])
        lite.execute("INSERT INTO T VALUES (?, ?, ?)", (x, y, t))
    return mini, lite


def _normalise(value):
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def _sorted_rows(rows):
    def key(row):
        return tuple((value is None, str(type(value)), str(value))
                     for value in row)

    return sorted([tuple(_normalise(v) for v in row) for row in rows],
                  key=key)


def _compare(mini, lite, mini_sql, lite_sql=None):
    lite_sql = lite_sql or mini_sql
    ours = _sorted_rows(mini.query(mini_sql).rows)
    theirs = _sorted_rows(lite.execute(lite_sql).fetchall())
    assert ours == pytest.approx(theirs), (mini_sql, ours, theirs)


class TestSelectWhere:
    @settings(max_examples=120, deadline=None)
    @given(rows_strategy, predicates())
    def test_filtered_projection(self, rows, predicate):
        mini, lite = _build_engines(rows)
        _compare(mini, lite,
                 f"SELECT x, y, t FROM T WHERE {predicate}")

    @settings(max_examples=60, deadline=None)
    @given(rows_strategy)
    def test_arithmetic_projection(self, rows):
        mini, lite = _build_engines(rows)
        _compare(mini, lite, "SELECT x + 1, y * 2 FROM T")

    @settings(max_examples=60, deadline=None)
    @given(rows_strategy)
    def test_distinct(self, rows):
        mini, lite = _build_engines(rows)
        _compare(mini, lite, "SELECT DISTINCT t FROM T")


class TestAggregates:
    @settings(max_examples=100, deadline=None)
    @given(rows_strategy, predicates())
    def test_whole_table_aggregates(self, rows, predicate):
        mini, lite = _build_engines(rows)
        _compare(
            mini, lite,
            f"SELECT COUNT(*), COUNT(x), MAX(x), MIN(y), SUM(x) "
            f"FROM T WHERE {predicate}",
            f"SELECT COUNT(*), COUNT(x), MAX(x), MIN(y), TOTAL(x) "
            f"FROM T WHERE {predicate}")

    @settings(max_examples=100, deadline=None)
    @given(rows_strategy)
    def test_group_by(self, rows):
        mini, lite = _build_engines(rows)
        _compare(mini, lite,
                 "SELECT t, COUNT(*), SUM(x) FROM T GROUP BY t",
                 "SELECT t, COUNT(*), TOTAL(x) FROM T GROUP BY t")

    @settings(max_examples=60, deadline=None)
    @given(rows_strategy, st.integers(-5, 5))
    def test_group_by_having(self, rows, threshold):
        mini, lite = _build_engines(rows)
        _compare(
            mini, lite,
            f"SELECT t, COUNT(*) FROM T GROUP BY t "
            f"HAVING COUNT(*) > {threshold}")


class TestUpdateDelete:
    @settings(max_examples=80, deadline=None)
    @given(rows_strategy, predicates(), st.integers(-10, 10))
    def test_update_then_dump(self, rows, predicate, delta):
        mini, lite = _build_engines(rows)
        mini.execute(f"UPDATE T SET x = x + {delta} WHERE {predicate}")
        lite.execute(f"UPDATE T SET x = x + {delta} WHERE {predicate}")
        _compare(mini, lite, "SELECT x, y, t FROM T")

    @settings(max_examples=80, deadline=None)
    @given(rows_strategy, predicates())
    def test_delete_then_dump(self, rows, predicate):
        mini, lite = _build_engines(rows)
        mini.execute(f"DELETE FROM T WHERE {predicate}")
        lite.execute(f"DELETE FROM T WHERE {predicate}")
        _compare(mini, lite, "SELECT x, y, t FROM T")
