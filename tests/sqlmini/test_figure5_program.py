"""Fidelity test: the paper's Figure 5 program runs verbatim on sqlmini.

The only edit to the figure's text is on its line 11, where the paper
repeats the underspending comparison (``<``) in the overspending branch —
an evident typo; the intended ``>`` is used (recorded in DESIGN.md).
"""

import pytest

from repro.sqlmini.database import Database
from repro.strategies.sql_program import FIGURE5_PROGRAM

FIGURE4_KEYWORDS = [
    # text, formula, maxbid, roi, bid, relevance — exactly Figure 4.
    ("boot", "Click & Slot1", 5.0, 2.0, 4.0, 0.8),
    ("shoe", "Click", 6.0, 1.0, 8.0, 0.2),
]


def make_database():
    db = Database()
    db.execute("""
        CREATE TABLE Query (text TEXT);
        CREATE TABLE Keywords (text TEXT, formula TEXT, maxbid REAL,
                               roi REAL, bid REAL, relevance REAL);
        CREATE TABLE Bids (formula TEXT, value REAL);
    """)
    for row in FIGURE4_KEYWORDS:
        placeholders = ", ".join(
            f"'{value}'" if isinstance(value, str) else str(value)
            for value in row)
        db.execute(f"INSERT INTO Keywords VALUES ({placeholders})")
    db.execute("INSERT INTO Bids VALUES ('Click & Slot1', 0), "
               "('Click', 0)")
    db.execute(FIGURE5_PROGRAM)
    return db


def bids_of(db):
    return {row["formula"]: row["value"] for row in db.rows("Bids")}


def keywords_bid(db, text):
    result = db.query(f"SELECT bid FROM Keywords WHERE text = '{text}'")
    return result.scalar()


class TestFigure4ToFigure6:
    def test_neutral_spending_reproduces_figure6(self):
        # With the spending rate exactly on target neither branch fires;
        # the Bids update alone must produce Figure 6: Click & Slot1 -> 4
        # (boot's bid; relevance 0.8 > 0.7) and Click -> 0 (shoe's
        # relevance 0.2 fails the filter).
        db = make_database()
        db.set_variable("amtSpent", 6.0)
        db.set_variable("time", 2.0)
        db.set_variable("targetSpendRate", 3.0)
        db.execute("INSERT INTO Query VALUES ('boot')")
        assert bids_of(db) == {"Click & Slot1": 4.0, "Click": 0.0}


class TestUnderspendingBranch:
    def test_max_roi_keyword_incremented(self):
        db = make_database()
        db.set_variable("amtSpent", 2.0)
        db.set_variable("time", 2.0)   # rate 1 < target 3
        db.set_variable("targetSpendRate", 3.0)
        db.execute("INSERT INTO Query VALUES ('boot')")
        # boot has the max ROI (2 > 1), relevance 0.8 > 0, bid 4 < 5.
        assert keywords_bid(db, "boot") == 5.0
        assert keywords_bid(db, "shoe") == 8.0  # untouched
        assert bids_of(db)["Click & Slot1"] == 5.0

    def test_bid_cap_respected(self):
        db = make_database()
        db.set_variable("amtSpent", 0.0)
        db.set_variable("time", 1.0)
        db.set_variable("targetSpendRate", 3.0)
        db.execute("INSERT INTO Query VALUES ('boot')")   # 4 -> 5 = maxbid
        db.execute("INSERT INTO Query VALUES ('boot')")   # bid < maxbid fails
        assert keywords_bid(db, "boot") == 5.0


class TestOverspendingBranch:
    def test_min_roi_keyword_decremented(self):
        db = make_database()
        db.set_variable("amtSpent", 20.0)
        db.set_variable("time", 2.0)   # rate 10 > target 3
        db.set_variable("targetSpendRate", 3.0)
        # Make shoe relevant so the min-ROI row qualifies.
        db.execute("UPDATE Keywords SET relevance = 0.9 "
                   "WHERE text = 'shoe'")
        db.execute("INSERT INTO Query VALUES ('shoe')")
        assert keywords_bid(db, "shoe") == 7.0
        assert keywords_bid(db, "boot") == 4.0  # max-ROI row untouched
        # shoe is now sufficiently relevant, so Bids carries its bid.
        assert bids_of(db)["Click"] == 7.0

    def test_irrelevant_min_roi_keyword_not_decremented(self):
        db = make_database()
        db.set_variable("amtSpent", 20.0)
        db.set_variable("time", 2.0)
        db.set_variable("targetSpendRate", 3.0)
        # Query 'boot': shoe (min ROI) has relevance 0.2 > 0, so it IS
        # decremented per Figure 5's WHERE clause (relevance > 0, not
        # > 0.7).
        db.execute("INSERT INTO Query VALUES ('boot')")
        assert keywords_bid(db, "shoe") == 7.0


class TestNativeSqlEquivalence:
    """The native ROIEqualizerProgram tracks the SQL program exactly."""

    @pytest.mark.parametrize("spend,time,target", [
        (0.0, 1.0, 3.0),    # underspending
        (20.0, 2.0, 3.0),   # overspending
        (6.0, 2.0, 3.0),    # on target
    ])
    def test_one_auction_parity(self, spend, time, target):
        from repro.strategies import (
            AuctionContext,
            KeywordRecord,
            ProgramState,
            Query,
            ROIEqualizerProgram,
        )

        db = make_database()
        db.set_variable("amtSpent", spend)
        db.set_variable("time", time)
        db.set_variable("targetSpendRate", target)
        # Mirror relevance scores used by the SQL path.
        query = Query(text="boot", relevance={"boot": 0.8, "shoe": 0.2})

        records = [
            KeywordRecord(text="boot", formula="Click & Slot1", maxbid=5,
                          bid=4, value_per_click=1.0),
            KeywordRecord(text="shoe", formula="Click", maxbid=6,
                          bid=6, value_per_click=1.0),
        ]
        # Pin the ROI columns to Figure 4's values (2 and 1): gained/spent.
        records[0].gained, records[0].spent = 2.0, 1.0
        records[1].gained, records[1].spent = 1.0, 1.0
        state = ProgramState(target_spend_rate=target, keywords=records)
        state.amt_spent = spend
        program = ROIEqualizerProgram(0, state)
        ctx = AuctionContext(auction_id=1, time=time, query=query,
                             num_slots=3)
        native_bids = {str(row.formula): row.value
                       for row in program.bid(ctx)}

        # SQL path with the same clamped initial bids (shoe: 6 = maxbid).
        db.execute("UPDATE Keywords SET bid = 6 WHERE text = 'shoe'")
        db.execute("INSERT INTO Query VALUES ('boot')")
        sql_bids = bids_of(db)
        assert native_bids == sql_bids
