"""Tests for AFTER INSERT triggers and program variables."""

import pytest

from repro.sqlmini.database import Database
from repro.sqlmini.errors import SqlNameError, SqlRuntimeError, SqlSchemaError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE Log (event TEXT); "
                     "CREATE TABLE Query (text TEXT)")
    return database


class TestTriggers:
    def test_trigger_fires_per_inserted_row(self, db):
        db.execute("""
            CREATE TRIGGER t AFTER INSERT ON Query
            { INSERT INTO Log VALUES ('fired'); }
        """)
        db.execute("INSERT INTO Query VALUES ('a'), ('b')")
        assert db.query("SELECT COUNT(*) FROM Log").scalar() == 2

    def test_new_row_visible(self, db):
        db.execute("""
            CREATE TRIGGER t AFTER INSERT ON Query
            { INSERT INTO Log VALUES (NEW.text); }
        """)
        db.execute("INSERT INTO Query VALUES ('boot')")
        assert db.query("SELECT event FROM Log").scalar() == "boot"

    def test_multiple_triggers_fire_in_order(self, db):
        db.execute("CREATE TRIGGER t1 AFTER INSERT ON Query "
                   "{ INSERT INTO Log VALUES ('one'); }")
        db.execute("CREATE TRIGGER t2 AFTER INSERT ON Query "
                   "{ INSERT INTO Log VALUES ('two'); }")
        db.execute("INSERT INTO Query VALUES ('x')")
        result = db.query("SELECT event FROM Log")
        assert result.single_column() == ["one", "two"]

    def test_trigger_on_missing_table_rejected(self, db):
        with pytest.raises(SqlNameError):
            db.execute("CREATE TRIGGER t AFTER INSERT ON Missing "
                       "{ INSERT INTO Log VALUES ('x'); }")

    def test_duplicate_trigger_name_rejected(self, db):
        db.execute("CREATE TRIGGER t AFTER INSERT ON Query "
                   "{ INSERT INTO Log VALUES ('x'); }")
        with pytest.raises(SqlSchemaError):
            db.execute("CREATE TRIGGER t AFTER INSERT ON Query "
                       "{ INSERT INTO Log VALUES ('y'); }")

    def test_runaway_recursion_detected(self, db):
        db.execute("""
            CREATE TRIGGER loop AFTER INSERT ON Log
            { INSERT INTO Log VALUES ('again'); }
        """)
        with pytest.raises(SqlRuntimeError):
            db.execute("INSERT INTO Log VALUES ('start')")


class TestVariables:
    def test_variables_visible_in_expressions(self, db):
        db.set_variable("amtSpent", 10.0)
        db.set_variable("time", 4.0)
        assert db.query("SELECT amtSpent / time").scalar() == 2.5

    def test_variable_names_case_insensitive(self, db):
        db.set_variable("TargetSpendRate", 3.0)
        assert db.query("SELECT targetspendrate").scalar() == 3.0

    def test_row_columns_shadow_variables(self, db):
        db.set_variable("event", "shadowed")
        db.execute("INSERT INTO Log VALUES ('row-value')")
        result = db.query("SELECT event FROM Log")
        assert result.single_column() == ["row-value"]

    def test_missing_variable_is_name_error(self, db):
        with pytest.raises(SqlNameError):
            db.query("SELECT nonexistent")

    def test_get_variable(self, db):
        db.set_variable("x", 1)
        assert db.get_variable("X") == 1
        with pytest.raises(SqlNameError):
            db.get_variable("y")


class TestDatabaseApi:
    def test_rows_snapshot_is_a_copy(self, db):
        db.execute("INSERT INTO Log VALUES ('x')")
        snapshot = db.rows("Log")
        snapshot[0]["event"] = "mutated"
        assert db.query("SELECT event FROM Log").scalar() == "x"

    def test_drop_table(self, db):
        db.drop_table("Log")
        assert not db.has_table("Log")
        with pytest.raises(SqlNameError):
            db.table("Log")

    def test_query_rejects_non_select(self, db):
        with pytest.raises(SqlNameError):
            db.query("INSERT INTO Log VALUES ('x')")
