"""Tests for the sqlmini parser."""

import pytest

from repro.sqlmini import ast
from repro.sqlmini.errors import SqlParseError
from repro.sqlmini.parser import (
    parse_expression,
    parse_script,
    parse_statement,
)


class TestExpressions:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3 < 10 AND NOT flag")
        assert isinstance(expr, ast.Binary)
        assert expr.op == "AND"
        left, right = expr.left, expr.right
        assert isinstance(left, ast.Binary) and left.op == "<"
        assert isinstance(right, ast.Unary) and right.op == "NOT"

    def test_qualified_column(self):
        expr = parse_expression("K.roi")
        assert expr == ast.ColumnRef(name="roi", qualifier="K")

    def test_function_call(self):
        expr = parse_expression("MAX(K.roi)")
        assert expr == ast.FuncCall(
            name="MAX", args=(ast.ColumnRef("roi", "K"),))

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert expr == ast.FuncCall(name="COUNT", args=(), star=True)

    def test_unary_minus(self):
        expr = parse_expression("-5 + 1")
        assert isinstance(expr, ast.Binary)
        assert expr.left == ast.Unary("-", ast.Literal(5))

    def test_scalar_subquery(self):
        expr = parse_expression("( SELECT MAX(roi) FROM Keywords )")
        assert isinstance(expr, ast.ScalarSubquery)
        assert expr.select.table == "Keywords"

    def test_literals(self):
        assert parse_expression("NULL") == ast.Literal(None)
        assert parse_expression("TRUE") == ast.Literal(True)
        assert parse_expression("'x'") == ast.Literal("x")
        assert parse_expression("2.5") == ast.Literal(2.5)

    def test_not_equal_normalised(self):
        assert parse_expression("a != b").op == "<>"


class TestStatements:
    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE Bids (formula TEXT, value REAL)")
        assert isinstance(stmt, ast.CreateTable)
        assert [c.type_name for c in stmt.columns] == ["TEXT", "REAL"]

    def test_soft_keyword_column_name(self):
        # The paper's Keywords table has a column named "text".
        stmt = parse_statement("CREATE TABLE Query (text TEXT)")
        assert stmt.columns[0].name == "text"

    def test_insert_positional_multi_row(self):
        stmt = parse_statement(
            "INSERT INTO Bids VALUES ('Click', 0), ('Purchase', 1)")
        assert isinstance(stmt, ast.Insert)
        assert stmt.columns is None
        assert len(stmt.values) == 2

    def test_insert_named_columns(self):
        stmt = parse_statement(
            "INSERT INTO Bids (formula) VALUES ('Click')")
        assert stmt.columns == ("formula",)

    def test_update_with_where(self):
        stmt = parse_statement(
            "UPDATE Keywords SET bid = bid + 1, roi = 0 WHERE bid < maxbid")
        assert isinstance(stmt, ast.Update)
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse_statement("DELETE FROM Query WHERE text = 'boot'")
        assert isinstance(stmt, ast.Delete)

    def test_select_full_clause_set(self):
        stmt = parse_statement(
            "SELECT DISTINCT text, bid b FROM Keywords K "
            "WHERE bid > 0 ORDER BY bid DESC, text LIMIT 5")
        assert isinstance(stmt, ast.Select)
        assert stmt.distinct
        assert stmt.alias == "K"
        assert stmt.items[1].alias == "b"
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending
        assert stmt.limit == 5

    def test_select_star(self):
        stmt = parse_statement("SELECT * FROM Keywords")
        assert stmt.items[0].star

    def test_if_elseif_else(self):
        stmt = parse_statement("""
            IF a < b THEN
              UPDATE T SET x = 1;
            ELSEIF a > b THEN
              UPDATE T SET x = 2;
            ELSE
              UPDATE T SET x = 3;
            ENDIF
        """)
        assert isinstance(stmt, ast.If)
        assert len(stmt.branches) == 2
        assert len(stmt.else_body) == 1

    def test_create_trigger(self):
        stmt = parse_statement("""
            CREATE TRIGGER bid AFTER INSERT ON Query
            {
              UPDATE Bids SET value = 0;
            }
        """)
        assert isinstance(stmt, ast.CreateTrigger)
        assert stmt.table == "Query"
        assert len(stmt.body) == 1

    def test_script_multiple_statements(self):
        script = parse_script(
            "CREATE TABLE T (x INT); INSERT INTO T VALUES (1);")
        assert len(script.statements) == 2


class TestErrors:
    def test_missing_then(self):
        with pytest.raises(SqlParseError):
            parse_statement("IF a < b UPDATE T SET x = 1; ENDIF")

    def test_unterminated_trigger_body(self):
        with pytest.raises(SqlParseError):
            parse_statement(
                "CREATE TRIGGER t AFTER INSERT ON Q { UPDATE T SET x = 1;")

    def test_garbage_statement(self):
        with pytest.raises(SqlParseError):
            parse_statement("FROB THE KNOB")

    def test_multiple_statements_rejected_by_parse_statement(self):
        with pytest.raises(SqlParseError):
            parse_statement("SELECT 1; SELECT 2;")

    def test_missing_column_type(self):
        with pytest.raises(SqlParseError):
            parse_statement("CREATE TABLE T (x)")

    def test_limit_requires_number(self):
        with pytest.raises(SqlParseError):
            parse_statement("SELECT 1 FROM T LIMIT x")
