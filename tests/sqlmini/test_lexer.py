"""Tests for the sqlmini tokenizer."""

import pytest

from repro.sqlmini.errors import SqlLexError
from repro.sqlmini.lexer import tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


def texts(source):
    return [token.text for token in tokenize(source)[:-1]]


class TestBasics:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select SELECT SeLeCt")
        assert all(t.kind == "keyword" for t in tokens[:-1])

    def test_identifiers(self):
        tokens = tokenize("Keywords amtSpent _x k1")
        assert all(t.kind == "ident" for t in tokens[:-1])

    def test_numbers(self):
        assert texts("1 42 0.7 3.14") == ["1", "42", "0.7", "3.14"]
        assert kinds("0.7")[:-1] == ["number"]

    def test_strings_with_escapes(self):
        tokens = tokenize("'boot' 'don''t'")
        assert tokens[0].text == "boot"
        assert tokens[1].text == "don't"

    def test_operators_maximal_munch(self):
        assert texts("<= >= <> != < > =") == ["<=", ">=", "<>", "!=",
                                              "<", ">", "="]

    def test_comments_stripped(self):
        tokens = tokenize("SELECT -- the projection\n 1")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "1"]

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(SqlLexError):
            tokenize("'oops")

    def test_unknown_character(self):
        with pytest.raises(SqlLexError) as exc_info:
            tokenize("SELECT @")
        assert exc_info.value.column == 8

    def test_qualified_name_tokenizes_as_three_tokens(self):
        assert texts("K.roi") == ["K", ".", "roi"]
