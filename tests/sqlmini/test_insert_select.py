"""Tests for INSERT INTO ... SELECT (sqlmini extension).

Lets bidding programs *rebuild* their Bids table from Keywords in one
statement (DELETE + INSERT...SELECT...GROUP BY) instead of updating rows
in place — a natural pattern the paper's Figure 5 approximates with a
correlated-subquery UPDATE.
"""

import pytest

from repro.sqlmini.database import Database
from repro.sqlmini.errors import SqlTypeError


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE Keywords (formula TEXT, bid REAL, relevance REAL)")
    database.execute("""
        INSERT INTO Keywords VALUES
            ('Click & Slot1', 4, 0.8),
            ('Click & Slot1', 2, 0.9),
            ('Click',         8, 0.2)
    """)
    database.execute("CREATE TABLE Bids (formula TEXT, value REAL)")
    return database


class TestInsertSelect:
    def test_plain_copy(self, db):
        count = db.execute(
            "INSERT INTO Bids SELECT formula, bid FROM Keywords")
        assert count == 3
        assert len(db.rows("Bids")) == 3

    def test_rebuild_bids_with_group_by(self, db):
        db.execute("DELETE FROM Bids")
        db.execute(
            "INSERT INTO Bids "
            "SELECT formula, SUM(bid) FROM Keywords "
            "WHERE relevance > 0.7 GROUP BY formula")
        bids = {row["formula"]: row["value"] for row in db.rows("Bids")}
        assert bids == {"Click & Slot1": 6.0}

    def test_named_columns(self, db):
        db.execute("INSERT INTO Bids (formula) "
                   "SELECT DISTINCT formula FROM Keywords")
        rows = db.rows("Bids")
        assert {row["formula"] for row in rows} == {"Click & Slot1",
                                                    "Click"}
        assert all(row["value"] is None for row in rows)

    def test_triggers_fire_per_inserted_row(self, db):
        db.execute("CREATE TABLE Log (formula TEXT)")
        db.execute("CREATE TRIGGER t AFTER INSERT ON Bids "
                   "{ INSERT INTO Log VALUES (NEW.formula); }")
        db.execute("INSERT INTO Bids SELECT formula, bid FROM Keywords")
        assert db.query("SELECT COUNT(*) FROM Log").scalar() == 3

    def test_arity_mismatch_rejected(self, db):
        with pytest.raises(SqlTypeError):
            db.execute("INSERT INTO Bids SELECT formula FROM Keywords")

    def test_type_checking_applies(self, db):
        with pytest.raises(SqlTypeError):
            db.execute(
                "INSERT INTO Bids SELECT bid, bid FROM Keywords")
