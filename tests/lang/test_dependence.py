"""Tests for m-dependence analysis (Definition 1)."""

import pytest
from hypothesis import given

from tests.conftest import formulas

from repro.lang.bids import BidsTable
from repro.lang.dependence import (
    NotOneDependentError,
    analyze_bids_table,
    analyze_formula,
    max_dependence,
    require_one_dependent,
)
from repro.lang.formula import Atom
from repro.lang.parser import parse_formula
from repro.lang.predicates import click, heavy_in_slot, slot
from repro.matching.feedback_arc import above_event


class TestSelfReferentialFormulas:
    def test_click_is_one_dependent(self):
        profile = analyze_formula(parse_formula("Click"), owner=3)
        assert profile.advertisers == frozenset({3})
        assert profile.m == 1
        assert profile.is_one_dependent()

    def test_top_or_bottom_is_one_dependent(self):
        # The paper's Section I-A example events are 1-dependent.
        profile = analyze_formula(parse_formula("Slot1 | Slot3"), owner=0)
        assert profile.is_one_dependent()

    def test_constant_is_zero_dependent(self):
        profile = analyze_formula(parse_formula("TRUE"), owner=0)
        assert profile.m == 0
        assert profile.is_one_dependent()

    @given(formulas())
    def test_every_language_formula_is_one_dependent(self, formula):
        # Anything advertisers can write with unbound atoms qualifies for
        # the Theorem 2 fast path.
        assert analyze_formula(formula, owner=5).is_one_dependent()


class TestCrossAdvertiserFormulas:
    def test_two_dependent_event(self):
        f = Atom(slot(1)) & Atom(slot(2, advertiser=9))
        profile = analyze_formula(f, owner=3)
        assert profile.advertisers == frozenset({3, 9})
        assert profile.m == 2
        assert not profile.is_one_dependent()

    def test_above_event_is_two_dependent(self):
        f = above_event(1, 2, num_slots=3)
        assert analyze_formula(f, owner=1).m == 2

    def test_heavy_layout_flagged(self):
        f = Atom(slot(1)) & Atom(heavy_in_slot(2))
        profile = analyze_formula(f, owner=0)
        assert profile.uses_heavy_layout
        assert not profile.is_one_dependent()


class TestTableLevel:
    def test_analyze_bids_table_unions_rows(self):
        table = BidsTable.from_pairs([("Click", 1)])
        table.add(Atom(slot(1, advertiser=7)), 2)
        profile = analyze_bids_table(table, owner=0)
        assert profile.advertisers == frozenset({0, 7})

    def test_max_dependence(self):
        tables = {
            0: BidsTable.from_pairs([("Click", 1)]),
            1: BidsTable([]),
        }
        assert max_dependence(tables) == 1
        tables[1].add(above_event(1, 0, 2), 3)
        assert max_dependence(tables) == 2

    def test_require_one_dependent_accepts_language_bids(self):
        tables = {0: BidsTable.from_pairs([("Click & Slot1", 4)])}
        require_one_dependent(tables)  # no exception

    def test_require_one_dependent_rejects_gadget(self):
        tables = {0: BidsTable([])}
        tables[0].add(above_event(0, 1, 2), 3)
        with pytest.raises(NotOneDependentError) as exc_info:
            require_one_dependent(tables)
        assert exc_info.value.owner == 0
        assert "APX-hard" in str(exc_info.value)

    def test_require_one_dependent_rejects_heavy_without_model(self):
        tables = {0: BidsTable.from_pairs([("HeavyInSlot1", 2)])}
        with pytest.raises(NotOneDependentError):
            require_one_dependent(tables)
