"""Tests for the bid-formula parser."""

import pytest
from hypothesis import given

from tests.conftest import formulas

from repro.lang.errors import FormulaParseError, UnknownPredicateError
from repro.lang.formula import FALSE, TRUE, And, Atom, Not, Or, equivalent
from repro.lang.parser import format_formula, parse_formula
from repro.lang.predicates import click, heavy_in_slot, purchase, slot


class TestAtoms:
    def test_click(self):
        assert parse_formula("Click") == Atom(click())
        assert parse_formula("click") == Atom(click())

    def test_purchase(self):
        assert parse_formula("Purchase") == Atom(purchase())

    def test_slot_glued_and_spaced(self):
        assert parse_formula("Slot1") == Atom(slot(1))
        assert parse_formula("Slot 12") == Atom(slot(12))

    def test_heavy_in_slot(self):
        assert parse_formula("HeavyInSlot3") == Atom(heavy_in_slot(3))

    def test_constants(self):
        assert parse_formula("TRUE") is TRUE
        assert parse_formula("false") is FALSE


class TestOperators:
    def test_unicode_and_ascii_spellings(self):
        expected = And(Atom(click()), Atom(slot(1)))
        for text in ("Click ∧ Slot1", "Click & Slot1", "Click AND Slot1",
                     "Click and Slot1", "Click && Slot1"):
            assert parse_formula(text) == expected

    def test_or_spellings(self):
        expected = Or(Atom(slot(1)), Atom(slot(2)))
        for text in ("Slot1 ∨ Slot2", "Slot1 | Slot2", "Slot1 OR Slot2",
                     "Slot1 || Slot2"):
            assert parse_formula(text) == expected

    def test_not_spellings(self):
        expected = Not(Atom(click()))
        for text in ("¬Click", "!Click", "~Click", "NOT Click"):
            assert parse_formula(text) == expected

    def test_precedence_not_over_and_over_or(self):
        f = parse_formula("!Click & Slot1 | Purchase")
        assert f == Or(And(Not(Atom(click())), Atom(slot(1))),
                       Atom(purchase()))

    def test_parentheses_override(self):
        f = parse_formula("!(Click & (Slot1 | Purchase))")
        assert f == Not(And(Atom(click()),
                            Or(Atom(slot(1)), Atom(purchase()))))

    def test_left_associativity(self):
        f = parse_formula("Slot1 | Slot2 | Slot3")
        assert f == Or(Or(Atom(slot(1)), Atom(slot(2))), Atom(slot(3)))


class TestErrors:
    def test_unknown_predicate(self):
        with pytest.raises(UnknownPredicateError):
            parse_formula("Banana")

    def test_trailing_garbage(self):
        with pytest.raises(FormulaParseError):
            parse_formula("Click Click")

    def test_unbalanced_parens(self):
        with pytest.raises(FormulaParseError):
            parse_formula("(Click & Slot1")

    def test_empty_input(self):
        with pytest.raises(FormulaParseError):
            parse_formula("")

    def test_slot_without_index(self):
        with pytest.raises(FormulaParseError):
            parse_formula("Slot & Click")

    def test_bad_character(self):
        with pytest.raises(FormulaParseError):
            parse_formula("Click @ Slot1")


class TestRoundTrip:
    @given(formulas())
    def test_format_parse_round_trip(self, formula):
        folded = formula.simplify()
        reparsed = parse_formula(format_formula(folded))
        assert equivalent(folded, reparsed)

    def test_paper_figure_formulas(self):
        # Every formula appearing in the paper's figures parses.
        for text in ("Purchase", "Slot1 ∨ Slot2", "Click ∧ Slot1",
                     "Click"):
            parse_formula(text)
