"""Unit tests for outcome predicates."""

import pytest

from repro.lang.errors import SlotOutOfRangeError
from repro.lang.predicates import (
    ClickPredicate,
    HeavyInSlotPredicate,
    PurchasePredicate,
    SlotPredicate,
    click,
    heavy_in_slot,
    purchase,
    slot,
)


class TestConstruction:
    def test_slot_requires_positive_index(self):
        with pytest.raises(SlotOutOfRangeError):
            slot(0)
        with pytest.raises(SlotOutOfRangeError):
            slot(-3)

    def test_heavy_in_slot_requires_positive_index(self):
        with pytest.raises(SlotOutOfRangeError):
            heavy_in_slot(0)

    def test_heavy_in_slot_rejects_advertiser_binding(self):
        with pytest.raises(ValueError):
            HeavyInSlotPredicate(slot=1, advertiser=3)

    def test_convenience_constructors(self):
        assert slot(2) == SlotPredicate(slot=2)
        assert click() == ClickPredicate()
        assert purchase(advertiser=4) == PurchasePredicate(advertiser=4)


class TestResolution:
    def test_unbound_predicate_resolves_to_owner(self):
        assert slot(1).resolved(7) == slot(1, advertiser=7)
        assert click().resolved(7) == click(advertiser=7)
        assert purchase().resolved(7) == purchase(advertiser=7)

    def test_bound_predicate_is_unchanged(self):
        bound = slot(1, advertiser=3)
        assert bound.resolved(7) is bound

    def test_heavy_in_slot_never_binds(self):
        pred = heavy_in_slot(2)
        assert pred.resolved(7) is pred

    def test_self_referential_flag(self):
        assert slot(1).is_self_referential()
        assert not slot(1, advertiser=0).is_self_referential()


class TestValueSemantics:
    def test_equality_and_hash(self):
        assert slot(1) == slot(1)
        assert slot(1) != slot(2)
        assert slot(1) != slot(1, advertiser=0)
        assert len({slot(1), slot(1), slot(2)}) == 2

    def test_click_and_slot_never_equal(self):
        assert click() != slot(1)

    def test_str_forms(self):
        assert str(slot(3)) == "Slot3"
        assert str(slot(3, advertiser=9)) == "Slot3@9"
        assert str(click()) == "Click"
        assert str(purchase()) == "Purchase"
        assert str(heavy_in_slot(2)) == "HeavyInSlot2"
