"""Unit and property tests for the formula AST."""

from hypothesis import given

from tests.conftest import formulas

from repro.lang.formula import (
    FALSE,
    TRUE,
    And,
    Atom,
    Not,
    Or,
    and_all,
    equivalent,
    or_all,
    truth_assignments,
)
from repro.lang.outcome import Allocation, Outcome
from repro.lang.predicates import click, purchase, slot


def _outcome(slot_of, clicked=(), purchased=(), num_slots=3):
    return Outcome(allocation=Allocation(num_slots=num_slots,
                                         slot_of=dict(slot_of)),
                   clicked=frozenset(clicked),
                   purchased=frozenset(purchased))


class TestEvaluation:
    def test_atom_truth_from_outcome(self):
        outcome = _outcome({5: 1}, clicked={5}, purchased={5})
        assert outcome.satisfies(Atom(slot(1)), owner=5)
        assert not outcome.satisfies(Atom(slot(2)), owner=5)
        assert outcome.satisfies(Atom(click()), owner=5)
        assert outcome.satisfies(Atom(purchase()), owner=5)

    def test_connectives(self):
        outcome = _outcome({5: 1}, clicked={5})
        f_and = Atom(click()) & Atom(slot(1))
        f_or = Atom(purchase()) | Atom(slot(1))
        f_not = ~Atom(purchase())
        assert outcome.satisfies(f_and, 5)
        assert outcome.satisfies(f_or, 5)
        assert outcome.satisfies(f_not, 5)
        assert not outcome.satisfies(f_and & Atom(purchase()), 5)

    def test_cross_advertiser_atom(self):
        outcome = _outcome({5: 1, 6: 2})
        competitor_on_top = Atom(slot(1, advertiser=6))
        assert not outcome.satisfies(competitor_on_top, 5)
        assert outcome.satisfies(Atom(slot(2, advertiser=6)), 5)

    def test_constants(self):
        outcome = _outcome({})
        assert outcome.satisfies(TRUE, 0)
        assert not outcome.satisfies(FALSE, 0)

    def test_unassigned_advertiser_fails_slot_atoms(self):
        outcome = _outcome({})
        assert not outcome.satisfies(Atom(slot(1)), 5)
        assert outcome.satisfies(~Atom(slot(1)), 5)


class TestSubstitution:
    def test_substitute_folds_constants(self):
        f = Atom(click()) & Atom(slot(1))
        assert f.substitute({click(): True, slot(1): True}) is TRUE
        assert f.substitute({click(): False}) is FALSE
        partial = f.substitute({click(): True})
        assert partial == Atom(slot(1))

    def test_double_negation_folds(self):
        f = Not(Not(Atom(click())))
        assert f.substitute({}) == Atom(click())

    def test_or_absorbs_true(self):
        f = Atom(click()) | Atom(slot(1))
        assert f.substitute({slot(1): True}) is TRUE

    def test_resolve_binds_all_atoms(self):
        f = Atom(click()) & ~Atom(slot(2))
        resolved = f.resolve(9)
        assert resolved.atoms() == {click(advertiser=9),
                                    slot(2, advertiser=9)}


class TestHelpers:
    def test_and_all_empty_is_true(self):
        assert and_all([]) is TRUE

    def test_or_all_empty_is_false(self):
        assert or_all([]) is FALSE

    def test_and_all_chains(self):
        f = and_all([Atom(click()), Atom(slot(1)), Atom(purchase())])
        assert isinstance(f, And)
        assert f.atoms() == {click(), slot(1), purchase()}

    def test_truth_assignments_count(self):
        atoms = [click(), purchase(), slot(1)]
        assignments = list(truth_assignments(atoms))
        assert len(assignments) == 8
        assert len({tuple(sorted(a.items(), key=lambda kv: str(kv[0])))
                    for a in assignments}) == 8

    def test_equivalent_de_morgan(self):
        f = ~(Atom(click()) & Atom(slot(1)))
        g = ~Atom(click()) | ~Atom(slot(1))
        assert equivalent(f, g)

    def test_not_equivalent(self):
        assert not equivalent(Atom(click()), Atom(purchase()))

    def test_str_round_trip_structure(self):
        f = (Atom(click()) | Atom(slot(1))) & ~Atom(purchase())
        assert str(f) == "(Click | Slot1) & !Purchase"


class TestProperties:
    @given(formulas())
    def test_substitute_with_full_assignment_is_constant(self, formula):
        assignment = {atom: True for atom in formula.atoms()}
        folded = formula.substitute(assignment)
        assert folded in (TRUE, FALSE)

    @given(formulas())
    def test_simplify_preserves_semantics(self, formula):
        assert equivalent(formula, formula.simplify())

    @given(formulas())
    def test_double_negation_preserves_semantics(self, formula):
        assert equivalent(formula, Not(Not(formula)).simplify())

    @given(formulas(), formulas())
    def test_commutativity(self, f, g):
        assert equivalent(And(f, g), And(g, f))
        assert equivalent(Or(f, g), Or(g, f))
