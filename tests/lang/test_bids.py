"""Tests for Bids tables: OR-bid semantics and the paper's figures."""

import pytest
from hypothesis import given

from tests.conftest import bids_tables

from repro.lang.bids import BidRow, BidsTable, SingleFeatureBid
from repro.lang.errors import InvalidBidError
from repro.lang.formula import Atom
from repro.lang.outcome import Allocation, Outcome
from repro.lang.parser import parse_formula
from repro.lang.predicates import click


def _outcome(slot_of, clicked=(), purchased=(), num_slots=3):
    return Outcome(allocation=Allocation(num_slots=num_slots,
                                         slot_of=dict(slot_of)),
                   clicked=frozenset(clicked),
                   purchased=frozenset(purchased))


class TestFigure3:
    """Figure 3: Purchase -> 5, Slot1 ∨ Slot2 -> 2."""

    @pytest.fixture
    def table(self):
        return BidsTable.from_pairs([("Purchase", 5),
                                     ("Slot1 ∨ Slot2", 2)])

    def test_figure3_or_bid_sum(self, table):
        # Purchase while in slot 2: both rows true -> pays 5 + 2 = 7,
        # exactly the "7 cents" the paper's prose derives.
        outcome = _outcome({0: 2}, clicked={0}, purchased={0})
        assert table.payment(outcome, owner=0) == 7

    def test_purchase_only_is_impossible_without_click(self):
        # The outcome model enforces purchase => click, so the "5 only"
        # case arises via slot 3 with a purchase.
        table = BidsTable.from_pairs([("Purchase", 5),
                                      ("Slot1 | Slot2", 2)])
        outcome = _outcome({0: 3}, clicked={0}, purchased={0})
        assert table.payment(outcome, 0) == 5

    def test_impression_only(self, table):
        outcome = _outcome({0: 1})
        assert table.payment(outcome, 0) == 2

    def test_nothing_satisfied(self, table):
        outcome = _outcome({0: 3})
        assert table.payment(outcome, 0) == 0


class TestBidRowValidation:
    def test_negative_value_rejected(self):
        with pytest.raises(InvalidBidError):
            BidRow(Atom(click()), -1.0)

    def test_nan_rejected(self):
        with pytest.raises(InvalidBidError):
            BidRow(Atom(click()), float("nan"))

    def test_infinity_rejected(self):
        with pytest.raises(InvalidBidError):
            BidRow(Atom(click()), float("inf"))


class TestTableOperations:
    def test_add_parses_text(self):
        table = BidsTable()
        table.add("Click & Slot1", 3)
        assert len(table) == 1
        assert str(table.rows[0].formula) == "Click & Slot1"

    def test_set_value_replaces_matching_rows(self):
        formula = parse_formula("Click")
        table = BidsTable.from_pairs([("Click", 1), ("Purchase", 2)])
        table.set_value(formula, 9)
        assert [row.value for row in table] == [9, 2]

    def test_satisfied_rows(self):
        table = BidsTable.from_pairs([("Click", 1), ("Purchase", 2)])
        outcome = _outcome({0: 1}, clicked={0})
        satisfied = table.satisfied_rows(outcome, 0)
        assert [str(row.formula) for row in satisfied] == ["Click"]

    def test_total_declared_value(self):
        table = BidsTable.from_pairs([("Click", 1.5), ("Purchase", 2.5)])
        assert table.total_declared_value() == 4.0


class TestSingleFeatureEmbedding:
    """Figure 1 embeds into the multi-feature language."""

    def test_single_feature_bid_pays_on_click(self):
        legacy = SingleFeatureBid(value=3.0)
        table = legacy.as_bids_table()
        clicked = _outcome({0: 1}, clicked={0})
        not_clicked = _outcome({0: 1})
        assert table.payment(clicked, 0) == 3.0
        assert table.payment(not_clicked, 0) == 0.0

    def test_negative_single_feature_rejected(self):
        with pytest.raises(InvalidBidError):
            SingleFeatureBid(value=-1)


class TestPaymentProperties:
    @given(bids_tables())
    def test_payment_bounded_by_declared_total(self, table):
        outcome = _outcome({0: 1}, clicked={0}, purchased={0})
        payment = table.payment(outcome, 0)
        assert 0.0 <= payment <= table.total_declared_value() + 1e-9

    @given(bids_tables())
    def test_payment_is_sum_of_satisfied_rows(self, table):
        outcome = _outcome({0: 2}, clicked={0})
        satisfied = table.satisfied_rows(outcome, 0)
        assert table.payment(outcome, 0) == pytest.approx(
            sum(row.value for row in satisfied))
