"""Tests for allocations and outcomes."""

import pytest

from repro.lang.outcome import Allocation, InvalidAllocationError, Outcome
from repro.lang.predicates import heavy_in_slot, slot


class TestAllocationValidation:
    def test_slot_out_of_range(self):
        with pytest.raises(InvalidAllocationError):
            Allocation(num_slots=2, slot_of={0: 3})
        with pytest.raises(InvalidAllocationError):
            Allocation(num_slots=2, slot_of={0: 0})

    def test_duplicate_slot(self):
        with pytest.raises(InvalidAllocationError):
            Allocation(num_slots=3, slot_of={0: 1, 1: 1})

    def test_negative_num_slots(self):
        with pytest.raises(InvalidAllocationError):
            Allocation(num_slots=-1)

    def test_empty_allocation_is_valid(self):
        allocation = Allocation(num_slots=4)
        assert allocation.assigned_advertisers() == frozenset()
        assert allocation.occupied_slots() == frozenset()


class TestAllocationQueries:
    @pytest.fixture
    def allocation(self):
        return Allocation(num_slots=4, slot_of={10: 1, 20: 3})

    def test_slot_for(self, allocation):
        assert allocation.slot_for(10) == 1
        assert allocation.slot_for(20) == 3
        assert allocation.slot_for(99) is None

    def test_advertiser_in(self, allocation):
        assert allocation.advertiser_in(1) == 10
        assert allocation.advertiser_in(2) is None
        assert allocation.advertiser_in(3) == 20

    def test_as_slot_list(self, allocation):
        assert allocation.as_slot_list() == [10, None, 20, None]

    def test_from_slot_list_round_trip(self, allocation):
        rebuilt = Allocation.from_slot_list(allocation.as_slot_list())
        assert rebuilt == allocation

    def test_is_above_assigned_pair(self, allocation):
        assert allocation.is_above(10, 20)
        assert not allocation.is_above(20, 10)

    def test_is_above_with_unassigned_other(self, allocation):
        # Theorem 3 convention: above an advertiser who got nothing.
        assert allocation.is_above(10, 99)
        assert not allocation.is_above(99, 10)


class TestOutcomeValidation:
    def test_click_requires_slot(self):
        with pytest.raises(InvalidAllocationError):
            Outcome(allocation=Allocation(num_slots=2, slot_of={0: 1}),
                    clicked=frozenset({1}))

    def test_purchase_requires_click(self):
        with pytest.raises(InvalidAllocationError):
            Outcome(allocation=Allocation(num_slots=2, slot_of={0: 1}),
                    purchased=frozenset({0}))

    def test_valid_outcome(self):
        outcome = Outcome(
            allocation=Allocation(num_slots=2, slot_of={0: 1}),
            clicked=frozenset({0}), purchased=frozenset({0}))
        assert outcome.truth(slot(1, advertiser=0))


class TestHeavyInSlotTruth:
    def test_heavy_occupant(self):
        outcome = Outcome(
            allocation=Allocation(num_slots=2, slot_of={0: 1, 1: 2}),
            heavyweights=frozenset({0}))
        assert outcome.truth(heavy_in_slot(1))
        assert not outcome.truth(heavy_in_slot(2))

    def test_empty_slot_is_not_heavy(self):
        outcome = Outcome(allocation=Allocation(num_slots=2, slot_of={}),
                          heavyweights=frozenset({0}))
        assert not outcome.truth(heavy_in_slot(1))

    def test_unresolved_predicate_rejected(self):
        outcome = Outcome(allocation=Allocation(num_slots=2, slot_of={0: 1}))
        with pytest.raises(ValueError):
            outcome.truth(slot(1))
