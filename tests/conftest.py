"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.lang.bids import BidsTable
from repro.lang.formula import Atom, Formula
from repro.lang.predicates import click, purchase, slot


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG; reseed per test for reproducibility."""
    return np.random.default_rng(0xC0FFEE)


# -- hypothesis strategies ----------------------------------------------------

MAX_SLOTS = 3
"""Formulas generated below only mention slots 1..MAX_SLOTS."""


def atoms() -> st.SearchStrategy[Formula]:
    return st.one_of(
        st.just(Atom(click())),
        st.just(Atom(purchase())),
        st.integers(min_value=1, max_value=MAX_SLOTS).map(
            lambda j: Atom(slot(j))),
    )


def formulas(max_leaves: int = 6) -> st.SearchStrategy[Formula]:
    """Random Boolean combinations of Click/Purchase/Slot atoms."""
    return st.recursive(
        atoms(),
        lambda children: st.one_of(
            children.map(lambda f: ~f),
            st.tuples(children, children).map(lambda pair: pair[0] & pair[1]),
            st.tuples(children, children).map(lambda pair: pair[0] | pair[1]),
        ),
        max_leaves=max_leaves,
    )


def bid_values() -> st.SearchStrategy[float]:
    return st.floats(min_value=0.0, max_value=100.0,
                     allow_nan=False, allow_infinity=False)


def bids_tables(max_rows: int = 4) -> st.SearchStrategy[BidsTable]:
    return st.lists(
        st.tuples(formulas(), bid_values()),
        min_size=0, max_size=max_rows,
    ).map(lambda rows: BidsTable.from_pairs(rows))


def probability_matrices(max_advertisers: int = 5,
                         num_slots: int = MAX_SLOTS):
    """Random (n x MAX_SLOTS) click-probability matrices as lists."""
    return st.integers(min_value=1, max_value=max_advertisers).flatmap(
        lambda n: st.lists(
            st.lists(st.floats(min_value=0.0, max_value=1.0,
                               allow_nan=False),
                     min_size=num_slots, max_size=num_slots),
            min_size=n, max_size=n))
