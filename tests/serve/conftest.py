"""Fixtures for the serving suite."""

from __future__ import annotations

import pytest

from repro.serve import ServeConfig

from .harness import LiveServer

SMALL = dict(advertisers=24, slots=3, keywords=3, seed=5)
"""The suite's default tiny universe — big enough for churn, small
enough that every live test stays sub-second."""


@pytest.fixture
def serve_factory():
    """Start in-process servers; everything started is drained at
    teardown even when the test failed mid-conversation."""
    servers: list[LiveServer] = []

    def factory(**overrides) -> LiveServer:
        settings = dict(SMALL)
        settings.update(overrides)
        live = LiveServer(ServeConfig(**settings))
        servers.append(live)
        return live

    yield factory
    for live in servers:
        if live.thread.is_alive():
            live.stop("teardown")
