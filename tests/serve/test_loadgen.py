"""Satellite 6: the load-generator fleet is deterministic.

A fixed seed must produce an identical fleet plan — byte for byte —
so a bench cell names its offered load completely, and a live fleet
run submits exactly the planned events.
"""

from __future__ import annotations

from repro.serve.protocol import event_from_payload
from repro.stream.events import AdvertiserJoin, QueryArrival
from repro.workloads import (
    ChurnStreamConfig,
    LoadgenConfig,
    generate_stream,
    plan_fleet,
    run_fleet,
)
from repro.workloads.paper_workload import (
    PaperWorkload,
    PaperWorkloadConfig,
)

from .conftest import SMALL

_CONFIG = PaperWorkloadConfig(
    num_advertisers=SMALL["advertisers"], num_slots=SMALL["slots"],
    num_keywords=SMALL["keywords"], seed=SMALL["seed"])
_LOADGEN = LoadgenConfig(events=40, seed=SMALL["seed"], processes=2,
                         connections=2, consoles=2)


class TestPlanDeterminism:
    def test_same_seed_same_plan_byte_for_byte(self):
        first = plan_fleet(_CONFIG, _LOADGEN)
        second = plan_fleet(_CONFIG, _LOADGEN)
        assert first == second

    def test_different_seed_different_plan(self):
        other = LoadgenConfig(events=40, seed=SMALL["seed"] + 1,
                              processes=2, connections=2, consoles=2)
        assert plan_fleet(_CONFIG, _LOADGEN) \
            != plan_fleet(_CONFIG, other)

    def test_plan_is_the_churn_stream_split_losslessly(self):
        plan = plan_fleet(_CONFIG, _LOADGEN)
        workload = PaperWorkload(_CONFIG)
        stream = list(generate_stream(workload, ChurnStreamConfig(
            num_events=_LOADGEN.events,
            churn_rate=_LOADGEN.churn_rate,
            genesis=_CONFIG.num_advertisers // 2,
            min_active=_LOADGEN.min_active,
            budget_low=_LOADGEN.budget_low,
            budget_high=_LOADGEN.budget_high,
            seed=_LOADGEN.seed + 17)))
        assert plan.total_events == len(stream)
        # Genesis = the stream's leading join run, in order.
        genesis = [event_from_payload(p) for p in plan.genesis]
        assert genesis == stream[:len(genesis)]
        assert all(isinstance(e, AdvertiserJoin) for e in genesis)
        # Every post-genesis event lands on exactly one script, and
        # the partition is interleaving-safe: queries round-robin,
        # controls ride their advertiser's console.
        tail = stream[len(genesis):]
        planned = [event_from_payload(p)
                   for script in plan.scripts() for p in script]
        assert sorted(map(repr, planned)) == sorted(map(repr, tail))
        for index, script in enumerate(plan.consoles):
            for payload in script:
                event = event_from_payload(payload)
                assert not isinstance(event, QueryArrival)
                assert event.advertiser % len(plan.consoles) == index
        for script in plan.queries:
            assert all(event_from_payload(p).keyword.startswith("kw")
                       for p in script)

    def test_per_advertiser_order_is_preserved_on_its_console(self):
        plan = plan_fleet(_CONFIG, _LOADGEN)
        workload = PaperWorkload(_CONFIG)
        stream = list(generate_stream(workload, ChurnStreamConfig(
            num_events=_LOADGEN.events,
            churn_rate=_LOADGEN.churn_rate,
            genesis=_CONFIG.num_advertisers // 2,
            min_active=_LOADGEN.min_active,
            budget_low=_LOADGEN.budget_low,
            budget_high=_LOADGEN.budget_high,
            seed=_LOADGEN.seed + 17)))
        tail = [e for e in stream[len(plan.genesis):]
                if not isinstance(e, QueryArrival)]
        for console in plan.consoles:
            events = [event_from_payload(p) for p in console]
            expected = [e for e in tail
                        if e.advertiser % len(plan.consoles)
                        == events[0].advertiser % len(plan.consoles)] \
                if events else []
            assert events == expected


class TestLiveFleet:
    def test_fleet_submits_the_whole_plan_with_zero_errors(
            self, serve_factory):
        live = serve_factory()
        plan = plan_fleet(_CONFIG, LoadgenConfig(
            events=30, seed=SMALL["seed"], processes=1,
            connections=2, consoles=2))
        report = run_fleet("127.0.0.1", live.port, plan,
                           processes=1, timeout=60.0)
        live.stop()
        assert live.exit_code == 0
        assert report.errors == 0
        assert report.submitted == plan.total_events
        assert report.results + report.oks == plan.total_events
        assert len(live.server.applied) == plan.total_events
        assert report.events_per_second > 0
        assert report.percentile_ms(50) <= report.percentile_ms(99)
        payload = report.to_dict()
        assert payload["errors"] == 0
        assert payload["p50_ms"] <= payload["p99_ms"]
