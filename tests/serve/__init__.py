"""The serving suite: wire-protocol conformance, ingress-sequencer
ordering properties, live record/replay bit-identity, graceful
shutdown, and load-generator determinism."""
