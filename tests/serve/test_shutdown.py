"""Satellite 3: graceful shutdown and the ``serve-mid-frame`` chaos
site.

SIGTERM against a live ``repro serve`` subprocess must drain in-flight
connections, flush the batcher and journal, land a final checkpoint,
and exit 0 — and an armed :data:`repro.stream.crash.ENV_VAR` crash at
``serve-mid-frame`` (between a frame's length header and its body)
must die with the fault-injection exit code and leave a journal +
checkpoint pair that ``repro recover`` restores cleanly.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve import WireClient
from repro.stream.crash import ENV_VAR, EXIT_CODE
from repro.stream.events import EventLog
from repro.stream.snapshot import CHECKPOINT_PREFIX
from repro.workloads.paper_workload import PaperWorkloadConfig

from .conftest import SMALL
from .harness import churn_events

REPO = Path(__file__).resolve().parent.parent.parent
SRC = REPO / "src"

_CONFIG = PaperWorkloadConfig(
    num_advertisers=SMALL["advertisers"], num_slots=SMALL["slots"],
    num_keywords=SMALL["keywords"], seed=SMALL["seed"])


class ServeProcess:
    """A real ``repro serve`` subprocess with durable artifacts."""

    def __init__(self, tmp_path: Path, *, crash: str | None = None,
                 checkpoint_every: int = 10) -> None:
        self.port_file = tmp_path / "port"
        self.journal = tmp_path / "journal.jsonl"
        self.checkpoint_dir = tmp_path / "checkpoints"
        self.record = tmp_path / "events.jsonl"
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--port-file", str(self.port_file),
            "--advertisers", str(SMALL["advertisers"]),
            "--slots", str(SMALL["slots"]),
            "--keywords", str(SMALL["keywords"]),
            "--seed", str(SMALL["seed"]),
            "--journal", str(self.journal),
            "--checkpoint-every", str(checkpoint_every),
            "--checkpoint-dir", str(self.checkpoint_dir),
            "--record-events", str(self.record),
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        if crash is not None:
            env[ENV_VAR] = crash
        self.proc = subprocess.Popen(
            cmd, cwd=REPO, env=env, text=True,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        self.port = self._await_port()

    def _await_port(self, timeout: float = 30.0) -> int:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    "serve died before publishing its port: "
                    + self.proc.communicate()[1])
            try:
                text = self.port_file.read_text().strip()
            except FileNotFoundError:
                text = ""
            if text:
                return int(text)
            time.sleep(0.02)
        raise RuntimeError("no port file within 30s")

    def finish(self, timeout: float = 60.0) -> tuple[int, str, str]:
        out, err = self.proc.communicate(timeout=timeout)
        return self.proc.returncode, out, err

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.communicate(timeout=10)

    def checkpoints(self) -> list[Path]:
        return sorted(self.checkpoint_dir.glob(
            CHECKPOINT_PREFIX + "*.json"))


@pytest.fixture
def serve_proc(tmp_path):
    started: list[ServeProcess] = []

    def factory(**kwargs) -> ServeProcess:
        proc = ServeProcess(tmp_path, **kwargs)
        started.append(proc)
        return proc

    yield factory
    for proc in started:
        proc.kill()


def _recover(proc: ServeProcess, trace: Path) -> \
        subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env.pop(ENV_VAR, None)
    return subprocess.run(
        [sys.executable, "-m", "repro", "recover",
         "--journal", str(proc.journal),
         "--checkpoint-dir", str(proc.checkpoint_dir),
         "--workers", "0",
         "--trace", str(trace)],
        cwd=REPO, env=env, capture_output=True, text=True,
        timeout=240)


class TestGracefulShutdown:
    def test_sigterm_drains_flushes_and_exits_zero(self, serve_proc,
                                                   tmp_path):
        server = serve_proc()
        events = churn_events(_CONFIG, events=25)
        with WireClient("127.0.0.1", server.port,
                        timeout=30.0) as client:
            for index, event in enumerate(events):
                client.submit(event, tag=index)
            client.bye()
        server.proc.send_signal(signal.SIGTERM)
        code, out, err = server.finish()
        assert code == 0, err
        assert "clean shutdown (SIGTERM)" in out
        # Every applied event reached the journal and the record…
        recorded = list(EventLog.from_jsonl(server.record))
        assert recorded == events
        # …and the drain landed a *final* checkpoint at the full
        # watermark, beyond the periodic cadence.
        checkpoints = server.checkpoints()
        assert checkpoints, "no final checkpoint written"
        watermark = int(
            checkpoints[-1].stem[len(CHECKPOINT_PREFIX):])
        assert watermark == len(events)
        # The journal + checkpoints restore without complaint.
        result = _recover(server, tmp_path / "recovered.jsonl")
        assert result.returncode == 0, result.stderr

    def test_sigterm_with_no_traffic_still_exits_zero(self,
                                                      serve_proc):
        server = serve_proc()
        server.proc.send_signal(signal.SIGTERM)
        code, out, err = server.finish()
        assert code == 0, err
        assert "clean shutdown (SIGTERM)" in out


class TestServeMidFrameChaos:
    def test_crash_mid_frame_dies_hard_then_recovers(self, serve_proc,
                                                     tmp_path):
        # Die between the 30th frame's header and body — mid-ingest,
        # with journal entries and periodic checkpoints on disk.
        server = serve_proc(crash="serve-mid-frame@30")
        events = churn_events(_CONFIG, events=40)
        submitted = 0
        try:
            with WireClient("127.0.0.1", server.port,
                            timeout=30.0) as client:
                for index, event in enumerate(events):
                    client.submit(event, tag=index)
                    submitted += 1
                client.bye()
        except (OSError, ValueError, RuntimeError):
            pass  # the server died under us — that is the point
        code, _, err = server.finish()
        assert code == EXIT_CODE, err
        assert submitted < len(events)  # it really died mid-stream
        # The wreckage restores: journaled prefix + checkpoint agree.
        assert server.journal.exists()
        result = _recover(server, tmp_path / "recovered.jsonl")
        assert result.returncode == 0, result.stderr
        assert "checkpoint:" in result.stdout
        assert (tmp_path / "recovered.jsonl").exists()
