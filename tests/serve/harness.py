"""Shared plumbing for the serving suite.

:class:`LiveServer` runs an :class:`~repro.serve.server
.AuctionWireServer` on a background thread of the test process — the
in-process twin of the ``repro serve`` subprocess — so tests can poke
the server object directly (``server.applied``, counters) while real
TCP clients talk to it.  :func:`churn_events` builds the small
deterministic churn scripts every test here replays.
"""

from __future__ import annotations

import threading

from repro.serve import AuctionWireServer, ServeConfig, WireClient
from repro.workloads import ChurnStreamConfig, generate_stream
from repro.workloads.paper_workload import (
    PaperWorkload,
    PaperWorkloadConfig,
)


class LiveServer:
    """One in-process server with guaranteed drain on ``stop()``."""

    def __init__(self, config: ServeConfig) -> None:
        self.server = AuctionWireServer(config)
        self.exit_code: int | None = None
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        if not self.server.started.wait(30):
            raise RuntimeError("server did not start within 30s")

    def _run(self) -> None:
        self.exit_code = self.server.run()

    @property
    def port(self) -> int:
        return self.server.port

    def client(self, **kwargs) -> WireClient:
        kwargs.setdefault("timeout", 30.0)
        return WireClient("127.0.0.1", self.port, **kwargs)

    def stop(self, reason: str = "test") -> int:
        self.server.shutdown(reason)
        self.thread.join(60)
        if self.thread.is_alive():
            raise RuntimeError("server failed to drain within 60s")
        return self.exit_code


def churn_events(config: PaperWorkloadConfig, *, events: int = 30,
                 seed: int = 17, genesis: int | None = None) -> list:
    """A small deterministic churn stream for ``config``."""
    workload = PaperWorkload(config)
    if genesis is None:
        genesis = max(config.num_advertisers // 2, 1)
    return list(generate_stream(workload, ChurnStreamConfig(
        num_events=events, churn_rate=0.25, genesis=genesis,
        min_active=config.num_slots + 1, seed=seed)))
