"""The serving tentpole's core claim, in-process: a live run recorded
over the wire replays bit-identically offline, and invalid events are
rejected *before* they can perturb the recorded stream.
"""

from __future__ import annotations

import threading

import pytest

from repro.auction.trace import record_to_dict
from repro.bench import records_identical
from repro.serve.protocol import event_to_payload
from repro.stream.events import AdvertiserJoin, QueryArrival
from repro.workloads.paper_workload import PaperWorkloadConfig

from ..stream.oracle import assert_outcomes_agree, run_service
from .conftest import SMALL
from .harness import churn_events

_CONFIG = PaperWorkloadConfig(
    num_advertisers=SMALL["advertisers"], num_slots=SMALL["slots"],
    num_keywords=SMALL["keywords"], seed=SMALL["seed"])
_ENGINE_SEED = SMALL["seed"] + 1  # the serve CLI convention


def _drive(live, events):
    """Replay ``events`` through one wire connection; returns the
    tagged replies in submission order."""
    replies = []
    with live.client() as client:
        for index, event in enumerate(events):
            replies.append(client.submit(event, tag=index))
        client.bye()
    return replies


class TestLiveReplayBitIdentity:
    @pytest.mark.parametrize("overrides", [
        {},                     # plain in-process apply
        {"batch_window": 4},    # adaptive window coalescing
    ], ids=["unbatched", "batched"])
    def test_recorded_stream_replays_bit_identically(
            self, serve_factory, overrides):
        events = churn_events(_CONFIG, events=40)
        live = serve_factory(**overrides)
        replies = _drive(live, events)
        live.stop()
        assert live.exit_code == 0
        applied = list(live.server.applied)
        assert applied == events  # nothing dropped, nothing reordered
        offline = run_service(_CONFIG, applied, method="rh",
                              engine_seed=_ENGINE_SEED)
        assert records_identical(live.server.records, offline.records)
        # Replies carry the applied-stream position and the exact
        # record the offline replay regenerates (timing stamps are
        # wall-clock and legitimately differ between runs).
        def decisions(record: dict) -> dict:
            return {key: value for key, value in record.items()
                    if not key.endswith("_seconds")}

        results = [reply for reply in replies
                   if reply["type"] == "result"]
        assert [decisions(reply["record"]) for reply in results] \
            == [decisions(record_to_dict(record))
                for record in offline.records]
        seqs = [reply["seq"] for reply in replies]
        assert seqs == list(range(len(events)))

    def test_sharded_serving_round_trips_and_replays(
            self, serve_factory):
        # The workers >= 1 path: shard workers must be spawned before
        # the listener opens (a lazily-forked worker would inherit
        # connection sockets and swallow their EOF).
        events = churn_events(_CONFIG, events=24)
        live = serve_factory(workers=2, batch_window=4)
        _drive(live, events)
        live.stop()
        assert live.exit_code == 0
        offline = run_service(_CONFIG, list(live.server.applied),
                              method="rh", engine_seed=_ENGINE_SEED)
        assert records_identical(live.server.records, offline.records)

    def test_concurrent_connections_record_one_replayable_order(
            self, serve_factory, tmp_path):
        # Real racing connections; whatever order the sequencer
        # stamps must replay bit-identically from its JSONL record.
        live = serve_factory()
        genesis = [event for event in churn_events(_CONFIG, events=0)
                   if isinstance(event, AdvertiserJoin)]
        with live.client() as boot:
            for index, event in enumerate(genesis):
                boot.submit(event, tag=index)
            boot.bye()
        keywords = [f"kw{i}" for i in range(SMALL["keywords"])]

        def query_script(conn: int) -> None:
            with live.client() as client:
                for index in range(10):
                    keyword = keywords[(conn + index) % len(keywords)]
                    client.submit(QueryArrival(keyword=keyword),
                                  tag=index)
                client.bye()

        pool = [threading.Thread(target=query_script, args=(conn,))
                for conn in range(4)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        live.stop()
        path = tmp_path / "events.jsonl"
        live.server.applied.to_jsonl(path)
        from repro.stream.events import EventLog
        replayed = list(EventLog.from_jsonl(path))
        assert replayed == list(live.server.applied)
        assert len(replayed) == len(genesis) + 40
        offline = run_service(_CONFIG, replayed, method="rh",
                              engine_seed=_ENGINE_SEED)
        assert records_identical(live.server.records, offline.records)


class TestRejection:
    """State-aware validation happens on the apply thread, in stamp
    order, before journal/record/apply — so a rejected event simply
    never existed as far as replay is concerned."""

    def _join(self, advertiser: int) -> AdvertiserJoin:
        arity = SMALL["keywords"]
        return AdvertiserJoin(
            advertiser=advertiser, target=0.5,
            bids=tuple(1.0 + i for i in range(arity)),
            maxbids=tuple(2.0 + i for i in range(arity)),
            values=tuple(3.0 + i for i in range(arity)), budget=50.0)

    def test_invalid_events_reply_rejected_and_leave_no_trace(
            self, serve_factory):
        live = serve_factory()
        with live.client() as client:
            cases = [
                (QueryArrival(keyword="nope"), "unknown keyword"),
                (self._join(SMALL["advertisers"]), "outside universe"),
                (event_to_payload(self._join(0)), None),  # valid join
                (self._join(0), "already active"),
            ]
            rejected = 0
            for index, (item, detail) in enumerate(cases):
                if isinstance(item, dict):
                    reply = client.submit_payload(item, tag=index)
                else:
                    reply = client.submit(item, tag=index)
                if detail is None:
                    assert reply["type"] == "ok"
                else:
                    assert reply["type"] == "error"
                    assert reply["code"] == "rejected"
                    assert detail in reply["detail"]
                    rejected += 1
            client.bye()
        live.stop()
        assert live.server.rejected == rejected
        # Only the valid join was sequenced into the recorded stream.
        assert list(live.server.applied) == [self._join(0)]

    def test_control_for_inactive_advertiser_rejects(
            self, serve_factory):
        from repro.stream.events import BudgetTopUp
        live = serve_factory()
        with live.client() as client:
            reply = client.submit(BudgetTopUp(advertiser=7,
                                              amount=10.0), tag=0)
            assert reply["type"] == "error"
            assert "not active" in reply["detail"]
            client.bye()
        live.stop()
        assert len(live.server.applied) == 0
