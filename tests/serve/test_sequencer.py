"""Satellite 2: the ingress sequencer's ordering contract.

The sequencer's promise is the whole serving story: *any*
interleaving of concurrent submissions becomes one total order that
is (a) contiguous, (b) per-connection FIFO, and (c) — the property
test — produces a recorded stream whose JSONL round-trip replays
bit-identically offline for all four auction methods.
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.protocol import event_from_payload
from repro.serve.sequencer import IngressSequencer
from repro.stream.events import EventLog
from repro.stream.service import SERVICE_METHODS
from repro.workloads import LoadgenConfig, plan_fleet
from repro.workloads.paper_workload import PaperWorkloadConfig

from ..stream.oracle import assert_outcomes_agree, run_service


class TestTotalOrder:
    def test_concurrent_submitters_get_a_contiguous_total_order(self):
        sequencer = IngressSequencer(capacity=1024)
        threads = 8
        per_thread = 40

        def submitter(conn_id: int) -> None:
            for index in range(per_thread):
                sequencer.submit(("conn", conn_id, index),
                                 conn_id=conn_id, tag=index)

        pool = [threading.Thread(target=submitter, args=(conn,))
                for conn in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        sequencer.close()
        taken = []
        while (item := sequencer.take()) is not None:
            taken.append(item)
        # Totality: every stamp present, exactly once, contiguous.
        assert [item.seq for item in taken] \
            == list(range(threads * per_thread))
        # Per-connection FIFO: each connection's tags stay sorted.
        for conn in range(threads):
            tags = [item.tag for item in taken
                    if item.conn_id == conn]
            assert tags == list(range(per_thread))
        assert sequencer.submitted == threads * per_thread
        assert sequencer.take() is None
        assert sequencer.drained is True

    def test_take_returns_none_only_after_close_and_drain(self):
        sequencer = IngressSequencer(capacity=8)
        sequencer.submit("a")
        sequencer.submit("b")
        sequencer.close()
        assert sequencer.take().event == "a"
        assert sequencer.take().event == "b"
        assert sequencer.take() is None
        assert sequencer.take() is None  # stays drained

    def test_try_take_never_blocks(self):
        sequencer = IngressSequencer(capacity=8)
        assert sequencer.try_take() is None
        sequencer.submit("a")
        assert sequencer.try_take().event == "a"
        assert sequencer.try_take() is None

    def test_submit_after_close_raises(self):
        sequencer = IngressSequencer(capacity=8)
        sequencer.close()
        with pytest.raises(RuntimeError):
            sequencer.submit("late")

    def test_bounded_queue_applies_backpressure(self):
        sequencer = IngressSequencer(capacity=2)
        sequencer.submit("a")
        sequencer.submit("b")
        unblocked = threading.Event()

        def third() -> None:
            sequencer.submit("c")
            unblocked.set()

        thread = threading.Thread(target=third, daemon=True)
        thread.start()
        assert not unblocked.wait(0.1)  # full queue blocks the put
        assert sequencer.take().event == "a"
        assert unblocked.wait(5)  # one take frees one slot
        thread.join(5)


# -- the interleaving property (satellite 2) -------------------------------

_WORKLOAD = PaperWorkloadConfig(num_advertisers=10, num_slots=2,
                                num_keywords=2, seed=3)
_PLAN = plan_fleet(_WORKLOAD, LoadgenConfig(
    events=12, seed=3, processes=1, connections=2, consoles=2))
_SCRIPTS = _PLAN.scripts()
_SLOTS = [index for index, script in enumerate(_SCRIPTS)
          for _ in script]
_ENGINE_SEED = 11


@pytest.fixture(scope="module")
def logdir(tmp_path_factory):
    return tmp_path_factory.mktemp("sequencer-logs")


class TestInterleavingProperty:
    @settings(max_examples=8, deadline=None)
    @given(order=st.permutations(_SLOTS))
    def test_any_interleaving_replays_bit_identically(self, order,
                                                      logdir):
        # One drawn interleaving of the fleet's concurrent scripts,
        # submitted through the sequencer exactly as reader tasks
        # would race to.
        sequencer = IngressSequencer(capacity=256)
        for payload in _PLAN.genesis:
            sequencer.submit(event_from_payload(payload), conn_id=99)
        cursors = [0] * len(_SCRIPTS)
        for conn in order:
            payload = _SCRIPTS[conn][cursors[conn]]
            cursors[conn] += 1
            sequencer.submit(event_from_payload(payload), conn_id=conn)
        sequencer.close()
        sequenced = []
        while (item := sequencer.take()) is not None:
            sequenced.append(item)
        # (a) contiguous total order.
        assert [item.seq for item in sequenced] \
            == list(range(len(sequenced)))
        # (b) per-connection FIFO: each script came out in its own
        # submission order.
        for conn, script in enumerate(_SCRIPTS):
            mine = [item.event for item in sequenced
                    if item.conn_id == conn]
            assert mine == [event_from_payload(p) for p in script]
        # (c) the recorded log's JSONL round-trip replays offline
        # bit-identically, for every auction method.
        events = [item.event for item in sequenced]
        log = EventLog()
        for event in events:
            log.append(event)
        path = logdir / "sequenced.jsonl"
        log.to_jsonl(path)
        replayed = list(EventLog.from_jsonl(path))
        assert replayed == events
        for method in SERVICE_METHODS:
            live = run_service(_WORKLOAD, events, method=method,
                               engine_seed=_ENGINE_SEED)
            offline = run_service(_WORKLOAD, replayed, method=method,
                                  engine_seed=_ENGINE_SEED)
            assert_outcomes_agree(live, offline)
