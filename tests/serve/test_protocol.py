"""Satellite 1: the wire-protocol conformance suite.

Every way a client can misbehave on the wire — malformed JSON in a
well-framed body, oversized length headers, partial frames, unknown
event kinds, disconnecting mid-message — must earn a structured
``error`` reply or a clean close, and must never perturb the
sequenced stream other clients are being recorded into.
"""

from __future__ import annotations

import json
import struct

import pytest

from repro.serve import protocol
from repro.stream.events import (
    AdvertiserJoin,
    AdvertiserLeave,
    AdvertiserPaused,
    BidProgramUpdate,
    BudgetTopUp,
    QueryArrival,
)

JOIN = AdvertiserJoin(advertiser=3, target=0.5, bids=(1.0, 2.0, 3.0),
                      maxbids=(2.0, 3.0, 4.0), values=(3.0, 4.0, 5.0),
                      budget=80.0)


class TestFraming:
    def test_roundtrip(self):
        payload = {"type": "event", "kind": "query", "keyword": "k0"}
        frame = protocol.encode_frame(payload)
        length = struct.unpack(">I", frame[:4])[0]
        assert length == len(frame) - 4
        assert protocol.decode_body(frame[4:]) == payload

    def test_encode_refuses_oversized_bodies(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.encode_frame({"blob": "x" * 64}, max_frame=32)
        assert excinfo.value.code == "oversized"
        assert excinfo.value.fatal

    def test_malformed_json_is_recoverable(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.decode_body(b"{nope")
        assert excinfo.value.code == "malformed-json"
        assert not excinfo.value.fatal

    def test_non_object_top_level_is_recoverable(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.decode_body(b"[1, 2]")
        assert excinfo.value.code == "not-an-object"
        assert not excinfo.value.fatal


class TestEventPayloads:
    @pytest.mark.parametrize("event", [
        QueryArrival(keyword="k1"),
        JOIN,
        AdvertiserLeave(advertiser=3),
        BidProgramUpdate(advertiser=3, keyword="k2", bid=1.5,
                         maxbid=2.5),
        BudgetTopUp(advertiser=3, amount=25.0),
    ])
    def test_roundtrip_every_input_kind(self, event):
        payload = protocol.event_to_payload(event, tag="t")
        # Through JSON, as the wire would carry it.
        payload = json.loads(json.dumps(payload))
        assert protocol.event_from_payload(payload) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.event_from_payload(
                {"type": "event", "kind": "bribe"})
        assert excinfo.value.code == "unknown-kind"

    def test_service_originated_kinds_are_not_inputs(self):
        payload = protocol.event_to_payload(
            AdvertiserPaused(advertiser=1, auction_id=7))
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.event_from_payload(payload)
        assert excinfo.value.code == "unknown-kind"
        assert "paused" not in protocol.INPUT_KINDS

    def test_missing_fields_reject_as_bad_event(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.event_from_payload(
                {"type": "event", "kind": "join", "advertiser": 1})
        assert excinfo.value.code == "bad-event"

    def test_non_array_bid_columns_reject(self):
        payload = protocol.event_to_payload(JOIN)
        payload["bids"] = "1,2,3"
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.event_from_payload(payload)
        assert excinfo.value.code == "bad-event"


class TestLiveConformance:
    """Abuse a live server and prove the taxonomy holds."""

    def _submit_one_query(self, client, tag="probe"):
        reply = client.submit(QueryArrival(keyword="kw0"), tag=tag)
        assert reply["type"] == "result"
        return reply

    def test_malformed_json_earns_error_and_connection_lives(
            self, serve_factory):
        live = serve_factory()
        with live.client() as client:
            client.send_raw(struct.pack(">I", 5) + b"{nope")
            reply = client.read_frame()
            assert reply["type"] == "error"
            assert reply["code"] == "malformed-json"
            self._submit_one_query(client)

    def test_non_object_body_earns_error_and_connection_lives(
            self, serve_factory):
        live = serve_factory()
        with live.client() as client:
            client.send_raw(struct.pack(">I", 2) + b"[]")
            reply = client.read_frame()
            assert reply["code"] == "not-an-object"
            self._submit_one_query(client)

    def test_unknown_kind_earns_error_and_connection_lives(
            self, serve_factory):
        live = serve_factory()
        with live.client() as client:
            client.send_payload({"type": "event", "kind": "bribe",
                                 "tag": 9})
            reply = client.read_frame()
            assert reply["code"] == "unknown-kind"
            assert reply["tag"] == 9
            self._submit_one_query(client)

    def test_unknown_frame_type_earns_error_and_connection_lives(
            self, serve_factory):
        live = serve_factory()
        with live.client() as client:
            client.send_payload({"type": "dance"})
            reply = client.read_frame()
            assert reply["code"] == "unknown-type"
            self._submit_one_query(client)

    def test_oversized_header_is_fatal(self, serve_factory):
        live = serve_factory()
        with live.client() as client:
            client.send_raw(struct.pack(">I", protocol.MAX_FRAME + 1))
            reply = client.read_frame()
            assert reply["type"] == "error"
            assert reply["code"] == "oversized"
            # The stream cannot re-synchronize: the server says
            # goodbye and closes instead of reading on.
            farewell = client.read_frame()
            assert farewell is None or farewell["type"] == "goodbye"
            assert client.read_frame() is None

    def test_mid_message_disconnect_is_a_clean_close(
            self, serve_factory):
        live = serve_factory()
        client = live.client()
        # Declare a 100-byte body, send 3 bytes, vanish.
        client.send_raw(struct.pack(">I", 100) + b"{\"t")
        client.close()
        # The server survives: a fresh connection works immediately.
        with live.client() as fresh:
            self._submit_one_query(fresh)
        assert live.server._service_error is None

    def test_abuse_never_perturbs_the_sequenced_stream(
            self, serve_factory):
        live = serve_factory()
        with live.client() as good:
            self._submit_one_query(good, tag="before")
            with live.client() as bad:
                bad.send_raw(struct.pack(">I", 4) + b"junk")
                assert bad.read_frame()["type"] == "error"
                bad.send_payload({"type": "event", "kind": "bribe"})
                assert bad.read_frame()["code"] == "unknown-kind"
                bad.send_raw(struct.pack(">I", 50) + b"half")
                bad.close()
            self._submit_one_query(good, tag="after")
        live.stop()
        # Only the two well-formed queries ever reached the sequencer
        # or the recorded stream.
        assert [type(e).__name__ for e in live.server.applied] \
            == ["QueryArrival", "QueryArrival"]
        assert live.server.errors >= 3
        assert live.server.rejected == 0

    def test_welcome_advertises_the_wire_contract(self, serve_factory):
        live = serve_factory()
        with live.client() as client:
            welcome = client.welcome
        assert welcome["type"] == "welcome"
        assert welcome["wire"] == protocol.WIRE_FORMAT
        assert set(welcome["kinds"]) == set(protocol.INPUT_KINDS)
        assert welcome["max_frame"] == protocol.MAX_FRAME

    def test_hello_roundtrip(self, serve_factory):
        live = serve_factory()
        with live.client() as client:
            ack = client.hello("console", "test-console")
            assert ack["type"] == "hello-ok"
            assert ack["role"] == "console"
