"""Unit coverage for the span tracer (:mod:`repro.obs.tracer`).

Deterministic seq-derived ids, the stage/open/child lifecycle (pre-root
staging, post-return late children), flush ordering, reset-on-reopen
(failed-apply retry), and the trace schema validator.
"""

from __future__ import annotations

import json

from repro.obs import SPAN_KINDS, SpanTracer, validate_trace_file


def read_spans(path):
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines[0]["kind"] == "header"
    return [line for line in lines[1:] if line["kind"] == "span"]


class TestSpanLifecycle:
    def test_ids_derive_from_seq_dfs_order(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = SpanTracer(path)
        tracer.open(0, "query")
        tracer.child(0, "dispatch", 0.5,
                     children=[("wd", 0.3, None), ("price", 0.1, None),
                               ("settle", 0.1, None)])
        tracer.child(0, "emit", 0.01)
        tracer.set_duration(0, 0.6)
        tracer.close()
        spans = read_spans(path)
        assert len(spans) == 1
        root = spans[0]
        assert root["span_id"] == "0"
        assert root["seq"] == 0
        assert root["seconds"] == 0.6
        dispatch, emit = root["children"]
        assert dispatch["span_id"] == "0.1"
        assert [g["span_id"] for g in dispatch["children"]] \
            == ["0.1.1", "0.1.2", "0.1.3"]
        assert emit["span_id"] == "0.2"
        assert validate_trace_file(path) == []

    def test_staged_children_adopted_on_open(self, tmp_path):
        # The durable wrapper fsyncs BEFORE applying: the child is
        # staged while no root exists and adopted as the first child.
        path = tmp_path / "t.jsonl"
        tracer = SpanTracer(path)
        tracer.stage(3, "journal-fsync", 0.002,
                     attrs={"origin": "input"})
        tracer.open(3, "join")
        tracer.child(3, "emit", 0.001)
        tracer.close()
        (root,) = read_spans(path)
        assert [c["name"] for c in root["children"]] \
            == ["journal-fsync", "emit"]
        assert root["children"][0]["attrs"] == {"origin": "input"}

    def test_late_children_land_until_next_flush(self, tmp_path):
        # Checkpoint/batch-window children attach after the apply
        # returns; flush_upto at the NEXT apply is the cutoff.
        path = tmp_path / "t.jsonl"
        tracer = SpanTracer(path)
        tracer.open(0, "query")
        tracer.child(0, "checkpoint", 0.004)  # post-return child
        tracer.flush_upto(1)
        tracer.open(1, "query")
        tracer.close()
        spans = read_spans(path)
        assert [s["seq"] for s in spans] == [0, 1]
        assert spans[0]["children"][0]["name"] == "checkpoint"

    def test_flush_writes_in_seq_order(self, tmp_path):
        # A batch window keeps all member roots open together; the
        # flush must still write them in stream order.
        path = tmp_path / "t.jsonl"
        tracer = SpanTracer(path)
        for seq in (2, 0, 1):
            tracer.open(seq, "query")
        tracer.flush_upto(3)
        tracer.close()
        assert [s["seq"] for s in read_spans(path)] == [0, 1, 2]

    def test_reopen_resets_failed_attempt(self, tmp_path):
        # A failed apply retried at the same watermark must not leak
        # the dead attempt's stages into the successful root.
        path = tmp_path / "t.jsonl"
        tracer = SpanTracer(path)
        tracer.open(5, "query")
        tracer.child(5, "dispatch", 0.9)
        tracer.open(5, "query")  # retry
        tracer.child(5, "emit", 0.001)
        tracer.close()
        (root,) = read_spans(path)
        assert [c["name"] for c in root["children"]] == ["emit"]

    def test_taxonomy_is_the_documented_one(self):
        assert set(SPAN_KINDS) == {
            "ingress", "batch-window", "journal-fsync", "dispatch",
            "wd", "price", "settle", "emit", "checkpoint"}


class TestTraceValidator:
    def test_coverage_gap_is_reported(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = SpanTracer(path)
        tracer.open(0, "query")
        tracer.open(2, "query")  # seq 1 missing
        tracer.close()
        problems = validate_trace_file(path, expected_events=3)
        assert any("1" in problem for problem in problems)

    def test_duplicate_seq_is_reported(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = SpanTracer(path)
        tracer.open(0, "query")
        tracer.flush_upto(1)
        tracer.open(0, "query")  # duplicate root
        tracer.close()
        problems = validate_trace_file(path)
        assert any("duplicate" in problem for problem in problems)

    def test_unknown_child_name_is_reported(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = SpanTracer(path)
        tracer.open(0, "query")
        tracer.child(0, "mystery-stage", 0.1)
        tracer.close()
        problems = validate_trace_file(path)
        assert any("mystery-stage" in problem for problem in problems)
