"""Unit coverage for the metrics half of :mod:`repro.obs`.

Counters, gauges, the fixed-bucket latency histogram (percentiles are
bucket upper bounds, clamped by the exact max), the registry's lazy
instrument creation and stable serialization, the JSONL writer's
snapshot schedule, and the schema validator that CI gates on.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    MetricsWriter,
    ObservabilityConfig,
    merge_counter_dicts,
    validate_metrics_file,
)
from repro.obs.metrics import BUCKET_BOUNDS, LatencyHistogram


class TestInstruments:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        registry.counter("events").inc(4)
        registry.gauge("depth").set(7)
        registry.gauge("depth").set(3)
        payload = registry.to_dict()
        assert payload["counters"]["events"] == 5
        assert payload["gauges"]["depth"] == 3

    def test_histogram_percentiles_are_bucket_upper_bounds(self):
        histogram = LatencyHistogram()
        for _ in range(50):
            histogram.observe(0.0009)
        for _ in range(40):
            histogram.observe(0.010)
        for _ in range(10):
            histogram.observe(0.100)
        cell = histogram.to_dict()
        assert cell["count"] == 100
        assert cell["max_seconds"] == pytest.approx(0.100)
        # The covering bucket's upper bound: within one 2x bucket
        # width above the true quantile, never below it.
        assert 0.0009 <= cell["p50"] <= 0.0018
        assert 0.010 <= cell["p90"] <= 0.020
        # p99 lands in the overflow-free top bucket but is clamped by
        # the exact max.
        assert cell["p99"] <= cell["max_seconds"] * 2
        assert cell["mean_seconds"] == pytest.approx(
            (50 * 0.0009 + 40 * 0.010 + 10 * 0.100) / 100)

    def test_histogram_overflow_clamps_to_max(self):
        histogram = LatencyHistogram()
        huge = BUCKET_BOUNDS[-1] * 10
        histogram.observe(huge)
        cell = histogram.to_dict()
        assert cell["count"] == 1
        assert cell["max_seconds"] == pytest.approx(huge)
        assert cell["p99"] == pytest.approx(huge)

    def test_empty_histogram_serializes_zeros(self):
        cell = LatencyHistogram().to_dict()
        assert cell["count"] == 0
        assert cell["p50"] == 0.0
        assert cell["max_seconds"] == 0.0

    def test_registry_is_lazy_and_stable(self):
        registry = MetricsRegistry()
        assert registry.to_dict() == {"counters": {}, "gauges": {},
                                      "histograms": {}}
        first = registry.histogram("latency.x")
        assert registry.histogram("latency.x") is first

    def test_merge_counter_dicts(self):
        merged = merge_counter_dicts({
            0: {"a": 1, "b": 2.5}, 1: {"a": 3, "c": 1}})
        assert merged == {"a": 4, "b": 2.5, "c": 1}
        assert merge_counter_dicts({}) == {}


class TestWriterAndSchema:
    def test_snapshot_schedule_and_summary(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        registry = MetricsRegistry()
        writer = MetricsWriter(path, snapshot_every=10)
        for seq in range(25):
            registry.counter("events").inc()
            if writer.due(seq + 1):
                writer.write_snapshot(seq + 1, registry)
        writer.write_summary({"events_processed": 25,
                              "metrics": registry.to_dict(),
                              "event_timings": {"total_events": 25}})
        writer.close()
        lines = [json.loads(line) for line
                 in path.read_text().splitlines()]
        kinds = [line["kind"] for line in lines]
        assert kinds[0] == "header"
        assert kinds.count("snapshot") == 2  # at 10 and 20
        assert kinds[-1] == "summary"
        assert validate_metrics_file(path) == []

    def test_snapshot_every_zero_means_summary_only(self, tmp_path):
        writer = MetricsWriter(tmp_path / "m.jsonl", snapshot_every=0)
        assert not writer.due(10)
        assert not writer.due(10_000)
        writer.write_summary({"events_processed": 1,
                              "metrics": MetricsRegistry().to_dict(),
                              "event_timings": {}})
        writer.close()
        assert validate_metrics_file(tmp_path / "m.jsonl") == []

    def test_validator_rejects_missing_summary(self, tmp_path):
        path = tmp_path / "m.jsonl"
        writer = MetricsWriter(path, snapshot_every=1)
        writer.write_snapshot(1, MetricsRegistry())
        writer.close()
        problems = validate_metrics_file(path)
        assert any("summary" in problem for problem in problems)

    def test_validator_rejects_bad_header(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('{"kind": "header", "format": "nope/9"}\n')
        problems = validate_metrics_file(path)
        assert problems

    def test_config_validates_snapshot_every(self):
        with pytest.raises(ValueError, match="snapshot_every"):
            ObservabilityConfig(metrics_out="m.jsonl",
                                snapshot_every=-1)
