"""Observability suite: metrics, span traces, and the
observe-without-perturbing oracle (:mod:`repro.obs`)."""
