"""The observe-without-perturbing oracle (:mod:`repro.obs`).

The tentpole promise: arming the full observability stack — metrics
registry, periodic snapshots, and a span trace — must not move a
single deterministic outcome.  For every method, an instrumented run
(in-process and sharded, batched and unbatched) is held bit-identical
to a dark baseline via the shared service-equivalence harness, while
its span trace must cover every applied event seq exactly once and its
metrics sidecar must pass the schema validator.

Also here: the durable wrapper's journal-fsync/checkpoint spans, the
worker-counter piggyback merge, and the zero-cost-when-disabled
contract (a dark service holds no registry, no tracer, no writer).
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    ObservabilityConfig,
    validate_metrics_file,
    validate_trace_file,
)
from repro.stream import (
    BatchingConfig,
    DurableAuctionService,
    OnlineAuctionService,
)
from repro.workloads import (
    ChurnStreamConfig,
    PaperWorkload,
    PaperWorkloadConfig,
    generate_stream,
)
from tests.stream.oracle import (
    assert_outcomes_agree,
    capture_outcome,
    run_service,
)

CONFIG = PaperWorkloadConfig(num_advertisers=24, num_slots=3,
                             num_keywords=2, seed=1)
SEED = 3
METHODS = ("rh", "lp", "hungarian", "rhtalu")


@pytest.fixture(scope="module")
def stream():
    log = generate_stream(PaperWorkload(CONFIG), ChurnStreamConfig(
        num_events=60, churn_rate=0.25, genesis=12, min_active=4,
        budget_low=3.0, budget_high=25.0, topup_weight=2.0, seed=11))
    counts = log.counts_by_kind()
    assert counts["query"] >= 30
    return log


@pytest.fixture(scope="module")
def baselines(stream):
    """Per-method dark outcomes, computed once."""
    return {method: run_service(CONFIG, stream, method=method,
                                engine_seed=SEED)
            for method in METHODS}


def run_observed(stream, tmp_path, *, method="rh", workers=0,
                 window=0, tag=""):
    observability = ObservabilityConfig(
        metrics_out=tmp_path / f"m{tag}.jsonl",
        trace_spans=tmp_path / f"t{tag}.jsonl",
        snapshot_every=20)
    batching = BatchingConfig(window=window) if window else None
    with OnlineAuctionService(CONFIG, method=method, workers=workers,
                              engine_seed=SEED, batching=batching,
                              observability=observability) as service:
        records = service.run(stream)
        outcome = capture_outcome(service, records)
    # Worker counters are harvested (and the summary written) at
    # close, so read them after the context exits.
    return outcome, observability, service.worker_metrics


class TestObservedRunsAreBitIdentical:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("workers,window",
                             [(0, 0), (0, 4), (2, 0), (2, 4)])
    def test_full_matrix(self, stream, baselines, tmp_path, method,
                         workers, window):
        outcome, observability, _ = run_observed(
            stream, tmp_path, method=method, workers=workers,
            window=window, tag=f"{method}{workers}{window}")
        assert_outcomes_agree(baselines[method], outcome)
        # Every applied event seq has exactly one root span; the
        # metrics sidecar is schema-clean with a single summary.
        assert validate_trace_file(
            observability.trace_spans,
            expected_events=len(stream)) == []
        assert validate_metrics_file(observability.metrics_out) == []

    def test_summary_carries_timings_and_counters(self, stream,
                                                  tmp_path):
        _, observability, _ = run_observed(stream, tmp_path,
                                           window=4, tag="summary")
        lines = [json.loads(line) for line in
                 observability.metrics_out.read_text().splitlines()]
        summary = lines[-1]
        assert summary["kind"] == "summary"
        assert summary["events_processed"] == len(stream)
        counters = summary["metrics"]["counters"]
        timing = summary["event_timings"]
        assert counters["service.events.query"] \
            == timing["by_kind"]["query"]["count"]
        assert counters["batch.windows"] >= 1
        # Satellite: the supervision block is always present.
        assert timing["supervision"]["worker_failures"] == 0
        histograms = summary["metrics"]["histograms"]
        assert histograms["latency.dispatch"]["count"] \
            == counters["service.events.query"]


class TestWorkerMetricsPiggyback:
    def test_merged_in_coordinator_summary(self, stream, tmp_path):
        _, observability, worker_metrics = run_observed(
            stream, tmp_path, workers=2, tag="piggy")
        assert set(worker_metrics) == {"per_shard", "merged"}
        assert set(worker_metrics["per_shard"]) == {"0", "1"}
        merged = worker_metrics["merged"]
        per_shard = worker_metrics["per_shard"]
        for key in ("tasks_handled", "wins_folded",
                    "controls_applied"):
            assert merged[key] == sum(shard[key] for shard
                                      in per_shard.values())
        assert merged["tasks_handled"] > 0
        # The summary line carries the same block.
        lines = [json.loads(line) for line in
                 observability.metrics_out.read_text().splitlines()]
        assert lines[-1]["worker_metrics"]["merged"]["tasks_handled"] \
            == merged["tasks_handled"]

    def test_inprocess_backend_has_no_worker_block(self, stream,
                                                   tmp_path):
        _, _, worker_metrics = run_observed(stream, tmp_path,
                                            workers=0, tag="solo")
        assert worker_metrics == {}


class TestDurableSpans:
    def test_journal_and_checkpoint_children(self, stream, tmp_path,
                                             baselines):
        observability = ObservabilityConfig(
            metrics_out=tmp_path / "dm.jsonl",
            trace_spans=tmp_path / "dt.jsonl")
        with DurableAuctionService.open(
                CONFIG, tmp_path / "journal.jsonl", method="rh",
                engine_seed=SEED,
                checkpoint_dir=tmp_path / "ckpt",
                checkpoint_every=16,
                observability=observability) as durable:
            records = durable.run(stream)
            outcome = capture_outcome(durable.service, records)
        assert_outcomes_agree(baselines["rh"], outcome)
        assert validate_trace_file(observability.trace_spans,
                                   expected_events=len(stream)) == []
        spans = [json.loads(line) for line in
                 observability.trace_spans.read_text().splitlines()
                 if '"span"' in line]
        spans = [s for s in spans if s.get("kind") == "span"]
        names = [c["name"] for span in spans
                 for c in span["children"]]
        # Every applied event was journaled ahead of the apply...
        assert names.count("journal-fsync") == len(stream)
        # ...and the checkpoint schedule produced checkpoint children.
        assert names.count("checkpoint") \
            == len(stream) // 16
        counters = json.loads(
            observability.metrics_out.read_text()
            .splitlines()[-1])["metrics"]["counters"]
        assert counters["journal.appends"] >= len(stream)
        assert counters["checkpoint.writes"] == len(stream) // 16

    def test_batched_durable_stays_identical(self, stream, tmp_path,
                                             baselines):
        observability = ObservabilityConfig(
            trace_spans=tmp_path / "bt.jsonl")
        with DurableAuctionService.open(
                CONFIG, tmp_path / "bjournal.jsonl", method="rh",
                engine_seed=SEED,
                batching=BatchingConfig(window=4),
                observability=observability) as durable:
            records = durable.run(stream)
            outcome = capture_outcome(durable.service, records)
        assert_outcomes_agree(baselines["rh"], outcome)
        assert validate_trace_file(observability.trace_spans,
                                   expected_events=len(stream)) == []


class TestZeroCostWhenDisabled:
    def test_dark_service_holds_no_observability_state(self):
        with OnlineAuctionService(CONFIG, method="rh",
                                  engine_seed=SEED) as service:
            assert service.observability is None
            assert service.metrics is None
            assert service.tracer is None
            assert service._metrics_writer is None

    def test_registry_without_sidecars(self, stream, baselines):
        # A config with no output paths still arms the in-memory
        # registry (programmatic use) without touching disk.
        with OnlineAuctionService(
                CONFIG, method="rh", engine_seed=SEED,
                observability=ObservabilityConfig()) as service:
            records = service.run(stream)
            outcome = capture_outcome(service, records)
            counters = service.metrics.to_dict()["counters"]
            assert service.tracer is None
            assert service._metrics_writer is None
        assert_outcomes_agree(baselines["rh"], outcome)
        assert counters["service.events.query"] == len(outcome.records)
