"""Smoke tests: every shipped example runs to completion.

Examples are part of the public deliverable; these tests keep them
working as the library evolves. Each is executed in-process (importing
as a module and calling main()) with stdout captured.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_expected_examples_present():
    # The deliverable: a quickstart plus domain scenarios.
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3
