"""Tests for heavyweight layout models (Section III-F)."""

import numpy as np
import pytest

from repro.lang.parser import parse_formula
from repro.probability.click_models import ClickModelError, TabularClickModel
from repro.probability.formula_prob import heavy_formula_probability
from repro.probability.heavyweight import (
    AdvertiserClassifier,
    PenaltyHeavyweightClickModel,
    TabularHeavyweightClickModel,
    all_layouts,
    layout_from_key,
    layout_key,
    random_heavyweight_model,
)
from repro.probability.purchase_models import no_purchases


class TestLayoutEncoding:
    def test_round_trip(self):
        for mask in range(8):
            layout = layout_from_key(mask, 3)
            assert layout_key(layout) == mask

    def test_all_layouts_count(self):
        layouts = list(all_layouts(3))
        assert len(layouts) == 8
        assert frozenset() in layouts
        assert frozenset({1, 2, 3}) in layouts


class TestPenaltyModel:
    @pytest.fixture
    def model(self):
        base = TabularClickModel(np.full((2, 3), 0.6))
        return PenaltyHeavyweightClickModel(base=base, penalty=0.5,
                                            exempt=frozenset({1}))

    def test_no_heavies_no_penalty(self, model):
        assert model.p_click(0, 2, frozenset()) == pytest.approx(0.6)

    def test_heavy_above_halves(self, model):
        assert model.p_click(0, 2, frozenset({1})) == pytest.approx(0.3)

    def test_heavy_below_is_harmless(self, model):
        assert model.p_click(0, 2, frozenset({3})) == pytest.approx(0.6)

    def test_two_heavies_above_compound(self, model):
        assert model.p_click(0, 3, frozenset({1, 2})) == pytest.approx(0.15)

    def test_exempt_advertiser_ignores_layout(self, model):
        assert model.p_click(1, 3, frozenset({1, 2})) == pytest.approx(0.6)

    def test_unassigned_is_zero(self, model):
        assert model.p_click(0, None, frozenset({1})) == 0.0

    def test_invalid_penalty(self):
        base = TabularClickModel(np.full((1, 1), 0.5))
        with pytest.raises(ClickModelError):
            PenaltyHeavyweightClickModel(base=base, penalty=0.0)


class TestTabularHeavyModel:
    def test_override_and_fallback(self):
        base = TabularClickModel(np.full((1, 2), 0.4))
        model = TabularHeavyweightClickModel(base=base)
        model.set_probability(0, 1, frozenset({2}), 0.1)
        assert model.p_click(0, 1, frozenset({2})) == 0.1
        assert model.p_click(0, 1, frozenset()) == 0.4  # fallback

    def test_invalid_probability_rejected(self):
        base = TabularClickModel(np.full((1, 2), 0.4))
        model = TabularHeavyweightClickModel(base=base)
        with pytest.raises(ClickModelError):
            model.set_probability(0, 1, frozenset(), 1.5)

    def test_random_model_probabilities_valid(self, rng):
        base = TabularClickModel(rng.uniform(0, 1, size=(3, 2)))
        model = random_heavyweight_model(base, rng, spread=0.5)
        for advertiser in range(3):
            for slot_index in (1, 2):
                for mask in range(4):
                    p = model.p_click(advertiser, slot_index,
                                      layout_from_key(mask, 2))
                    assert 0.0 <= p <= 1.0


class TestClassifier:
    def test_top_clicks_win(self):
        classifier = AdvertiserClassifier(click_counts=(5, 9, 1, 9),
                                          num_heavyweights=2)
        assert classifier.heavyweights() == frozenset({1, 3})
        assert classifier.lightweights() == frozenset({0, 2})

    def test_tie_breaks_toward_lower_id(self):
        classifier = AdvertiserClassifier(click_counts=(4, 4, 4),
                                          num_heavyweights=1)
        assert classifier.heavyweights() == frozenset({0})

    def test_too_many_heavyweights_rejected(self):
        with pytest.raises(ValueError):
            AdvertiserClassifier(click_counts=(1,), num_heavyweights=2)


class TestHeavyFormulaProbability:
    def test_heavy_in_slot_atom_resolves_from_layout(self):
        base = TabularClickModel(np.full((1, 2), 0.5))
        model = PenaltyHeavyweightClickModel(base=base, penalty=0.8)
        pm = no_purchases(1, 2)
        f = parse_formula("Slot2 & HeavyInSlot1")
        p_with = heavy_formula_probability(f, 0, 2, frozenset({1}),
                                           model, pm)
        p_without = heavy_formula_probability(f, 0, 2, frozenset(),
                                              model, pm)
        assert p_with == 1.0
        assert p_without == 0.0

    def test_click_probability_is_layout_conditioned(self):
        base = TabularClickModel(np.full((1, 2), 0.5))
        model = PenaltyHeavyweightClickModel(base=base, penalty=0.5)
        pm = no_purchases(1, 2)
        f = parse_formula("Click")
        assert heavy_formula_probability(
            f, 0, 2, frozenset({1}), model, pm) == pytest.approx(0.25)
        assert heavy_formula_probability(
            f, 0, 2, frozenset(), model, pm) == pytest.approx(0.5)
