"""Tests for separability detection (Section III-C, Figures 7-8)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.probability.click_models import figure7_model, figure8_model
from repro.probability.separable import (
    NotSeparableError,
    factorize,
    is_separable,
    separability_gap,
)


class TestPaperExamples:
    def test_figure7_not_separable(self):
        assert not is_separable(figure7_model().matrix)

    def test_figure8_separable(self):
        assert is_separable(figure8_model().matrix)

    def test_figure8_factors_match_papers(self):
        # Paper: advertiser factors 4 (Nike), 3 (Adidas); slot factors
        # 0.2, 0.1.  The factorization is unique up to a scalar, so check
        # the ratios the paper's factors imply.
        factors = factorize(figure8_model().matrix)
        adv = factors.advertiser_factors
        slots = factors.slot_factors
        assert adv[0] / adv[1] == pytest.approx(4.0 / 3.0)
        assert slots[0] / slots[1] == pytest.approx(0.2 / 0.1)


class TestFactorize:
    def test_reconstruction(self):
        matrix = np.outer([1.0, 2.0, 0.5], [0.3, 0.2, 0.1, 0.05])
        factors = factorize(matrix)
        assert np.allclose(factors.reconstruct(), matrix)

    def test_zero_matrix(self):
        factors = factorize(np.zeros((3, 2)))
        assert np.allclose(factors.reconstruct(), 0.0)

    def test_zero_rows_allowed(self):
        matrix = np.outer([1.0, 0.0, 0.5], [0.4, 0.2])
        factors = factorize(matrix)
        assert np.allclose(factors.reconstruct(), matrix)

    def test_rank_two_rejected(self):
        with pytest.raises(NotSeparableError):
            factorize(np.array([[1.0, 0.0], [0.0, 1.0]]))

    def test_single_row_always_separable(self):
        assert is_separable(np.array([[0.3, 0.1, 0.7]]))

    def test_single_column_always_separable(self):
        assert is_separable(np.array([[0.3], [0.1]]))


class TestGap:
    def test_gap_zero_for_rank_one(self):
        matrix = np.outer([1.0, 2.0], [0.3, 0.1])
        assert separability_gap(matrix) == pytest.approx(0.0, abs=1e-12)

    def test_gap_positive_for_figure7(self):
        assert separability_gap(figure7_model().matrix) > 1e-3

    def test_gap_zero_for_vectors(self):
        assert separability_gap(np.array([[0.1, 0.2]])) == 0.0


class TestProperties:
    @given(
        npst.arrays(np.float64, st.tuples(st.integers(1, 5),
                                          st.integers(1, 4)),
                    elements=st.floats(0.0, 1.0, allow_nan=False)),
    )
    def test_is_separable_consistent_with_factorize(self, matrix):
        if is_separable(matrix):
            factors = factorize(matrix)
            assert np.allclose(factors.reconstruct(), matrix, atol=1e-8)

    @given(
        st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=1,
                 max_size=5),
        st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=1,
                 max_size=4),
    )
    def test_outer_products_are_separable(self, left, right):
        matrix = np.outer(left, right)
        assert is_separable(matrix)
