"""Tests for formula pricing: analytic probability vs Monte Carlo."""

import numpy as np
import pytest
from hypothesis import given, settings

from tests.conftest import formulas

from repro.lang.bids import BidsTable
from repro.lang.formula import Atom
from repro.lang.outcome import Allocation, Outcome
from repro.lang.parser import parse_formula
from repro.lang.predicates import slot
from repro.probability.click_models import TabularClickModel
from repro.probability.formula_prob import (
    NotSupportedFormulaError,
    expected_table_value,
    formula_probability,
)
from repro.probability.purchase_models import (
    ConstantRatePurchaseModel,
    TabularPurchaseModel,
    no_purchases,
)

W = 0.6   # click probability used in closed-form cases
Q = 0.25  # purchase-given-click


@pytest.fixture
def click_model():
    return TabularClickModel(np.full((2, 3), W))


@pytest.fixture
def purchase_model():
    return ConstantRatePurchaseModel(2, 3, rate_given_click=Q)


class TestClosedForms:
    def test_click(self, click_model, purchase_model):
        p = formula_probability(parse_formula("Click"), 0, 1,
                                click_model, purchase_model)
        assert p == pytest.approx(W)

    def test_purchase(self, click_model, purchase_model):
        p = formula_probability(parse_formula("Purchase"), 0, 2,
                                click_model, purchase_model)
        assert p == pytest.approx(W * Q)

    def test_click_and_not_purchase(self, click_model, purchase_model):
        p = formula_probability(parse_formula("Click & !Purchase"), 0, 1,
                                click_model, purchase_model)
        assert p == pytest.approx(W * (1 - Q))

    def test_slot_atom_in_matching_slot(self, click_model, purchase_model):
        p = formula_probability(parse_formula("Click & Slot2"), 0, 2,
                                click_model, purchase_model)
        assert p == pytest.approx(W)

    def test_slot_atom_in_other_slot(self, click_model, purchase_model):
        p = formula_probability(parse_formula("Click & Slot2"), 0, 1,
                                click_model, purchase_model)
        assert p == 0.0

    def test_unassigned_negative_slot_row(self, click_model,
                                          purchase_model):
        # The Theorem 2 proof's E ∧ ⋀_j ¬Slot_j decomposition: bids can
        # pay off without a slot.
        p = formula_probability(parse_formula("!Slot1 & !Slot2 & !Slot3"),
                                0, None, click_model, purchase_model)
        assert p == 1.0

    def test_unassigned_click_impossible(self, click_model,
                                         purchase_model):
        p = formula_probability(parse_formula("Click"), 0, None,
                                click_model, purchase_model)
        assert p == 0.0

    def test_purchase_without_click_channel(self):
        click_model = TabularClickModel(np.array([[0.5]]))
        purchase_model = TabularPurchaseModel(
            given_click=np.array([[0.4]]),
            given_no_click=np.array([[0.1]]))
        p = formula_probability(parse_formula("Purchase"), 0, 1,
                                click_model, purchase_model)
        assert p == pytest.approx(0.5 * 0.4 + 0.5 * 0.1)


class TestRejections:
    def test_cross_advertiser_formula_rejected(self, click_model,
                                               purchase_model):
        f = Atom(slot(1, advertiser=1)) & Atom(slot(2))
        with pytest.raises(NotSupportedFormulaError):
            formula_probability(f, 0, 1, click_model, purchase_model)

    def test_heavy_layout_formula_rejected(self, click_model,
                                           purchase_model):
        with pytest.raises(NotSupportedFormulaError):
            formula_probability(parse_formula("HeavyInSlot1"), 0, 1,
                                click_model, purchase_model)


class TestExpectedTableValue:
    def test_linearity_over_rows(self, click_model, purchase_model):
        table = BidsTable.from_pairs([("Click", 10), ("Purchase", 4)])
        value = expected_table_value(table, 0, 1, click_model,
                                     purchase_model)
        assert value == pytest.approx(10 * W + 4 * W * Q)

    def test_empty_table_is_zero(self, click_model, purchase_model):
        assert expected_table_value(BidsTable(), 0, 1, click_model,
                                    purchase_model) == 0.0


class TestMonteCarloAgreement:
    """The analytic probability matches simulation of the outcome model."""

    @settings(max_examples=20, deadline=None)
    @given(formulas(max_leaves=4))
    def test_formula_probability_matches_simulation(self, formula):
        rng = np.random.default_rng(7)
        click_model = TabularClickModel(np.full((1, 3), W))
        purchase_model = ConstantRatePurchaseModel(1, 3,
                                                   rate_given_click=Q)
        slot_index = 2
        analytic = formula_probability(formula, 0, slot_index,
                                       click_model, purchase_model)
        trials = 4000
        hits = 0
        for _ in range(trials):
            clicked = rng.random() < W
            purchased = clicked and rng.random() < Q
            outcome = Outcome(
                allocation=Allocation(num_slots=3,
                                      slot_of={0: slot_index}),
                clicked=frozenset({0} if clicked else ()),
                purchased=frozenset({0} if purchased else ()))
            if outcome.satisfies(formula, 0):
                hits += 1
        assert hits / trials == pytest.approx(analytic, abs=0.035)

    def test_no_purchase_model_helper(self):
        model = no_purchases(3, 2)
        assert model.p_purchase_given_click(0, 1) == 0.0
        assert model.p_purchase_given_no_click(2, 2) == 0.0
