"""Tests for click-probability models."""

import numpy as np
import pytest

from repro.probability.click_models import (
    ClickModelError,
    SeparableClickModel,
    TabularClickModel,
    figure7_model,
    figure8_model,
)


class TestTabular:
    def test_lookup_is_one_based(self):
        model = TabularClickModel(np.array([[0.2, 0.5]]))
        assert model.p_click(0, 1) == 0.2
        assert model.p_click(0, 2) == 0.5

    def test_unassigned_yields_zero(self):
        model = TabularClickModel(np.array([[0.2, 0.5]]))
        assert model.p_click(0, None) == 0.0

    def test_out_of_range_rejected(self):
        model = TabularClickModel(np.array([[0.2, 0.5]]))
        with pytest.raises(ClickModelError):
            model.p_click(0, 3)
        with pytest.raises(ClickModelError):
            model.p_click(1, 1)

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ClickModelError):
            TabularClickModel(np.array([[1.2]]))
        with pytest.raises(ClickModelError):
            TabularClickModel(np.array([[-0.1]]))
        with pytest.raises(ClickModelError):
            TabularClickModel(np.array([[np.nan]]))

    def test_wrong_rank_rejected(self):
        with pytest.raises(ClickModelError):
            TabularClickModel(np.array([0.5, 0.5]))

    def test_as_matrix_round_trip(self):
        matrix = np.array([[0.2, 0.5], [0.3, 0.1]])
        model = TabularClickModel(matrix)
        assert np.array_equal(model.as_matrix(), matrix)


class TestSeparable:
    def test_product_form(self):
        model = SeparableClickModel(advertiser_factors=np.array([4.0, 3.0]),
                                    slot_factors=np.array([0.2, 0.1]))
        assert model.p_click(0, 1) == pytest.approx(0.8)
        assert model.p_click(1, 2) == pytest.approx(0.3)

    def test_matches_figure8(self):
        model = SeparableClickModel(advertiser_factors=np.array([4.0, 3.0]),
                                    slot_factors=np.array([0.2, 0.1]))
        assert np.allclose(model.as_matrix(), figure8_model().matrix)

    def test_products_above_one_rejected(self):
        with pytest.raises(ClickModelError):
            SeparableClickModel(advertiser_factors=np.array([4.0]),
                                slot_factors=np.array([0.5]))

    def test_negative_factors_rejected(self):
        with pytest.raises(ClickModelError):
            SeparableClickModel(advertiser_factors=np.array([-1.0]),
                                slot_factors=np.array([0.5]))


class TestPaperFigures:
    def test_figure7_values(self):
        model = figure7_model()
        assert model.p_click(0, 1) == 0.7  # Nike slot 1
        assert model.p_click(1, 2) == 0.3  # Adidas slot 2

    def test_figure8_values(self):
        model = figure8_model()
        assert model.p_click(0, 1) == 0.8
        assert model.p_click(0, 2) == 0.4
