"""Tests for probability estimation from interaction logs."""

import numpy as np
import pytest

from repro.lang.outcome import Allocation, Outcome
from repro.probability.click_models import TabularClickModel
from repro.probability.estimation import (
    InteractionLog,
    SmoothingPrior,
    estimate_click_model,
    estimate_purchase_model,
    estimation_error,
)


class TestLog:
    def test_record_counts(self):
        log = InteractionLog(2, 3)
        log.record(0, 1, clicked=True, purchased=True)
        log.record(0, 1, clicked=False, purchased=False)
        assert log.impressions[0, 0] == 2
        assert log.clicks[0, 0] == 1
        assert log.purchases[0, 0] == 1

    def test_purchase_without_click_rejected(self):
        log = InteractionLog(1, 1)
        with pytest.raises(ValueError):
            log.record(0, 1, clicked=False, purchased=True)

    def test_record_outcome(self):
        log = InteractionLog(3, 2)
        outcome = Outcome(
            allocation=Allocation(num_slots=2, slot_of={0: 1, 2: 2}),
            clicked=frozenset({2}))
        log.record_outcome(outcome)
        assert log.impressions[0, 0] == 1
        assert log.impressions[2, 1] == 1
        assert log.clicks[2, 1] == 1

    def test_merge(self):
        a = InteractionLog(1, 1)
        b = InteractionLog(1, 1)
        a.record(0, 1, clicked=True, purchased=False)
        b.record(0, 1, clicked=False, purchased=False)
        a.merge(b)
        assert a.impressions[0, 0] == 2
        assert a.clicks[0, 0] == 1

    def test_merge_shape_mismatch(self):
        with pytest.raises(ValueError):
            InteractionLog(1, 1).merge(InteractionLog(2, 1))


class TestEstimation:
    def test_converges_to_truth(self, rng):
        truth = TabularClickModel(rng.uniform(0.2, 0.8, size=(3, 2)))
        log = InteractionLog(3, 2)
        for _ in range(6000):
            for advertiser in range(3):
                slot_index = int(rng.integers(1, 3))
                clicked = rng.random() < truth.p_click(advertiser,
                                                       slot_index)
                log.record(advertiser, slot_index, clicked, False)
        estimated = estimate_click_model(log)
        assert estimation_error(estimated, truth) < 0.06

    def test_unseen_cells_get_prior(self):
        log = InteractionLog(1, 1)
        prior = SmoothingPrior(click_alpha=1, click_beta=9)
        model = estimate_click_model(log, prior)
        assert model.p_click(0, 1) == pytest.approx(0.1)

    def test_purchase_estimation(self):
        log = InteractionLog(1, 1)
        for _ in range(100):
            log.record(0, 1, clicked=True, purchased=True)
        model = estimate_purchase_model(log)
        assert model.p_purchase_given_click(0, 1) > 0.9

    def test_negative_prior_rejected(self):
        with pytest.raises(ValueError):
            SmoothingPrior(click_alpha=-1)

    def test_estimates_are_valid_probabilities(self, rng):
        log = InteractionLog(2, 2)
        for _ in range(50):
            log.record(int(rng.integers(2)), int(rng.integers(1, 3)),
                       clicked=bool(rng.random() < 0.5), purchased=False)
        model = estimate_click_model(log)
        assert np.all((model.matrix >= 0) & (model.matrix <= 1))
