"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSimulate:
    def test_prints_summary(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        code = main(["simulate", "--advertisers", "20",
                     "--auctions", "10", "--slots", "3",
                     "--keywords", "2", "--trace", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "auctions=10" in out
        assert "provider revenue" in out
        assert trace.exists()
        assert len(trace.read_text().strip().splitlines()) == 10

    def test_rhtalu_method(self, capsys):
        code = main(["simulate", "--advertisers", "20",
                     "--auctions", "5", "--slots", "3",
                     "--keywords", "2", "--method", "rhtalu"])
        assert code == 0
        assert "auctions=5" in capsys.readouterr().out


class TestValidate:
    def test_agreement_self_check(self, capsys):
        code = main(["validate", "--trials", "5"])
        assert code == 0
        assert "OK" in capsys.readouterr().out


class TestSql:
    def test_executes_statements(self, capsys):
        code = main(["sql",
                     "CREATE TABLE T (x INT);"
                     "INSERT INTO T VALUES (2), (1);"
                     "SELECT x FROM T ORDER BY x;"])
        assert code == 0
        out = capsys.readouterr().out
        assert "-- 2 row(s) affected" in out
        assert out.strip().endswith("1\n2".replace("\n", "\n"))

    def test_reports_errors(self, capsys):
        code = main(["sql", "SELECT nope FROM missing;"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_null_rendering(self, capsys):
        code = main(["sql",
                     "CREATE TABLE T (x INT); "
                     "INSERT INTO T (x) VALUES (NULL); "
                     "SELECT x FROM T;"])
        assert code == 0
        assert "NULL" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
