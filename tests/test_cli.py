"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSimulate:
    def test_prints_summary(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        code = main(["simulate", "--advertisers", "20",
                     "--auctions", "10", "--slots", "3",
                     "--keywords", "2", "--trace", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "auctions=10" in out
        assert "provider revenue" in out
        assert trace.exists()
        assert len(trace.read_text().strip().splitlines()) == 10

    def test_rhtalu_method(self, capsys):
        code = main(["simulate", "--advertisers", "20",
                     "--auctions", "5", "--slots", "3",
                     "--keywords", "2", "--method", "rhtalu"])
        assert code == 0
        assert "auctions=5" in capsys.readouterr().out

    def test_rhtalu_batch_matches_sequential(self, capsys):
        args = ["simulate", "--advertisers", "20", "--auctions", "10",
                "--slots", "3", "--keywords", "2", "--method", "rhtalu"]
        assert main(args) == 0
        sequential_out = capsys.readouterr().out
        assert main(args + ["--batch"]) == 0
        batch_out = capsys.readouterr().out
        assert (sequential_out.split("eval=")[0]
                == batch_out.split("eval=")[0])


class TestSimulateWorkers:
    def test_sharded_matches_sequential(self, capsys):
        base = ["simulate", "--advertisers", "21", "--auctions", "12",
                "--slots", "3", "--keywords", "2"]
        assert main(base) == 0
        sequential_out = capsys.readouterr().out
        assert main(base + ["--workers", "2"]) == 0
        sharded_out = capsys.readouterr().out
        assert "sharded over 2 worker processes" in sharded_out
        # Same decision totals; timing lines legitimately differ.
        assert (sequential_out.split("eval=")[0]
                in sharded_out)

    def test_sharded_writes_traces(self, capsys, tmp_path):
        trace = tmp_path / "sharded.jsonl"
        code = main(["simulate", "--advertisers", "15",
                     "--auctions", "8", "--slots", "3",
                     "--keywords", "2", "--workers", "3",
                     "--trace", str(trace)])
        assert code == 0
        assert len(trace.read_text().strip().splitlines()) == 8


class TestBenchThroughputWorkers:
    def test_sharded_comparison_is_identical(self, capsys):
        code = main(["bench-throughput", "--advertisers", "40",
                     "--auctions", "15", "--slots", "3",
                     "--keywords", "2", "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sharded-2w" in out
        assert "critical-path" in out
        assert "results identical: True" in out


class TestSimulateBatch:
    def test_batch_matches_sequential(self, capsys):
        code = main(["simulate", "--advertisers", "20",
                     "--auctions", "10", "--slots", "3",
                     "--keywords", "2"])
        assert code == 0
        sequential_out = capsys.readouterr().out
        code = main(["simulate", "--advertisers", "20",
                     "--auctions", "10", "--slots", "3",
                     "--keywords", "2", "--batch"])
        assert code == 0
        batch_out = capsys.readouterr().out
        # Same revenue/click totals; timing lines legitimately differ.
        assert (sequential_out.split("eval=")[0]
                == batch_out.split("eval=")[0])


class TestBenchThroughput:
    def test_reports_and_writes_profiles(self, capsys, tmp_path):
        code = main(["bench-throughput", "--advertisers", "30",
                     "--auctions", "20", "--slots", "3",
                     "--keywords", "2", "--profile-dir",
                     str(tmp_path / "profiles")])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "results identical: True" in out
        written = sorted(p.name for p in (tmp_path / "profiles").iterdir())
        assert written == ["rh_n30_batched.json",
                           "rh_n30_sequential.json",
                           "rh_n30_throughput.json"]

    def test_rhtalu_method_batches(self, capsys, tmp_path):
        """The lazy path is a first-class bench-throughput method."""
        code = main(["bench-throughput", "--advertisers", "30",
                     "--auctions", "20", "--slots", "3",
                     "--keywords", "2", "--method", "rhtalu",
                     "--profile-dir", str(tmp_path / "profiles")])
        assert code == 0
        out = capsys.readouterr().out
        assert "method=rhtalu" in out
        assert "results identical: True" in out
        written = sorted(p.name
                         for p in (tmp_path / "profiles").iterdir())
        assert written == ["rhtalu_n30_batched.json",
                           "rhtalu_n30_sequential.json",
                           "rhtalu_n30_throughput.json"]

    def test_min_speedup_can_fail(self, capsys, tmp_path):
        # An absurd bar must trip the failure exit path.
        code = main(["bench-throughput", "--advertisers", "10",
                     "--auctions", "5", "--slots", "2",
                     "--keywords", "2", "--min-speedup", "1e9"])
        assert code == 1
        assert "below" in capsys.readouterr().err


class TestValidate:
    def test_agreement_self_check(self, capsys):
        code = main(["validate", "--trials", "5"])
        assert code == 0
        assert "OK" in capsys.readouterr().out


class TestSql:
    def test_executes_statements(self, capsys):
        code = main(["sql",
                     "CREATE TABLE T (x INT);"
                     "INSERT INTO T VALUES (2), (1);"
                     "SELECT x FROM T ORDER BY x;"])
        assert code == 0
        out = capsys.readouterr().out
        assert "-- 2 row(s) affected" in out
        assert out.strip().endswith("1\n2".replace("\n", "\n"))

    def test_reports_errors(self, capsys):
        code = main(["sql", "SELECT nope FROM missing;"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_null_rendering(self, capsys):
        code = main(["sql",
                     "CREATE TABLE T (x INT); "
                     "INSERT INTO T (x) VALUES (NULL); "
                     "SELECT x FROM T;"])
        assert code == 0
        assert "NULL" in capsys.readouterr().out


class TestStream:
    ARGS = ["stream", "--advertisers", "30", "--events", "80",
            "--slots", "3", "--keywords", "2", "--churn-rate", "0.25",
            "--min-active", "4"]

    def test_runs_and_reports(self, capsys):
        code = main(self.ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "stream:" in out
        assert "provider revenue" in out
        assert "active advertisers at end" in out
        assert "query" in out

    def test_sharded_stream(self, capsys):
        code = main(self.ARGS + ["--workers", "2"])
        assert code == 0
        assert "2 workers" in capsys.readouterr().out

    def test_supervise_needs_workers(self, capsys):
        code = main(self.ARGS + ["--supervise"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_supervised_unfailed_run_reports_no_heals(self, capsys):
        code = main(self.ARGS + ["--workers", "2", "--supervise",
                                 "--round-timeout", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 workers" in out
        # The supervision summary line only appears when a worker
        # actually failed.
        assert "supervision:" not in out

    def test_observability_sidecars_and_report(self, capsys,
                                               tmp_path):
        metrics = tmp_path / "metrics.jsonl"
        spans = tmp_path / "spans.jsonl"
        code = main(self.ARGS + ["--batch-window", "4",
                                 "--metrics-out", str(metrics),
                                 "--trace-spans", str(spans),
                                 "--metrics-every", "25"])
        assert code == 0
        out = capsys.readouterr().out
        assert "metrics written to" in out
        assert "span trace written to" in out
        from repro.obs import validate_metrics_file, validate_trace_file
        assert validate_metrics_file(metrics) == []
        assert validate_trace_file(spans) == []
        code = main(["obs", "report", "--metrics", str(metrics),
                     "--trace", str(spans), "--top", "3"])
        assert code == 0
        report = capsys.readouterr().out
        assert "counters" in report
        assert "root spans" in report
        assert "slowest" in report

    def test_obs_report_needs_an_input(self, capsys):
        code = main(["obs", "report"])
        assert code == 2
        assert "--metrics" in capsys.readouterr().err

    def test_obs_flags_exclude_snapshot_at(self, capsys, tmp_path):
        code = main(self.ARGS + ["--snapshot-at", "10",
                                 "--metrics-out",
                                 str(tmp_path / "m.jsonl")])
        assert code == 2
        assert "--snapshot-at" in capsys.readouterr().err

    def test_rebuild_maintenance_matches_incremental(self, capsys):
        main(self.ARGS + ["--method", "rhtalu"])
        first = capsys.readouterr().out
        main(self.ARGS + ["--method", "rhtalu",
                          "--maintenance", "rebuild"])
        second = capsys.readouterr().out
        pick = [line for line in first.splitlines()
                if line.startswith("auctions:")]
        assert pick == [line for line in second.splitlines()
                        if line.startswith("auctions:")]

    def test_snapshot_resume(self, capsys, tmp_path):
        snap = tmp_path / "snap.json"
        code = main(self.ARGS + ["--snapshot-at", "40",
                                 "--snapshot-file", str(snap)])
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed from snapshot" in out
        assert snap.exists()
        # Uninterrupted run must report the same totals, and the
        # per-event timing table must cover the whole spliced stream
        # (head + tail), not just the post-restore segment.
        main(self.ARGS)
        uninterrupted = capsys.readouterr().out

        def event_counts(text):
            counts = {}
            for line in text.splitlines():
                parts = line.split()
                if (line.startswith("  ") and len(parts) >= 3
                        and parts[2] == "events"):
                    counts[parts[0].rstrip(":")] = int(parts[1])
            return counts

        assert [line for line in out.splitlines()
                if line.startswith("auctions:")] \
            == [line for line in uninterrupted.splitlines()
                if line.startswith("auctions:")]
        assert event_counts(out) == event_counts(uninterrupted)
        assert sum(event_counts(out).values()) == 80 + 15


    def test_replay_reproduces_the_recorded_trace(self, capsys,
                                                  tmp_path):
        from repro.stream.replay import diff_trace_files

        events = tmp_path / "events.jsonl"
        first_trace = tmp_path / "first.jsonl"
        second_trace = tmp_path / "second.jsonl"
        args = self.ARGS + ["--budget-low", "4",
                            "--budget-high", "25"]
        code = main(args + ["--record-events", str(events),
                            "--trace", str(first_trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "budget lifecycle:" in out
        assert events.exists() and first_trace.exists()
        # Replay the captured log (service knobs match) and hold the
        # two traces to each other: the acceptance criterion is an
        # empty diff, with the lifecycle active in the stream.
        code = main(self.ARGS + ["--replay", str(events),
                                 "--trace", str(second_trace)])
        assert code == 0
        assert "replaying" in capsys.readouterr().out
        diff = diff_trace_files(first_trace, second_trace)
        assert diff.identical, diff.format_report()

    def test_replay_on_workers_matches_in_process(self, capsys,
                                                  tmp_path):
        events = tmp_path / "events.jsonl"
        first_trace = tmp_path / "first.jsonl"
        second_trace = tmp_path / "second.jsonl"
        main(self.ARGS + ["--budget-low", "4", "--budget-high", "25",
                          "--record-events", str(events),
                          "--trace", str(first_trace)])
        code = main(self.ARGS + ["--replay", str(events),
                                 "--workers", "2",
                                 "--trace", str(second_trace)])
        capsys.readouterr()
        assert code == 0
        from repro.stream.replay import diff_trace_files

        assert diff_trace_files(first_trace, second_trace).identical


class TestDurableStream:
    ARGS = TestStream.ARGS + ["--budget-low", "4",
                              "--budget-high", "25"]

    def test_journal_checkpoint_recover_roundtrip(self, capsys,
                                                  tmp_path):
        """The runbook flow: record, serve durably, recover onto a
        different worker count, audit the aligned traces."""
        from repro.auction.trace import read_trace
        from repro.stream.replay import align_traces, diff_traces

        events = tmp_path / "events.jsonl"
        baseline_trace = tmp_path / "baseline.jsonl"
        recovered_trace = tmp_path / "recovered.jsonl"
        journal = tmp_path / "journal.jsonl"
        checkpoints = tmp_path / "checkpoints"

        assert main(self.ARGS + ["--record-events", str(events),
                                 "--trace", str(baseline_trace)]) == 0
        capsys.readouterr()
        assert main(self.ARGS + ["--replay", str(events),
                                 "--journal", str(journal),
                                 "--checkpoint-every", "20",
                                 "--checkpoint-dir",
                                 str(checkpoints)]) == 0
        out = capsys.readouterr().out
        assert "fsync'd" in out
        assert "checkpoints: every 20" in out
        assert journal.exists()
        assert list(checkpoints.iterdir())

        assert main(["recover", "--journal", str(journal),
                     "--checkpoint-dir", str(checkpoints),
                     "--workers", "2",
                     "--resume-events", str(events),
                     "--trace", str(recovered_trace)]) == 0
        out = capsys.readouterr().out
        assert "checkpoint:" in out
        assert "recovered watermark:" in out
        assert recovered_trace.exists()
        aligned, candidate = align_traces(
            read_trace(baseline_trace), read_trace(recovered_trace))
        assert candidate
        diff = diff_traces(aligned, candidate)
        assert diff.identical, diff.format_report()

    def test_journal_excludes_one_shot_snapshot(self, capsys,
                                                tmp_path):
        code = main(self.ARGS + ["--journal",
                                 str(tmp_path / "j.jsonl"),
                                 "--snapshot-at", "10"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_checkpoint_every_needs_a_directory(self, capsys,
                                                tmp_path):
        code = main(self.ARGS + ["--journal",
                                 str(tmp_path / "j.jsonl"),
                                 "--checkpoint-every", "10"])
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_recover_reports_failure_cleanly(self, capsys,
                                             tmp_path):
        code = main(["recover", "--journal",
                     str(tmp_path / "missing.jsonl")])
        assert code == 1
        assert "recovery failed" in capsys.readouterr().err


class TestBenchChurn:
    def test_incremental_vs_rebuild_gate(self, capsys):
        code = main(["bench-throughput", "--advertisers", "40",
                     "--auctions", "60", "--slots", "3",
                     "--keywords", "2", "--churn-rate", "0.3",
                     "--method", "rhtalu"])
        assert code == 0
        out = capsys.readouterr().out
        assert "incremental" in out and "rebuild" in out
        assert "results identical: True" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
