"""Tests for offline trace analysis."""

import pytest

from repro.auction import AuctionEngine, EngineConfig
from repro.auction.analysis import (
    advertiser_reports,
    keyword_mix,
    pacing_audit,
    revenue_curve,
    slot_fill_rate,
)
from repro.workloads import PaperWorkload, PaperWorkloadConfig


@pytest.fixture(scope="module")
def trace():
    workload = PaperWorkload(PaperWorkloadConfig(
        num_advertisers=20, num_slots=4, num_keywords=3, seed=17))
    engine = AuctionEngine(
        click_model=workload.click_model(),
        purchase_model=workload.purchase_model(),
        query_source=workload.query_source(),
        config=EngineConfig(num_slots=4, method="rh", seed=18),
        programs=workload.build_programs())
    records = engine.run(150)
    return workload, engine, records


class TestAdvertiserReports:
    def test_matches_engine_accounts(self, trace):
        _, engine, records = trace
        reports = advertiser_reports(records)
        for advertiser, report in reports.items():
            account = engine.accounts.account(advertiser)
            assert report.impressions == account.impressions
            assert report.clicks == account.clicks
            assert report.spend == pytest.approx(account.charged)

    def test_slot_histogram_sums_to_impressions(self, trace):
        _, _, records = trace
        for report in advertiser_reports(records).values():
            assert sum(report.slots_held.values()) == report.impressions

    def test_derived_rates(self, trace):
        _, _, records = trace
        for report in advertiser_reports(records).values():
            assert 0.0 <= report.click_through_rate <= 1.0
            if report.impressions:
                assert 1.0 <= report.average_position <= 4.0


class TestRevenueCurve:
    def test_cumulative_and_monotone(self, trace):
        _, _, records = trace
        points = revenue_curve(records, every=10)
        assert len(points) == 15
        realized = [point.cumulative_realized for point in points]
        assert realized == sorted(realized)
        assert points[-1].cumulative_expected == pytest.approx(
            sum(r.expected_revenue for r in records))

    def test_every_validation(self, trace):
        _, _, records = trace
        with pytest.raises(ValueError):
            revenue_curve(records, every=0)


class TestMixAndFill:
    def test_keyword_mix_counts_all_auctions(self, trace):
        workload, _, records = trace
        mix = keyword_mix(records)
        assert sum(mix.values()) == len(records)
        assert set(mix) <= set(workload.keywords)

    def test_slot_fill_rates(self, trace):
        _, _, records = trace
        fill = slot_fill_rate(records)
        assert set(fill) == {1, 2, 3, 4}
        for rate in fill.values():
            assert 0.0 <= rate <= 1.0
        # The top slot is essentially always worth filling.
        assert fill[1] > 0.9

    def test_empty_trace(self):
        assert slot_fill_rate([]) == {}
        assert keyword_mix([]) == {}
        assert pacing_audit([], {0: 1.0}) == []


class TestPacingAudit:
    def test_audit_against_workload_targets(self, trace):
        workload, _, records = trace
        targets = {advertiser: float(workload.targets[advertiser])
                   for advertiser in range(20)}
        audits = pacing_audit(records, targets)
        assert len(audits) == 20
        for audit in audits:
            assert audit.spend_rate >= 0.0
            assert (audit.utilisation > 1.0) == audit.overspending
        # The pacing heuristic keeps most advertisers at or below target.
        overspenders = sum(1 for audit in audits if audit.overspending)
        assert overspenders <= len(audits) // 2
