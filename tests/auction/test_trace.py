"""Tests for auction-trace persistence."""

import pytest

from repro.auction import (
    AuctionEngine,
    EngineConfig,
    read_trace,
    record_from_dict,
    record_to_dict,
    summarize,
    write_trace,
)
from repro.workloads import PaperWorkload, PaperWorkloadConfig


def _run(tmp_path, auctions=25):
    workload = PaperWorkload(PaperWorkloadConfig(
        num_advertisers=15, num_slots=3, num_keywords=2, seed=3))
    engine = AuctionEngine(
        click_model=workload.click_model(),
        purchase_model=workload.purchase_model(),
        query_source=workload.query_source(),
        config=EngineConfig(num_slots=3, method="rh", seed=4),
        programs=workload.build_programs())
    records = engine.run(auctions)
    path = tmp_path / "trace.jsonl"
    assert write_trace(path, records) == auctions
    return records, path


class TestRoundTrip:
    def test_records_round_trip(self, tmp_path):
        records, path = _run(tmp_path)
        loaded = list(read_trace(path))
        assert len(loaded) == len(records)
        for original, restored in zip(records, loaded):
            assert restored.auction_id == original.auction_id
            assert restored.keyword == original.keyword
            assert restored.allocation == original.allocation
            assert restored.outcome.clicked == original.outcome.clicked
            assert restored.outcome.purchased == \
                original.outcome.purchased
            assert restored.expected_revenue == pytest.approx(
                original.expected_revenue)
            assert restored.prices == pytest.approx(original.prices)

    def test_summaries_match(self, tmp_path):
        records, path = _run(tmp_path)
        original = summarize(records)
        restored = summarize(list(read_trace(path)))
        assert restored.total_expected_revenue == pytest.approx(
            original.total_expected_revenue)
        assert restored.total_clicks == original.total_clicks

    def test_dict_round_trip_is_stable(self, tmp_path):
        records, _ = _run(tmp_path, auctions=3)
        for record in records:
            once = record_to_dict(record)
            twice = record_to_dict(record_from_dict(once))
            assert once == twice

    def test_blank_lines_ignored(self, tmp_path):
        records, path = _run(tmp_path, auctions=2)
        content = path.read_text()
        path.write_text("\n" + content.replace("\n", "\n\n"))
        assert len(list(read_trace(path))) == 2
