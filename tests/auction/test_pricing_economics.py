"""Economic sanity properties of the pricing rules.

The paper motivates GSP/Vickrey by their game-theoretic behaviour
(stability, envy-freeness).  These tests check the textbook properties
in the classic setting where they are theorems — separable click
probabilities, single-feature bids — plus general monotonicity/sanity
properties on arbitrary instances.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auction.pricing import GeneralizedSecondPrice, VickreyPricing
from repro.matching.hungarian import max_weight_matching


def _classic_instance(bids, ctrs):
    """Separable, advertiser-uniform CTRs: the canonical GSP setting."""
    bids = np.asarray(bids, dtype=float)
    ctrs = np.asarray(ctrs, dtype=float)
    probs = np.tile(ctrs, (len(bids), 1))
    weights = probs * bids[:, None]
    matching = max_weight_matching(weights)
    return weights, bids, probs, matching


class TestGspClassicCharacterisation:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(0.1, 50.0, allow_nan=False), min_size=2,
                    max_size=8, unique=True),
           st.integers(1, 4))
    def test_slot_j_pays_the_next_highest_bid(self, bid_list, k):
        """In the classic setting (advertiser-uniform, decreasing slot
        CTRs; distinct bids) our generalisation collapses to textbook
        GSP: the j-th highest bidder wins slot j and pays the (j+1)-th
        highest bid per click (0 for the last slot if nobody is left).

        Note GSP is *not* envy-free for arbitrary bid profiles — only
        its equilibria are (Edelman et al.); we therefore test the price
        characterisation, not envy-freeness.
        """
        ctrs = np.sort(np.random.default_rng(1).uniform(
            0.05, 0.9, size=k))[::-1]
        weights, bids, probs, matching = _classic_instance(bid_list, ctrs)
        quotes = GeneralizedSecondPrice().quote(weights, bids, probs,
                                                matching)
        ranked = sorted(bids, reverse=True)
        for quote in quotes:
            slot_rank = quote.slot  # slot j holds the j-th highest bid
            assert bids[quote.advertiser] == pytest.approx(
                ranked[slot_rank - 1])
            next_bid = (ranked[slot_rank]
                        if slot_rank < len(ranked) else 0.0)
            assert quote.per_click == pytest.approx(next_bid, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(0.1, 50.0, allow_nan=False), min_size=2,
                    max_size=8))
    def test_prices_decrease_down_the_page(self, bid_list):
        ctrs = np.array([0.6, 0.4, 0.25, 0.1])
        weights, bids, probs, matching = _classic_instance(bid_list, ctrs)
        quotes = GeneralizedSecondPrice().quote(weights, bids, probs,
                                                matching)
        prices = [quote.per_click
                  for quote in sorted(quotes, key=lambda q: q.slot)]
        for higher, lower in zip(prices, prices[1:]):
            assert higher >= lower - 1e-9


class TestVcgIndividualRationality:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_winners_never_pay_more_than_their_gain(self, seed):
        rng = np.random.default_rng(seed)
        n, k = int(rng.integers(2, 8)), int(rng.integers(1, 4))
        bids = rng.uniform(0, 20, size=n)
        probs = rng.uniform(0.05, 0.95, size=(n, k))
        weights = probs * bids[:, None]
        matching = max_weight_matching(weights)
        for quote in VickreyPricing().quote(weights, bids, probs,
                                            matching):
            gain = weights[quote.advertiser, quote.slot - 1]
            assert quote.per_impression <= gain + 1e-9
            assert quote.per_impression >= -1e-12

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_vcg_revenue_below_pay_your_bid(self, seed):
        """VCG never extracts more than the winners' declared value."""
        rng = np.random.default_rng(seed)
        n, k = int(rng.integers(2, 7)), int(rng.integers(1, 4))
        bids = rng.uniform(0, 20, size=n)
        probs = rng.uniform(0.05, 0.95, size=(n, k))
        weights = probs * bids[:, None]
        matching = max_weight_matching(weights)
        vcg_total = sum(q.per_impression
                        for q in VickreyPricing().quote(
                            weights, bids, probs, matching))
        assert vcg_total <= matching.total_weight + 1e-9


class TestGspVsVcg:
    def test_gsp_revenue_weakly_above_vcg_in_classic_case(self):
        """The classic ordering: GSP expected revenue >= VCG revenue
        (Edelman et al.); spot-check it on a concrete instance."""
        weights, bids, probs, matching = _classic_instance(
            [10.0, 7.0, 4.0, 2.0], [0.5, 0.3, 0.15])
        gsp = GeneralizedSecondPrice().quote(weights, bids, probs,
                                             matching)
        vcg = VickreyPricing().quote(weights, bids, probs, matching)
        gsp_expected = sum(
            quote.per_click * probs[quote.advertiser, quote.slot - 1]
            for quote in gsp)
        vcg_expected = sum(quote.per_impression for quote in vcg)
        assert gsp_expected >= vcg_expected - 1e-9
