"""Tests for run summaries and auction records."""

import pytest

from repro.auction.events import AuctionRecord
from repro.auction.metrics import summarize
from repro.lang.outcome import Allocation, Outcome


def _record(auction_id, expected, realized, eval_s, wd_s,
            clicked=frozenset()):
    allocation = Allocation(num_slots=2, slot_of={0: 1})
    return AuctionRecord(
        auction_id=auction_id, keyword="kw", allocation=allocation,
        outcome=Outcome(allocation=allocation, clicked=clicked),
        expected_revenue=expected, realized_revenue=realized,
        eval_seconds=eval_s, wd_seconds=wd_s, num_candidates=1)


class TestSummarize:
    def test_empty(self):
        summary = summarize([])
        assert summary.auctions == 0
        assert summary.total_expected_revenue == 0.0

    def test_aggregation(self):
        records = [
            _record(1, 10.0, 8.0, 0.001, 0.002,
                    clicked=frozenset({0})),
            _record(2, 20.0, 0.0, 0.003, 0.004),
        ]
        summary = summarize(records)
        assert summary.auctions == 2
        assert summary.total_expected_revenue == 30.0
        assert summary.total_realized_revenue == 8.0
        assert summary.total_clicks == 1
        assert summary.total_impressions == 2
        assert summary.mean_eval_ms == pytest.approx(2.0)
        assert summary.mean_wd_ms == pytest.approx(3.0)
        assert summary.mean_total_ms == pytest.approx(5.0)

    def test_str_is_informative(self):
        summary = summarize([_record(1, 10.0, 8.0, 0.001, 0.002)])
        text = str(summary)
        assert "auctions=1" in text
        assert "expected_rev=10.00" in text


class TestAuctionRecord:
    def test_total_seconds(self):
        record = _record(1, 1.0, 1.0, 0.25, 0.5)
        assert record.total_seconds == pytest.approx(0.75)
