"""Settlement extraction and parallel-WD stats surfacing."""

from __future__ import annotations

import pytest

from repro.auction.engine import AuctionEngine, EngineConfig
from repro.auction.settlement import AuctionSettler
from repro.auction.trace import record_from_dict, record_to_dict
from repro.bench import aggregate_wd_stats, records_identical
from repro.workloads import PaperWorkload, PaperWorkloadConfig

CONFIG = PaperWorkloadConfig(num_advertisers=30, num_slots=5,
                             num_keywords=4, seed=3)


def build_engine(method="rh", wd_leaves=None, engine_seed=7):
    workload = PaperWorkload(CONFIG)
    return AuctionEngine(
        click_model=workload.click_model(),
        purchase_model=workload.purchase_model(),
        query_source=workload.query_source(),
        programs=workload.build_programs(),
        config=EngineConfig(num_slots=CONFIG.num_slots, method=method,
                            seed=engine_seed, wd_leaves=wd_leaves))


class TestSettlerSharing:
    def test_engine_owns_one_settler(self):
        engine = build_engine()
        assert isinstance(engine.settler, AuctionSettler)
        assert engine.settler.accounts is engine.accounts
        assert engine.settler.rng is engine.rng
        assert engine.settler.pricing is engine.pricing

    def test_serial_records_have_no_wd_stats(self):
        engine = build_engine()
        assert all(r.wd_stats is None for r in engine.run(10))


class TestWdLeaves:
    def test_tree_wd_is_bit_identical_to_rh(self):
        plain = build_engine().run(40)
        tree = build_engine(wd_leaves=4).run(40)
        assert records_identical(plain, tree)

    def test_tree_wd_batched_matches_too(self):
        plain = build_engine().run(40)
        tree = build_engine(wd_leaves=4).run_batch(40)
        assert records_identical(plain, tree)

    def test_stats_reach_records_and_profiles(self):
        records = build_engine(wd_leaves=4).run(12)
        for record in records:
            assert record.wd_stats is not None
            assert record.wd_stats["num_leaves"] == 4
            assert record.wd_stats["leaf_work_max"] > 0
        aggregate = aggregate_wd_stats(records)
        assert aggregate["auctions"] == 12
        assert aggregate["num_leaves"] == 4
        assert (aggregate["critical_path_max"]
                >= aggregate["leaf_work_max"])

    def test_aggregate_is_none_without_stats(self):
        assert aggregate_wd_stats(build_engine().run(3)) is None

    def test_wd_stats_round_trip_through_traces(self):
        record = build_engine(wd_leaves=2).run(1)[0]
        restored = record_from_dict(record_to_dict(record))
        assert restored.wd_stats == record.wd_stats

    def test_wd_leaves_rejected_for_other_methods(self):
        # Silently ignoring the setting would hide the misconfiguration
        # until someone notices wd_stats is absent from the artifacts.
        with pytest.raises(ValueError, match="wd_leaves"):
            build_engine(method="hungarian", wd_leaves=4)
        with pytest.raises(ValueError, match="wd_leaves"):
            build_engine(wd_leaves=0)


class TestSettlerDirect:
    def test_missing_winner_notifications_raise_nothing(self):
        # The settler notifies exactly the quoted winners; an auction
        # with no winners settles cleanly with empty prices.
        import numpy as np

        from repro.matching.types import MatchingResult
        from repro.strategies.base import Query

        engine = build_engine()
        record = engine.settler.settle(
            auction_id=99, query=Query(text="kw0", relevance={}),
            slot_of={}, matching=MatchingResult(pairs=(),
                                                total_weight=0.0),
            expected_revenue=0.0,
            weights=np.zeros((CONFIG.num_advertisers,
                              CONFIG.num_slots)),
            bids=np.zeros(CONFIG.num_advertisers),
            eval_seconds=0.0, wd_seconds=0.0, num_candidates=0,
            notify_fn=lambda *args: pytest.fail("no winners to notify"))
        assert record.prices == {}
        assert record.realized_revenue == 0.0
