"""Tests for pricing rules (GSP generalisation, VCG, pay-your-bid)."""

import numpy as np
import pytest

from repro.auction.pricing import (
    GeneralizedSecondPrice,
    PayYourBid,
    SlotListSecondPrice,
    VickreyPricing,
)
from repro.matching.hungarian import max_weight_matching
from repro.matching.reduction import top_k_for_slot


def _setup(bids, click_probs):
    bids = np.asarray(bids, dtype=float)
    click_probs = np.asarray(click_probs, dtype=float)
    weights = click_probs * bids[:, None]
    matching = max_weight_matching(weights)
    return weights, bids, click_probs, matching


class TestGsp:
    def test_classic_separable_case(self):
        # Separable CTRs + click bids: GSP price of slot j is the next
        # bidder's score / own CTR — the textbook formula.
        bids = [10.0, 6.0, 4.0]
        ctr = np.outer([1.0, 1.0, 1.0], [0.5, 0.25])
        weights, bid_vec, probs, matching = _setup(bids, ctr)
        quotes = GeneralizedSecondPrice().quote(weights, bid_vec, probs,
                                                matching)
        by_slot = {quote.slot: quote for quote in quotes}
        # Slot 1 (advertiser 0): rival best is advertiser 1's score in
        # slot 1: 6 * 0.5 = 3 -> price 3 / 0.5 = 6 = next bid.
        assert by_slot[1].per_click == pytest.approx(6.0)
        # Slot 2 (advertiser 1): rival is advertiser 2: 4*0.25/0.25 = 4.
        assert by_slot[2].per_click == pytest.approx(4.0)

    def test_price_never_exceeds_bid(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            n, k = int(rng.integers(2, 8)), int(rng.integers(1, 4))
            bids = rng.uniform(0, 10, size=n)
            probs = rng.uniform(0.1, 0.9, size=(n, k))
            weights, bid_vec, probs, matching = _setup(bids, probs)
            for quote in GeneralizedSecondPrice().quote(
                    weights, bid_vec, probs, matching):
                assert 0.0 <= quote.per_click <= bids[quote.advertiser] + 1e-9

    def test_no_rival_means_free(self):
        weights, bids, probs, matching = _setup([5.0], [[0.5]])
        quotes = GeneralizedSecondPrice().quote(weights, bids, probs,
                                                matching)
        assert quotes[0].per_click == 0.0

    def test_zero_ctr_charges_nothing(self):
        quotes = GeneralizedSecondPrice().quote(
            np.array([[1.0]]), np.array([2.0]), np.array([[0.0]]),
            max_weight_matching(np.array([[1.0]])))
        assert quotes[0].per_click == 0.0


def _slot_lists(weights, depth):
    """Per-slot descending (values, ids) top lists, repo tie rule."""
    values, ids = [], []
    for col in range(weights.shape[1]):
        top = top_k_for_slot(weights[:, col], depth, backend="numpy")
        ids.append(np.asarray(top, dtype=np.int64))
        values.append(weights[top, col] if top else np.empty(0))
    return values, ids


class TestSlotListGsp:
    """The distributed GSP must equal the full-matrix GSP exactly."""

    def assert_quotes_equal(self, weights, bids, probs, matching):
        full = GeneralizedSecondPrice().quote(weights, bids, probs,
                                              matching)
        values, ids = _slot_lists(weights,
                                  depth=weights.shape[1] + 1)
        listed = SlotListSecondPrice.quote_from_lists(
            values, ids, bids, probs, matching)
        assert listed == full  # dataclass equality: exact floats

    def test_matches_on_random_instances(self, rng):
        for _ in range(50):
            n = int(rng.integers(1, 30))
            k = int(rng.integers(1, 6))
            bids = rng.uniform(0, 10, size=n)
            probs = rng.uniform(0.1, 0.9, size=(n, k))
            weights, bid_vec, probs, matching = _setup(bids, probs)
            self.assert_quotes_equal(weights, bid_vec, probs, matching)

    def test_matches_with_zero_bid_ties(self, rng):
        # Zero bids produce whole tied-at-zero columns — the structural
        # tie case sharded runs must price identically.
        for _ in range(20):
            n, k = int(rng.integers(2, 12)), int(rng.integers(1, 5))
            bids = rng.uniform(0, 10, size=n)
            bids[rng.random(n) < 0.6] = 0.0
            probs = rng.uniform(0.1, 0.9, size=(n, k))
            weights, bid_vec, probs, matching = _setup(bids, probs)
            self.assert_quotes_equal(weights, bid_vec, probs, matching)

    def test_population_smaller_than_depth(self):
        # n < k + 1: lists cover everyone; exhausted rival scans mean
        # a zero rival price, as in the full-matrix rule.
        weights, bids, probs, matching = _setup(
            [3.0, 2.0], [[0.5, 0.4, 0.3], [0.5, 0.4, 0.3]])
        self.assert_quotes_equal(weights, bids, probs, matching)

    def test_depth_k_plus_one_is_necessary(self):
        # Why the runtime ships k+1-deep lists: with only k entries, a
        # column whose top-k are all excluded winners loses its true
        # rival (here k=1: the winner itself tops the list), while one
        # extra entry always retains it.
        weights = np.array([[10.0], [9.0], [1.0]])
        bids = np.array([10.0, 9.0, 1.0])
        probs = np.ones((3, 1))
        matching = max_weight_matching(weights)
        full = GeneralizedSecondPrice().quote(weights, bids, probs,
                                              matching)
        shallow_values, shallow_ids = _slot_lists(weights, depth=1)
        shallow = SlotListSecondPrice.quote_from_lists(
            shallow_values, shallow_ids, bids, probs, matching)
        assert shallow[0].per_click == 0.0  # rival lost
        assert full[0].per_click == 9.0
        deep_values, deep_ids = _slot_lists(weights, depth=2)
        deep = SlotListSecondPrice.quote_from_lists(
            deep_values, deep_ids, bids, probs, matching)
        assert deep == full


class TestVcg:
    def test_payments_bounded_by_gain(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            n, k = int(rng.integers(2, 7)), int(rng.integers(1, 4))
            bids = rng.uniform(0, 10, size=n)
            probs = rng.uniform(0.1, 0.9, size=(n, k))
            weights, bid_vec, probs, matching = _setup(bids, probs)
            for quote in VickreyPricing().quote(weights, bid_vec, probs,
                                                matching):
                gain = weights[quote.advertiser, quote.slot - 1]
                assert 0.0 <= quote.per_impression <= gain + 1e-9

    def test_lone_bidder_pays_nothing(self):
        weights, bids, probs, matching = _setup([5.0], [[0.5]])
        quotes = VickreyPricing().quote(weights, bids, probs, matching)
        assert quotes[0].per_impression == 0.0

    def test_externality_formula_two_bidders_one_slot(self):
        # Winner displaces the loser entirely: pays the loser's value.
        weights, bids, probs, matching = _setup([10.0, 4.0],
                                                [[0.5], [0.5]])
        quotes = VickreyPricing().quote(weights, bids, probs, matching)
        assert len(quotes) == 1
        assert quotes[0].per_impression == pytest.approx(2.0)  # 4 * 0.5


class TestPayYourBid:
    def test_quotes_own_bid(self):
        weights, bids, probs, matching = _setup([10.0, 4.0],
                                                [[0.5], [0.4]])
        quotes = PayYourBid().quote(weights, bids, probs, matching)
        assert quotes[0].per_click == 10.0
