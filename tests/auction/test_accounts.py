"""Tests for advertiser accounts and the user model."""

import numpy as np
import pytest

from repro.auction.accounts import AccountBook
from repro.auction.user_model import HeavyweightUserModel, UserModel
from repro.lang.outcome import Allocation
from repro.probability.click_models import TabularClickModel
from repro.probability.heavyweight import PenaltyHeavyweightClickModel
from repro.probability.purchase_models import (
    ConstantRatePurchaseModel,
    no_purchases,
)


class TestAccountBook:
    def test_charges_accumulate(self):
        book = AccountBook()
        book.charge(0, 2.0)
        book.charge(0, 3.0)
        book.charge(1, 1.0)
        assert book.account(0).charged == 5.0
        assert book.provider_revenue == 6.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            AccountBook().charge(0, -1.0)

    def test_rates(self):
        book = AccountBook()
        assert book.account(0).click_through_rate() == 0.0
        book.record_impression(0)
        book.record_impression(0)
        book.record_click(0)
        book.charge(0, 4.0)
        account = book.account(0)
        assert account.click_through_rate() == 0.5
        assert account.average_cost_per_click() == 4.0

    def test_totals(self):
        book = AccountBook()
        book.record_impression(0)
        book.record_impression(1)
        book.record_click(1)
        assert book.total_impressions() == 2
        assert book.total_clicks() == 1


class TestUserModel:
    def test_click_frequency_matches_model(self):
        click_model = TabularClickModel(np.array([[0.7]]))
        model = UserModel(click_model, no_purchases(1, 1))
        allocation = Allocation(num_slots=1, slot_of={0: 1})
        rng = np.random.default_rng(0)
        clicks = sum(0 in model.sample(allocation, rng).clicked
                     for _ in range(4000))
        assert clicks / 4000 == pytest.approx(0.7, abs=0.03)

    def test_purchases_require_clicks(self):
        click_model = TabularClickModel(np.array([[0.5]]))
        purchase_model = ConstantRatePurchaseModel(1, 1,
                                                   rate_given_click=0.8)
        model = UserModel(click_model, purchase_model)
        allocation = Allocation(num_slots=1, slot_of={0: 1})
        rng = np.random.default_rng(1)
        for _ in range(300):
            outcome = model.sample(allocation, rng)
            assert outcome.purchased <= outcome.clicked

    def test_empty_allocation(self):
        model = UserModel(TabularClickModel(np.array([[0.5]])),
                          no_purchases(1, 1))
        outcome = model.sample(Allocation(num_slots=1),
                               np.random.default_rng(0))
        assert outcome.clicked == frozenset()


class TestHeavyweightUserModel:
    def test_layout_depresses_clicks(self):
        base = TabularClickModel(np.full((2, 2), 0.8))
        click_model = PenaltyHeavyweightClickModel(base=base, penalty=0.2,
                                                   exempt=frozenset({0}))
        model = HeavyweightUserModel(click_model, no_purchases(2, 2),
                                     heavyweights=frozenset({0}))
        allocation = Allocation(num_slots=2, slot_of={0: 1, 1: 2})
        rng = np.random.default_rng(2)
        light_clicks = sum(
            1 in model.sample(allocation, rng).clicked
            for _ in range(3000))
        # Advertiser 1 sits below a heavyweight: 0.8 * 0.2 = 0.16.
        assert light_clicks / 3000 == pytest.approx(0.16, abs=0.03)

    def test_outcome_carries_heavyweights(self):
        base = TabularClickModel(np.full((1, 1), 0.5))
        click_model = PenaltyHeavyweightClickModel(base=base)
        model = HeavyweightUserModel(click_model, no_purchases(1, 1),
                                     heavyweights=frozenset({0}))
        outcome = model.sample(Allocation(num_slots=1, slot_of={0: 1}),
                               np.random.default_rng(0))
        assert outcome.heavyweights == frozenset({0})
