"""Integration tests for the auction engine."""

import numpy as np
import pytest

from repro.auction import (
    AuctionEngine,
    EngineConfig,
    PayYourBid,
    VickreyPricing,
    extract_click_bids,
    summarize,
)
from repro.lang.bids import BidsTable
from repro.strategies.library import FixedBidProgram, TopOrNothingProgram
from repro.workloads import PaperWorkload, PaperWorkloadConfig


def build_engine(method, n=30, seed=5, wl_seed=2, num_slots=4,
                 num_keywords=3, **engine_kwargs):
    workload = PaperWorkload(PaperWorkloadConfig(
        num_advertisers=n, num_slots=num_slots,
        num_keywords=num_keywords, seed=wl_seed))
    kwargs = dict(click_model=workload.click_model(),
                  purchase_model=workload.purchase_model(),
                  query_source=workload.query_source(),
                  config=EngineConfig(num_slots=num_slots, method=method,
                                      seed=seed),
                  **engine_kwargs)
    if method == "rhtalu":
        return AuctionEngine(rhtalu=workload.build_rhtalu(), **kwargs)
    return AuctionEngine(programs=workload.build_programs(), **kwargs)


class TestMethodEquivalence:
    def test_all_methods_same_revenue_stream(self):
        streams = {}
        for method in ("lp", "hungarian", "rh", "rhtalu"):
            engine = build_engine(method)
            records = engine.run(80)
            streams[method] = [r.expected_revenue for r in records]
        base = streams["rh"]
        for method, stream in streams.items():
            assert stream == pytest.approx(base, abs=1e-6), method

    def test_same_realized_revenue_and_accounts(self):
        engines = {method: build_engine(method)
                   for method in ("rh", "rhtalu")}
        summaries = {}
        for method, engine in engines.items():
            summaries[method] = summarize(engine.run(80))
        assert summaries["rh"].total_realized_revenue == pytest.approx(
            summaries["rhtalu"].total_realized_revenue)
        assert summaries["rh"].total_clicks == summaries["rhtalu"].total_clicks


class TestProtocolInvariants:
    def test_no_advertiser_holds_two_slots(self):
        engine = build_engine("rh")
        for record in engine.run(50):
            slots = list(record.allocation.slot_of.values())
            assert len(slots) == len(set(slots))

    def test_charges_only_on_clicks_under_gsp(self):
        engine = build_engine("rh")
        for record in engine.run(60):
            for advertiser, price in record.prices.items():
                if price > 0:
                    assert advertiser in record.outcome.clicked

    def test_realized_revenue_matches_accounts(self):
        engine = build_engine("rh")
        records = engine.run(60)
        total = sum(r.realized_revenue for r in records)
        assert engine.accounts.provider_revenue == pytest.approx(total)

    def test_interaction_log_populated(self):
        workload = PaperWorkload(PaperWorkloadConfig(
            num_advertisers=10, num_slots=3, num_keywords=2, seed=1))
        engine = AuctionEngine(
            click_model=workload.click_model(),
            purchase_model=workload.purchase_model(),
            query_source=workload.query_source(),
            config=EngineConfig(num_slots=3, method="rh", seed=1,
                                record_log=True),
            programs=workload.build_programs())
        records = engine.run(40)
        impressions = sum(len(r.allocation.slot_of) for r in records)
        assert engine.interaction_log.impressions.sum() == impressions

    def test_vcg_charges_per_impression(self):
        engine = build_engine("rh", pricing=VickreyPricing())
        records = engine.run(30)
        charged = sum(r.realized_revenue for r in records)
        assert charged > 0  # impressions happen every auction

    def test_pay_your_bid_realizes_clicked_bids(self):
        engine = build_engine("rh", pricing=PayYourBid())
        for record in engine.run(40):
            for advertiser, price in record.prices.items():
                if advertiser in record.outcome.clicked:
                    assert price > 0


class TestExpectedVsRealized:
    def test_pay_your_bid_revenue_converges_to_expectation(self):
        # Under pay-your-bid, realized revenue is an unbiased estimate of
        # the WD objective; over many auctions the ratio approaches 1.
        engine = build_engine("rh", n=20, pricing=PayYourBid())
        records = engine.run(1500)
        expected = sum(r.expected_revenue for r in records)
        realized = sum(r.realized_revenue for r in records)
        assert realized == pytest.approx(expected, rel=0.08)


class TestMultiFeaturePopulation:
    def test_generic_bids_path(self):
        # Mixed single- and multi-feature programs force the general
        # revenue-matrix builder.
        workload = PaperWorkload(PaperWorkloadConfig(
            num_advertisers=4, num_slots=3, num_keywords=2, seed=4))
        programs = [
            FixedBidProgram(0, value_per_click=5.0),
            TopOrNothingProgram(1, value_per_top_click=9.0),
            FixedBidProgram(2, value_per_click=3.0),
            TopOrNothingProgram(3, value_per_top_click=1.0,
                                impression_value=2.0),
        ]
        engine = AuctionEngine(
            click_model=workload.click_model(),
            purchase_model=workload.purchase_model(),
            query_source=workload.query_source(),
            config=EngineConfig(num_slots=3, method="rh", seed=8),
            programs=programs)
        records = engine.run(30)
        # The top-or-nothing advertiser never appears below slot 1.
        for record in records:
            slot = record.allocation.slot_for(1)
            assert slot in (None, 1)


class TestExtractClickBids:
    def test_detects_click_only_tables(self):
        tables = {0: BidsTable.from_pairs([("Click", 4)]),
                  1: BidsTable.from_pairs([("Click", 2), ("Click", 1)])}
        bids = extract_click_bids(tables, 3)
        assert bids == pytest.approx([4.0, 3.0, 0.0])

    def test_rejects_multi_feature_tables(self):
        tables = {0: BidsTable.from_pairs([("Click & Slot1", 4)])}
        assert extract_click_bids(tables, 1) is None


class TestConfigValidation:
    def test_rhtalu_requires_evaluator(self):
        workload = PaperWorkload(PaperWorkloadConfig(
            num_advertisers=3, num_slots=2, num_keywords=2, seed=0))
        with pytest.raises(ValueError):
            AuctionEngine(click_model=workload.click_model(),
                          purchase_model=workload.purchase_model(),
                          query_source=workload.query_source(),
                          config=EngineConfig(num_slots=2,
                                              method="rhtalu"))

    def test_eager_methods_require_programs(self):
        workload = PaperWorkload(PaperWorkloadConfig(
            num_advertisers=3, num_slots=2, num_keywords=2, seed=0))
        with pytest.raises(ValueError):
            AuctionEngine(click_model=workload.click_model(),
                          purchase_model=workload.purchase_model(),
                          query_source=workload.query_source(),
                          config=EngineConfig(num_slots=2, method="rh"))
