"""The batched pipeline's contract: bit-identical to sequential runs.

``AuctionEngine.run_batch`` promises that, from identical engine state
and seeds, a batched run produces *exactly* the records a sequential
run would — same allocations, same outcomes, same prices, same account
balances, down to float equality — and leaves the programs in the same
state, so sequential and batched runs interleave freely.  These tests
hold it to that across the eager methods and the planned RHTALU path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.auction import AuctionEngine, EngineConfig
from repro.auction.batch import BatchPlanner, PacerArrays
from repro.strategies.roi_equalizer import (
    ROIEqualizerProgram,
    SimpleROIPacer,
    make_roi_state,
)
from repro.workloads import PaperWorkload, PaperWorkloadConfig

NUM_ADVERTISERS = 40
NUM_SLOTS = 6
NUM_KEYWORDS = 4
AUCTIONS = 60


def build_engine(method: str, record_log: bool = False) -> AuctionEngine:
    workload = PaperWorkload(PaperWorkloadConfig(
        num_advertisers=NUM_ADVERTISERS, num_slots=NUM_SLOTS,
        num_keywords=NUM_KEYWORDS, seed=7))
    kwargs = dict(
        click_model=workload.click_model(),
        purchase_model=workload.purchase_model(),
        query_source=workload.query_source(),
        config=EngineConfig(num_slots=NUM_SLOTS, method=method, seed=11,
                            record_log=record_log))
    if method == "rhtalu":
        return AuctionEngine(rhtalu=workload.build_rhtalu(), **kwargs)
    return AuctionEngine(programs=workload.build_programs(), **kwargs)


def snapshot(records):
    """Everything observable about a run, for exact comparison."""
    return [
        (r.auction_id, r.keyword, dict(r.allocation.slot_of),
         sorted(r.outcome.clicked), sorted(r.outcome.purchased),
         r.expected_revenue, r.realized_revenue, r.num_candidates,
         dict(r.prices))
        for r in records
    ]


def account_state(engine: AuctionEngine):
    return (
        engine.accounts.provider_revenue,
        {adv: (acc.impressions, acc.clicks, acc.purchases,
               acc.auctions_won, acc.charged)
         for adv, acc in engine.accounts.accounts.items()},
    )


def program_state(engine: AuctionEngine):
    return [
        (p.advertiser_id, p.state.amt_spent, p.state.auctions_seen,
         [(k.text, k.bid, k.gained, k.spent) for k in p.state.keywords])
        for p in engine.programs
    ]


@pytest.mark.parametrize("method", ["rh", "lp", "rhtalu"])
def test_run_batch_identical_to_sequential(method):
    sequential = build_engine(method)
    batched = build_engine(method)

    seq_records = sequential.run(AUCTIONS)
    batch_records = batched.run_batch(AUCTIONS)

    assert snapshot(seq_records) == snapshot(batch_records)
    assert account_state(sequential) == account_state(batched)


@pytest.mark.parametrize("method", ["rh", "hungarian"])
def test_batch_then_sequential_continuation(method):
    """State written back after a batch must let sequential runs resume."""
    sequential = build_engine(method)
    batched = build_engine(method)

    sequential.run(AUCTIONS)
    batched.run_batch(AUCTIONS)
    assert program_state(sequential) == program_state(batched)

    # The two engines must stay in lockstep through further (sequential
    # and batched) segments.
    assert snapshot(sequential.run(15)) == snapshot(batched.run(15))
    assert snapshot(sequential.run(10)) == snapshot(batched.run_batch(10))
    assert account_state(sequential) == account_state(batched)


def test_batch_uses_vectorized_planner_for_pacers():
    engine = build_engine("rh")
    engine.run_batch(AUCTIONS)
    stats = engine.last_batch_stats
    assert stats is not None
    assert stats.auctions == AUCTIONS
    assert 1 <= stats.groups <= AUCTIONS
    assert stats.signatures <= NUM_KEYWORDS
    assert stats.mean_group_length == pytest.approx(
        AUCTIONS / stats.groups)


def test_batch_records_interaction_log_identically():
    sequential = build_engine("rh", record_log=True)
    batched = build_engine("rh", record_log=True)
    sequential.run(AUCTIONS)
    batched.run_batch(AUCTIONS)
    np.testing.assert_array_equal(sequential.interaction_log.impressions,
                                  batched.interaction_log.impressions)
    np.testing.assert_array_equal(sequential.interaction_log.clicks,
                                  batched.interaction_log.clicks)


def test_rhtalu_batches_with_planner_stats():
    """RHTALU no longer falls back: the planner groups by keyword."""
    engine = build_engine("rhtalu")
    engine.run_batch(AUCTIONS)
    stats = engine.last_batch_stats
    assert stats is not None
    assert stats.auctions == AUCTIONS
    assert 1 <= stats.groups <= AUCTIONS
    assert stats.signatures <= NUM_KEYWORDS


def test_rhtalu_access_counts_identical_across_paths():
    """Sequential and batched RHTALU do the same TA work, access for
    access — the kernel is shared, so the counts must agree exactly."""
    def access_trace(engine, batched):
        trace = []
        original = engine.rhtalu.run_auction

        def spy(keyword, time):
            result = original(keyword, time)
            trace.append((result.sequential_count, result.random_count,
                          result.candidates))
            return result

        engine.rhtalu.run_auction = spy
        (engine.run_batch if batched else engine.run)(AUCTIONS)
        return trace

    assert access_trace(build_engine("rhtalu"), False) == \
        access_trace(build_engine("rhtalu"), True)


def test_rhtalu_batch_then_sequential_continuation():
    """The evaluator state is shared by both paths, so segments
    interleave freely and stay in lockstep."""
    sequential = build_engine("rhtalu")
    batched = build_engine("rhtalu")
    assert snapshot(sequential.run(20)) == snapshot(batched.run_batch(20))
    assert snapshot(sequential.run(15)) == snapshot(batched.run(15))
    assert snapshot(sequential.run(10)) == snapshot(batched.run_batch(10))
    assert account_state(sequential) == account_state(batched)


def _equalizer_engine() -> AuctionEngine:
    """A non-pacer population: forces the sequential fallback."""
    workload = PaperWorkload(PaperWorkloadConfig(
        num_advertisers=8, num_slots=3, num_keywords=2, seed=3))
    programs = [
        ROIEqualizerProgram(
            advertiser,
            make_roi_state(
                [(f"kw{index}", "Click",
                  float(workload.values[advertiser, index]),
                  float(workload.values[advertiser, index]))
                 for index in range(2)],
                target_spend_rate=float(workload.targets[advertiser])))
        for advertiser in range(8)
    ]
    return AuctionEngine(
        click_model=workload.click_model(),
        purchase_model=workload.purchase_model(),
        query_source=workload.query_source(),
        config=EngineConfig(num_slots=3, method="rh", seed=5),
        programs=programs)


def test_non_pacer_population_falls_back_and_matches():
    sequential = _equalizer_engine()
    batched = _equalizer_engine()
    seq_records = sequential.run(30)
    batch_records = batched.run_batch(30)
    assert batched.last_batch_stats is None
    assert snapshot(seq_records) == snapshot(batch_records)
    assert account_state(sequential) == account_state(batched)


def test_planner_rejects_non_pacer_programs():
    engine = _equalizer_engine()
    assert BatchPlanner.for_engine(engine) is None
    assert PacerArrays.from_programs(engine.programs, 8) is None


def test_planner_rejects_duplicate_advertiser_ids():
    state = make_roi_state([("kw0", "Click", 10.0, 10.0)],
                           target_spend_rate=1.0)
    twin = make_roi_state([("kw0", "Click", 10.0, 10.0)],
                          target_spend_rate=1.0)
    programs = [SimpleROIPacer(0, state), SimpleROIPacer(0, twin)]
    assert PacerArrays.from_programs(programs, 4) is None


def test_planner_rejects_non_click_formulas():
    state = make_roi_state([("kw0", "Click & Slot1", 10.0, 10.0)],
                           target_spend_rate=1.0)
    programs = [SimpleROIPacer(0, state)]
    assert PacerArrays.from_programs(programs, 4) is None


def test_batch_records_carry_phase_timings():
    engine = build_engine("rh")
    records = engine.run_batch(10)
    for record in records:
        assert record.eval_seconds >= 0.0
        assert record.wd_seconds >= 0.0
        assert record.price_seconds >= 0.0
        assert record.settle_seconds >= 0.0
        assert record.pipeline_seconds >= record.total_seconds
