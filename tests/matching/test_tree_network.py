"""Tests for the simulated parallel tree-network aggregation (III-E)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.hungarian import max_weight_matching
from repro.matching.reduction import reduce_graph
from repro.matching.tree_network import (
    merge_top_k,
    tree_aggregate,
    tree_matching,
)


class TestMergeTopK:
    def test_basic_merge(self):
        left = [(9.0, 0), (7.0, 2)]
        right = [(8.0, 1), (6.0, 3)]
        assert merge_top_k(left, right, 3) == [(9.0, 0), (8.0, 1), (7.0, 2)]

    def test_ties_prefer_lower_id(self):
        left = [(5.0, 3)]
        right = [(5.0, 1)]
        assert merge_top_k(left, right, 2) == [(5.0, 1), (5.0, 3)]

    def test_k_truncates(self):
        left = [(3.0, 0), (2.0, 1)]
        right = [(1.0, 2)]
        assert len(merge_top_k(left, right, 2)) == 2

    def test_empty_inputs(self):
        assert merge_top_k([], [], 3) == []
        assert merge_top_k([(1.0, 0)], [], 3) == [(1.0, 0)]


class TestTreeAggregation:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 40), st.integers(1, 4), st.integers(1, 16),
           st.integers(0, 2**31 - 1))
    def test_equals_centralized_reduction(self, n, k, leaves, seed):
        weights = np.random.default_rng(seed).normal(size=(n, k))
        tree = tree_aggregate(weights, num_leaves=leaves)
        central = reduce_graph(weights)
        assert tree.per_slot == central.per_slot

    def test_height_is_logarithmic(self):
        weights = np.zeros((64, 2))
        result = tree_aggregate(weights, num_leaves=64)
        assert result.stats.height == 6  # log2(64)

    def test_single_leaf_no_merges(self):
        weights = np.ones((10, 2))
        result = tree_aggregate(weights, num_leaves=1)
        assert result.stats.height == 0
        assert result.stats.messages == 0

    def test_leaf_work_drops_with_parallelism(self):
        weights = np.random.default_rng(0).random((128, 3))
        serial = tree_aggregate(weights, num_leaves=1)
        parallel = tree_aggregate(weights, num_leaves=16)
        assert parallel.stats.leaf_work_max < serial.stats.leaf_work_max
        # Critical-path work (the parallel-time model) must shrink too.
        assert (parallel.stats.critical_path_work
                < serial.stats.critical_path_work)

    def test_more_leaves_than_advertisers(self):
        weights = np.random.default_rng(1).random((3, 2))
        result = tree_aggregate(weights, num_leaves=100)
        central = reduce_graph(weights)
        assert result.per_slot == central.per_slot

    def test_invalid_leaves(self):
        with pytest.raises(ValueError):
            tree_aggregate(np.ones((2, 2)), num_leaves=0)


class TestTreeMatching:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 30), st.integers(1, 4), st.integers(1, 8),
           st.integers(0, 2**31 - 1))
    def test_end_to_end_optimality(self, n, k, leaves, seed):
        weights = np.random.default_rng(seed).normal(size=(n, k))
        parallel = tree_matching(weights, num_leaves=leaves)
        exact = max_weight_matching(weights)
        assert parallel.total_weight == pytest.approx(exact.total_weight,
                                                      abs=1e-6)
