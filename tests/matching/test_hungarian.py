"""Tests for the from-scratch Hungarian algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.matching.brute_force import brute_force_matching
from repro.matching.hungarian import (
    HungarianError,
    max_weight_matching,
    min_cost_assignment,
)


def weight_matrices(max_left=6, max_right=4, negatives=True):
    low = -10.0 if negatives else 0.0
    return st.tuples(
        st.integers(1, max_left), st.integers(1, max_right)
    ).flatmap(lambda shape: st.lists(
        st.lists(st.floats(low, 10.0, allow_nan=False, width=32),
                 min_size=shape[1], max_size=shape[1]),
        min_size=shape[0], max_size=shape[0]))


class TestMinCostAssignment:
    def test_identity_case(self):
        cost = [[0.0, 1.0], [1.0, 0.0]]
        assignment, total = min_cost_assignment(cost)
        assert assignment == [0, 1]
        assert total == 0.0

    def test_rectangular(self):
        cost = [[5.0, 1.0, 9.0]]
        assignment, total = min_cost_assignment(cost)
        assert assignment == [1]
        assert total == 1.0

    def test_rows_exceed_cols_rejected(self):
        with pytest.raises(HungarianError):
            min_cost_assignment([[1.0], [2.0]])

    def test_non_finite_rejected(self):
        with pytest.raises(HungarianError):
            min_cost_assignment([[float("inf")]])

    def test_empty(self):
        assignment, total = min_cost_assignment(np.empty((0, 3)))
        assert assignment == []
        assert total == 0.0

    @settings(max_examples=150, deadline=None)
    @given(weight_matrices(max_left=4, max_right=6))
    def test_against_scipy(self, rows):
        cost = np.array(rows)
        if cost.shape[0] > cost.shape[1]:
            cost = cost.T  # the kernel requires rows <= cols
        _, total = min_cost_assignment(cost, backend="python")
        row_ind, col_ind = linear_sum_assignment(cost)
        assert total == pytest.approx(cost[row_ind, col_ind].sum(),
                                      abs=1e-6)

    @settings(max_examples=100, deadline=None)
    @given(weight_matrices(max_left=4, max_right=6))
    def test_backends_agree(self, rows):
        cost = np.array(rows)
        if cost.shape[0] > cost.shape[1]:
            cost = cost.T
        _, total_py = min_cost_assignment(cost, backend="python")
        _, total_np = min_cost_assignment(cost, backend="numpy")
        assert total_py == pytest.approx(total_np, abs=1e-6)


class TestMaxWeightMatching:
    def test_figure9_matrix(self):
        # Nike/Adidas/Reebok/Sketchers example: optimum is Nike->1,
        # Adidas->2 (9 + 7 = 16).
        weights = np.array([[9, 5], [8, 7], [7, 6], [7, 4]], dtype=float)
        result = max_weight_matching(weights)
        assert result.pairs == ((0, 0), (1, 1))
        assert result.total_weight == 16.0

    def test_negative_edges_skipped(self):
        weights = np.array([[-5.0, -2.0]])
        result = max_weight_matching(weights)
        assert result.pairs == ()
        assert result.total_weight == 0.0

    def test_perfect_matching_takes_negative_edges(self):
        weights = np.array([[-5.0, -2.0]])
        result = max_weight_matching(weights, allow_unmatched=False)
        assert result.pairs == ((0, 1),)
        assert result.total_weight == -2.0

    def test_empty_matrix(self):
        assert max_weight_matching(np.empty((0, 3))).pairs == ()
        assert max_weight_matching(np.empty((3, 0))).pairs == ()

    def test_result_accessors(self):
        weights = np.array([[9, 5], [8, 7], [7, 6], [7, 4]], dtype=float)
        result = max_weight_matching(weights)
        assert result.left_to_right() == {0: 0, 1: 1}
        assert result.right_to_left() == {0: 0, 1: 1}
        assert result.matched_lefts() == frozenset({0, 1})
        assert result.matched_rights() == frozenset({0, 1})

    @settings(max_examples=200, deadline=None)
    @given(weight_matrices())
    def test_optimal_vs_brute_force(self, rows):
        weights = np.array(rows)
        fast = max_weight_matching(weights, backend="python")
        oracle = brute_force_matching(weights)
        assert fast.total_weight == pytest.approx(oracle.total_weight,
                                                  abs=1e-6)

    @settings(max_examples=100, deadline=None)
    @given(weight_matrices())
    def test_matching_is_valid(self, rows):
        weights = np.array(rows)
        result = max_weight_matching(weights)
        lefts = [left for left, _ in result.pairs]
        rights = [right for _, right in result.pairs]
        assert len(lefts) == len(set(lefts))
        assert len(rights) == len(set(rights))
        recomputed = sum(weights[left, right]
                         for left, right in result.pairs)
        assert result.total_weight == pytest.approx(recomputed)

    @settings(max_examples=100, deadline=None)
    @given(weight_matrices())
    def test_transpose_invariance(self, rows):
        weights = np.array(rows)
        direct = max_weight_matching(weights)
        transposed = max_weight_matching(weights.T)
        assert direct.total_weight == pytest.approx(
            transposed.total_weight, abs=1e-6)
