"""Tests for the incumbent separable allocator (Section III-C)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.greedy_separable import separable_matching, top_advertisers
from repro.matching.hungarian import max_weight_matching

non_negative = st.floats(0.0, 10.0, allow_nan=False, width=32)


class TestSeparableMatching:
    def test_sorted_pairing(self):
        result = separable_matching([4.0, 3.0, 5.0], [0.2, 0.1])
        # advertiser 2 (score 5) -> slot 0 (factor 0.2),
        # advertiser 0 (score 4) -> slot 1 (factor 0.1)
        assert result.pairs == ((0, 1), (2, 0))
        assert result.total_weight == pytest.approx(5 * 0.2 + 4 * 0.1)

    def test_zero_products_unmatched(self):
        result = separable_matching([0.0, 0.0], [0.5, 0.3])
        assert result.pairs == ()

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            separable_matching([-1.0], [0.5])
        with pytest.raises(ValueError):
            separable_matching([1.0], [-0.5])

    def test_wrong_rank_rejected(self):
        with pytest.raises(ValueError):
            separable_matching(np.ones((2, 2)), [0.5])

    @settings(max_examples=200, deadline=None)
    @given(st.lists(non_negative, min_size=1, max_size=12),
           st.lists(non_negative, min_size=1, max_size=4))
    def test_optimal_on_rank_one_matrices(self, scores, factors):
        # The incumbent allocator is provably optimal exactly when the
        # weight matrix is separable: compare against the Hungarian on
        # the outer product.
        greedy = separable_matching(scores, factors)
        exact = max_weight_matching(np.outer(scores, factors))
        assert greedy.total_weight == pytest.approx(exact.total_weight,
                                                    abs=1e-6)

    def test_suboptimal_on_non_separable(self):
        # Figure 7's point: sorting by any advertiser score cannot
        # reproduce the optimum of a non-separable matrix in general.
        weights = np.array([[0.7, 0.1],
                            [0.6, 0.6]])
        exact = max_weight_matching(weights)
        assert exact.total_weight == pytest.approx(1.3)  # 0->1, 1->2 swap
        # Sorting by row maximum (0.7 > 0.6) puts advertiser 0 on top:
        greedy_like = weights[0, 0] + weights[1, 1]
        assert greedy_like == pytest.approx(1.3)
        # but sorting by the other natural score (row sums) inverts it:
        inverted = weights[1, 0] + weights[0, 1]
        assert inverted < exact.total_weight


class TestTopAdvertisers:
    def test_descending_order(self):
        assert top_advertisers(np.array([1.0, 9.0, 5.0]), 2) == [1, 2]

    def test_ties_prefer_lower_index(self):
        assert top_advertisers(np.array([5.0, 5.0, 5.0]), 2) == [0, 1]

    def test_k_zero(self):
        assert top_advertisers(np.array([1.0]), 0) == []

    @settings(max_examples=100, deadline=None)
    @given(st.lists(non_negative, min_size=1, max_size=30),
           st.integers(1, 6))
    def test_matches_full_sort(self, scores, k):
        scores_array = np.asarray(scores)
        expected = sorted(range(len(scores)),
                          key=lambda i: (-scores_array[i], i))[:k]
        assert top_advertisers(scores_array, k) == expected
