"""Tests for the winner-determination LP and the from-scratch simplex."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.hungarian import max_weight_matching
from repro.matching.lp import build_constraints, lp_matching
from repro.matching.simplex import (
    SimplexError,
    UnboundedError,
    solve_lp_maximize,
)


def matrices(max_n=6, max_k=3):
    return st.tuples(st.integers(1, max_n), st.integers(1, max_k)).flatmap(
        lambda shape: st.lists(
            st.lists(st.floats(-5.0, 10.0, allow_nan=False, width=32),
                     min_size=shape[1], max_size=shape[1]),
            min_size=shape[0], max_size=shape[0]))


class TestConstraints:
    def test_shapes(self):
        a_ub, b_ub = build_constraints(3, 2)
        assert a_ub.shape == (5, 6)
        assert b_ub.shape == (5,)
        assert np.all(b_ub == 1.0)

    def test_every_variable_in_two_constraints(self):
        a_ub, _ = build_constraints(3, 2)
        dense = a_ub.toarray()
        assert np.all(dense.sum(axis=0) == 2.0)


class TestLpMatching:
    @settings(max_examples=100, deadline=None)
    @given(matrices())
    def test_lp_equals_hungarian(self, rows):
        weights = np.array(rows)
        lp = lp_matching(weights)
        hungarian = max_weight_matching(weights)
        assert lp.matching.total_weight == pytest.approx(
            hungarian.total_weight, abs=1e-6)

    @settings(max_examples=60, deadline=None)
    @given(matrices())
    def test_lp_relaxation_is_integral(self, rows):
        # Chvátal's theorem in action: the assignment polytope has
        # integral optima.
        assert lp_matching(np.array(rows)).is_integral

    @settings(max_examples=30, deadline=None)
    @given(matrices(max_n=4, max_k=2))
    def test_simplex_backend_agrees_with_scipy(self, rows):
        weights = np.array(rows)
        scipy_solution = lp_matching(weights, backend="scipy")
        simplex_solution = lp_matching(weights, backend="simplex")
        assert simplex_solution.matching.total_weight == pytest.approx(
            scipy_solution.matching.total_weight, abs=1e-6)

    def test_empty(self):
        solution = lp_matching(np.empty((0, 0)))
        assert solution.matching.pairs == ()


class TestSimplexKernel:
    def test_simple_lp(self):
        # max x + y st x <= 2, y <= 3, x + y <= 4
        result = solve_lp_maximize(
            np.array([1.0, 1.0]),
            np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]),
            np.array([2.0, 3.0, 4.0]))
        assert result.objective == pytest.approx(4.0)

    def test_unbounded_detected(self):
        with pytest.raises(UnboundedError):
            solve_lp_maximize(np.array([1.0]),
                              np.array([[-1.0]]),
                              np.array([1.0]))

    def test_negative_rhs_rejected(self):
        with pytest.raises(SimplexError):
            solve_lp_maximize(np.array([1.0]), np.array([[1.0]]),
                              np.array([-1.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SimplexError):
            solve_lp_maximize(np.array([1.0, 2.0]), np.array([[1.0]]),
                              np.array([1.0]))

    def test_degenerate_lp_terminates(self):
        # Highly degenerate: many ties — Bland's rule must not cycle.
        c = np.ones(4)
        a = np.vstack([np.eye(4), np.ones((1, 4))])
        b = np.array([1.0, 1.0, 1.0, 1.0, 1.0])
        result = solve_lp_maximize(c, a, b)
        assert result.objective == pytest.approx(1.0)

    def test_zero_objective(self):
        result = solve_lp_maximize(np.zeros(2),
                                   np.eye(2), np.ones(2))
        assert result.objective == 0.0
        assert result.iterations == 0
