"""Tests for the brute-force oracles themselves."""

import numpy as np
import pytest

from repro.lang.outcome import Allocation
from repro.matching.brute_force import (
    InstanceTooLargeError,
    brute_force_allocation,
    brute_force_matching,
    enumerate_allocations,
)


class TestEnumeration:
    def test_counts_small_case(self):
        # n=2 advertisers, k=2 slots: allocations = empty (1)
        # + size-1 (2 advertisers x 2 slots = 4) + size-2 (2! x 1 = 2
        # slot subsets of size 2... C(2,2)=1, 2 orderings) = 1+4+2 = 7.
        allocations = list(enumerate_allocations(2, 2))
        assert len(allocations) == 7
        assert len({tuple(sorted(a.slot_of.items()))
                    for a in allocations}) == 7

    def test_no_empty_slots_mode(self):
        allocations = list(enumerate_allocations(3, 2,
                                                 allow_empty_slots=False))
        assert all(len(a.slot_of) == 2 for a in allocations)
        assert len(allocations) == 6  # 3P2

    def test_too_large_guard(self):
        with pytest.raises(InstanceTooLargeError):
            list(enumerate_allocations(50, 10))


class TestBruteForceMatching:
    def test_known_optimum(self):
        weights = np.array([[1.0, 9.0], [8.0, 2.0]])
        result = brute_force_matching(weights)
        assert result.total_weight == 17.0
        assert result.pairs == ((0, 1), (1, 0))

    def test_all_negative_stays_empty(self):
        weights = -np.ones((2, 2))
        assert brute_force_matching(weights).pairs == ()

    def test_transposed_orientation(self):
        weights = np.array([[1.0], [2.0], [3.0]])  # 3 left, 1 right
        result = brute_force_matching(weights)
        assert result.pairs == ((2, 0),)


class TestBruteForceAllocation:
    def test_maximises_arbitrary_objective(self):
        # Objective: +10 if advertiser 0 holds slot 2, else count of
        # assigned advertisers.
        def revenue(allocation: Allocation) -> float:
            if allocation.slot_for(0) == 2:
                return 10.0
            return float(len(allocation.slot_of))

        best, value = brute_force_allocation(3, 2, revenue)
        assert value == 10.0
        assert best.slot_for(0) == 2

    def test_empty_allocation_can_win(self):
        def revenue(allocation: Allocation) -> float:
            return -float(len(allocation.slot_of))

        best, value = brute_force_allocation(2, 2, revenue)
        assert best.slot_of == {}
        assert value == 0.0
