"""Tests for the Theorem 3 hardness gadget."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.dependence import analyze_formula
from repro.lang.outcome import Allocation, Outcome
from repro.matching.feedback_arc import (
    FeedbackArcInstance,
    above_event,
    best_allocation_by_enumeration,
    max_weighted_forward_edges,
)
from repro.workloads.generators import random_weighted_digraph


class TestAboveEvent:
    def test_is_two_dependent(self):
        event = above_event(0, 1, num_slots=3)
        assert analyze_formula(event, owner=0).m == 2

    def test_truth_matches_is_above(self):
        event = above_event(0, 1, num_slots=3)
        for slot_of in ({0: 1, 1: 2}, {0: 2, 1: 1}, {0: 1}, {1: 1}, {}):
            allocation = Allocation(num_slots=3, slot_of=dict(slot_of))
            outcome = Outcome(allocation=allocation)
            assert (outcome.satisfies(event, 0)
                    == allocation.is_above(0, 1)), slot_of

    def test_self_edge_rejected(self):
        with pytest.raises(ValueError):
            above_event(2, 2, num_slots=2)


class TestInstanceValidation:
    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            FeedbackArcInstance(weights=np.ones((2, 3)), num_slots=2)

    def test_self_edges_rejected(self):
        with pytest.raises(ValueError):
            FeedbackArcInstance(weights=np.eye(2), num_slots=2)

    def test_negative_weights_rejected(self):
        weights = np.array([[0.0, -1.0], [0.0, 0.0]])
        with pytest.raises(ValueError):
            FeedbackArcInstance(weights=weights, num_slots=2)


class TestReduction:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 4), st.integers(1, 3),
           st.integers(0, 2**31 - 1))
    def test_wd_equals_forward_edge_maximisation(self, n, k, seed):
        rng = np.random.default_rng(seed)
        weights = random_weighted_digraph(n, rng)
        instance = FeedbackArcInstance(weights=weights, num_slots=k)
        _, wd_revenue = best_allocation_by_enumeration(instance)
        graph_optimum = max_weighted_forward_edges(weights, k)
        assert wd_revenue == pytest.approx(graph_optimum, abs=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 3), st.integers(0, 2**31 - 1))
    def test_payment_semantics_match_revenue(self, n, seed):
        rng = np.random.default_rng(seed)
        weights = random_weighted_digraph(n, rng)
        instance = FeedbackArcInstance(weights=weights, num_slots=2)
        tables = instance.bids_tables()
        from repro.matching.brute_force import enumerate_allocations
        for allocation in enumerate_allocations(n, 2):
            outcome = Outcome(allocation=allocation)
            paid = sum(table.payment(outcome, owner)
                       for owner, table in tables.items())
            assert paid == pytest.approx(instance.revenue(allocation))

    def test_all_bids_two_dependent(self, rng):
        weights = random_weighted_digraph(3, rng)
        instance = FeedbackArcInstance(weights=weights, num_slots=2)
        assert instance.all_bids_are_two_dependent()

    def test_acyclic_graph_fully_captured(self):
        # For a DAG whose vertices all fit on the page, the optimum
        # collects every edge (place a topological order).
        weights = np.array([[0.0, 2.0, 3.0],
                            [0.0, 0.0, 4.0],
                            [0.0, 0.0, 0.0]])
        instance = FeedbackArcInstance(weights=weights, num_slots=3)
        _, revenue = best_allocation_by_enumeration(instance)
        assert revenue == pytest.approx(9.0)

    def test_two_cycle_forces_a_choice(self):
        weights = np.array([[0.0, 5.0],
                            [3.0, 0.0]])
        instance = FeedbackArcInstance(weights=weights, num_slots=2)
        _, revenue = best_allocation_by_enumeration(instance)
        assert revenue == pytest.approx(5.0)
