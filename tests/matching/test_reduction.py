"""Tests for the top-k graph reduction (method RH, Figures 9-11)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.hungarian import max_weight_matching
from repro.matching.reduction import (
    reduce_graph,
    reduce_graph_columns,
    reduced_matching,
    reduced_matching_columns,
    top_k_for_slot,
)

FIGURE9 = np.array([[9, 5],
                    [8, 7],
                    [7, 6],
                    [7, 4]], dtype=float)  # Nike, Adidas, Reebok, Sketchers


def matrices(max_n=20, max_k=4):
    return st.tuples(st.integers(1, max_n), st.integers(1, max_k)).flatmap(
        lambda shape: st.lists(
            st.lists(st.floats(-5.0, 10.0, allow_nan=False, width=32),
                     min_size=shape[1], max_size=shape[1]),
            min_size=shape[0], max_size=shape[0]))


class TestFigure9To11:
    def test_figure9_to_11(self):
        reduced = reduce_graph(FIGURE9)
        # Figure 10: slot 1's bold edges go to Nike and Adidas; slot 2's
        # to Adidas and Reebok.
        assert reduced.per_slot == ((0, 1), (1, 2))
        # Figure 11: Sketchers is dropped.
        assert reduced.candidates == (0, 1, 2)
        assert reduced.num_candidates == 3

    def test_reduced_matching_matches_full(self):
        full = max_weight_matching(FIGURE9)
        reduced = reduced_matching(FIGURE9)
        assert reduced.pairs == full.pairs
        assert reduced.total_weight == full.total_weight == 16.0

    def test_tie_at_rank_k(self):
        # Reebok and Sketchers tie at 7 for slot 1; the lower id wins the
        # heap slot deterministically.
        column = FIGURE9[:, 0]
        assert top_k_for_slot(column, 3) == [0, 1, 2]


class TestTopKSelection:
    def test_heap_and_numpy_agree(self, rng):
        for _ in range(50):
            column = rng.normal(size=30)
            k = int(rng.integers(1, 8))
            assert (top_k_for_slot(column, k, backend="heap")
                    == top_k_for_slot(column, k, backend="numpy"))

    def test_k_zero(self):
        assert top_k_for_slot([1.0, 2.0], 0) == []

    def test_k_larger_than_n(self):
        assert top_k_for_slot([1.0, 3.0], 5) == [1, 0]


class TestReductionCorrectness:
    @settings(max_examples=200, deadline=None)
    @given(matrices())
    def test_reduction_preserves_optimum(self, rows):
        weights = np.array(rows)
        full = max_weight_matching(weights, backend="python")
        reduced = reduced_matching(weights)
        assert reduced.total_weight == pytest.approx(full.total_weight,
                                                     abs=1e-6)

    @settings(max_examples=100, deadline=None)
    @given(matrices())
    def test_candidate_bound(self, rows):
        weights = np.array(rows)
        reduced = reduce_graph(weights)
        num_slots = weights.shape[1]
        # At most k advertisers per slot survive (the k^2 bound).
        assert reduced.num_candidates <= num_slots * num_slots
        for ids in reduced.per_slot:
            assert len(ids) <= num_slots

    @settings(max_examples=50, deadline=None)
    @given(matrices())
    def test_backends_agree(self, rows):
        weights = np.array(rows)
        heap = reduce_graph(weights, backend="heap")
        fast = reduce_graph(weights, backend="numpy")
        assert heap.per_slot == fast.per_slot
        assert heap.candidates == fast.candidates

    def test_lossy_top_k_is_flagged_parameter(self):
        weights = np.array([[5.0], [4.0], [3.0]])
        reduced = reduce_graph(weights, top_k=1)
        assert reduced.candidates == (0,)


class TestColumnBackend:
    """The slot-major ``(k, n)`` entry points must be bit-identical to
    the row-major numpy backend — the streaming micro-batch window
    cache depends on it."""

    @settings(max_examples=100, deadline=None)
    @given(matrices())
    def test_reduction_matches_row_major(self, rows):
        weights = np.array(rows)
        row_major = reduce_graph(weights, backend="numpy")
        col_major = reduce_graph_columns(
            np.ascontiguousarray(weights.T))
        assert col_major.per_slot == row_major.per_slot
        assert col_major.candidates == row_major.candidates
        assert np.array_equal(col_major.weights, row_major.weights)

    @settings(max_examples=100, deadline=None)
    @given(matrices())
    def test_matching_matches_row_major(self, rows):
        weights = np.array(rows)
        row_major = reduced_matching(weights)
        col_major = reduced_matching_columns(
            np.ascontiguousarray(weights.T))
        assert col_major.pairs == row_major.pairs
        assert col_major.total_weight == row_major.total_weight

    def test_figure9_through_columns(self):
        reduced = reduce_graph_columns(
            np.ascontiguousarray(FIGURE9.T))
        assert reduced.per_slot == ((0, 1), (1, 2))
        assert reduced.candidates == (0, 1, 2)

    def test_ties_straddling_partition_boundary(self):
        # Four advertisers tie at the top of a 5-wide row with k=2:
        # argpartition may pick any two, but the backend must resolve
        # toward the lower ids exactly as top_k_for_slot does.
        column = np.array([3.0, 3.0, 3.0, 3.0, 1.0])
        weights_t = column[None, :]
        assert reduce_graph_columns(weights_t).per_slot == ((0,),)
        assert reduce_graph_columns(
            weights_t, top_k=2).per_slot == ((0, 1),)
        assert top_k_for_slot(column, 2) == [0, 1]

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            reduce_graph_columns(np.zeros(3))

    def test_top_k_zero_empties_every_slot(self):
        reduced = reduce_graph_columns(np.ones((2, 4)), top_k=0)
        assert reduced.per_slot == ((), ())
        assert reduced.candidates == ()
