"""Tests for the Bertsekas auction-algorithm matcher."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.auction_algorithm import (
    auction_matching,
    optimality_slack,
)
from repro.matching.hungarian import max_weight_matching


def matrices(max_n=12, max_k=4):
    return st.tuples(st.integers(1, max_n), st.integers(1, max_k)).flatmap(
        lambda shape: st.lists(
            st.lists(st.floats(-10.0, 10.0, allow_nan=False, width=32),
                     min_size=shape[1], max_size=shape[1]),
            min_size=shape[0], max_size=shape[0]))


class TestOptimality:
    @settings(max_examples=150, deadline=None)
    @given(matrices())
    def test_within_epsilon_of_hungarian(self, rows):
        weights = np.array(rows)
        auction = auction_matching(weights)
        exact = max_weight_matching(weights)
        slack = optimality_slack(weights) + 1e-9
        assert auction.total_weight >= exact.total_weight - slack
        assert auction.total_weight <= exact.total_weight + 1e-9

    @settings(max_examples=80, deadline=None)
    @given(matrices())
    def test_matching_is_valid(self, rows):
        weights = np.array(rows)
        result = auction_matching(weights)
        lefts = [left for left, _ in result.pairs]
        rights = [right for _, right in result.pairs]
        assert len(lefts) == len(set(lefts))
        assert len(rights) == len(set(rights))
        recomputed = sum(weights[left, right]
                         for left, right in result.pairs)
        assert result.total_weight == pytest.approx(recomputed)

    def test_figure9_exact(self):
        weights = np.array([[9, 5], [8, 7], [7, 6], [7, 4]], dtype=float)
        result = auction_matching(weights)
        assert result.total_weight == pytest.approx(16.0)

    def test_all_negative_stays_empty(self):
        assert auction_matching(-np.ones((3, 2))).pairs == ()

    def test_empty(self):
        assert auction_matching(np.empty((0, 2))).pairs == ()

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            auction_matching(np.ones(3))


class TestOnReducedGraphs:
    def test_reduced_graph_root_solver(self, rng):
        """The auction algorithm works as RH's root solver."""
        from repro.matching.reduction import reduce_graph
        weights = rng.uniform(0, 50, size=(500, 8))
        reduced = reduce_graph(weights, backend="numpy")
        auction = auction_matching(reduced.weights)
        exact = max_weight_matching(reduced.weights)
        assert auction.total_weight == pytest.approx(exact.total_weight,
                                                     abs=1e-3)
