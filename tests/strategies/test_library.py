"""Tests for the expressive strategy library (Section I-A goals)."""

import pytest

from repro.lang.outcome import Allocation, Outcome
from repro.strategies.base import AuctionContext, ProgramNotification, Query
from repro.strategies.library import (
    BudgetPacedProgram,
    DaypartingRampProgram,
    FixedBidProgram,
    PositionTargetProgram,
    PurchaseFocusedProgram,
    TopOrBottomProgram,
    TopOrNothingProgram,
)


def ctx(time=1.0, text="kw", num_slots=5, auction_id=1):
    return AuctionContext(auction_id=auction_id, time=time,
                          query=Query(text=text, relevance={text: 1.0}),
                          num_slots=num_slots)


def outcome(slot_of, clicked=(), purchased=(), num_slots=5):
    return Outcome(
        allocation=Allocation(num_slots=num_slots, slot_of=dict(slot_of)),
        clicked=frozenset(clicked), purchased=frozenset(purchased))


class TestFixedBid:
    def test_constant_click_bid(self):
        program = FixedBidProgram(0, value_per_click=4.0)
        table = program.bid(ctx())
        assert table.payment(outcome({0: 3}, clicked={0}), 0) == 4.0
        assert table.payment(outcome({0: 3}), 0) == 0.0

    def test_keyword_filter(self):
        program = FixedBidProgram(0, 4.0, keywords=frozenset({"shoes"}))
        assert len(program.bid(ctx(text="hats"))) == 0
        assert len(program.bid(ctx(text="shoes"))) == 1

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            FixedBidProgram(0, -1.0)


class TestTopOrNothing:
    def test_pays_only_for_top_clicks(self):
        program = TopOrNothingProgram(0, value_per_top_click=9.0,
                                      impression_value=1.0)
        table = program.bid(ctx())
        assert table.payment(outcome({0: 1}, clicked={0}), 0) == 10.0
        assert table.payment(outcome({0: 1}), 0) == 1.0
        assert table.payment(outcome({0: 2}, clicked={0}), 0) == 0.0


class TestTopOrBottom:
    def test_values_edges_not_middle(self):
        program = TopOrBottomProgram(0, impression_value=3.0)
        table = program.bid(ctx(num_slots=5))
        assert table.payment(outcome({0: 1}), 0) == 3.0
        assert table.payment(outcome({0: 5}), 0) == 3.0
        assert table.payment(outcome({0: 3}), 0) == 0.0


class TestPurchaseFocused:
    def test_or_bid_composition(self):
        program = PurchaseFocusedProgram(0, purchase_value=5.0,
                                         prominent_slots=2,
                                         impression_value=2.0)
        table = program.bid(ctx())
        # Figure 3's worked example: purchase + top-2 impression pays 7.
        full = outcome({0: 1}, clicked={0}, purchased={0})
        assert table.payment(full, 0) == 7.0
        assert table.payment(outcome({0: 2}), 0) == 2.0


class TestDayparting:
    def test_ramp_is_monotone_within_day(self):
        program = DaypartingRampProgram(0, start=1.0, rate=0.5)
        bids = [program.current_bid(t) for t in (0.0, 6.0, 12.0, 23.0)]
        assert bids == sorted(bids)

    def test_wraps_at_day_boundary(self):
        program = DaypartingRampProgram(0, start=1.0, rate=0.5,
                                        day_length=24.0)
        assert program.current_bid(25.0) == program.current_bid(1.0)

    def test_cap(self):
        program = DaypartingRampProgram(0, start=1.0, rate=10.0, cap=5.0)
        assert program.current_bid(23.0) == 5.0


class TestBudgetPacing:
    def test_stops_bidding_when_exhausted(self):
        inner = FixedBidProgram(0, 4.0)
        program = BudgetPacedProgram(0, inner, budget=5.0)
        assert len(program.bid(ctx())) == 1
        program.notify(ProgramNotification(auction_id=1, keyword="kw",
                                           slot=1, clicked=True,
                                           price_paid=5.0))
        assert program.remaining == 0.0
        assert len(program.bid(ctx(auction_id=2))) == 0

    def test_caps_bids_at_remaining(self):
        inner = FixedBidProgram(0, 4.0)
        program = BudgetPacedProgram(0, inner, budget=2.5)
        table = program.bid(ctx())
        assert table.rows[0].value == 2.5


class TestPositionTargeting:
    def test_raises_after_losing(self):
        program = PositionTargetProgram(0, target_slot=2,
                                        initial_bid=1.0, max_bid=10.0)
        program.notify(ProgramNotification(auction_id=1, keyword="kw"))
        assert program.current_bid == 1.25

    def test_lowers_when_above_target(self):
        program = PositionTargetProgram(0, target_slot=2,
                                        initial_bid=2.0, max_bid=10.0)
        program.notify(ProgramNotification(auction_id=1, keyword="kw",
                                           slot=1))
        assert program.current_bid == 1.6

    def test_holds_at_target(self):
        program = PositionTargetProgram(0, target_slot=2,
                                        initial_bid=2.0, max_bid=10.0)
        program.notify(ProgramNotification(auction_id=1, keyword="kw",
                                           slot=2))
        assert program.current_bid == 2.0

    def test_capped_at_max(self):
        program = PositionTargetProgram(0, target_slot=1,
                                        initial_bid=9.0, max_bid=10.0,
                                        adjust_factor=2.0)
        program.notify(ProgramNotification(auction_id=1, keyword="kw"))
        assert program.current_bid == 10.0
