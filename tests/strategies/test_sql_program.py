"""Tests for SQL-hosted bidding programs: native/SQL lockstep."""

import numpy as np
import pytest

from repro.strategies.base import AuctionContext, ProgramNotification, Query
from repro.strategies.roi_equalizer import ROIEqualizerProgram
from repro.strategies.sql_program import SqlBiddingProgram
from repro.strategies.state import KeywordRecord, ProgramState


def make_keywords():
    return [
        KeywordRecord(text="boot", formula="Click & Slot1", maxbid=5,
                      bid=4, value_per_click=2.0),
        KeywordRecord(text="shoe", formula="Click", maxbid=6, bid=3,
                      value_per_click=1.0),
    ]


def table_dict(table):
    return {str(row.formula): row.value for row in table}


class TestLockstep:
    def test_many_auctions_with_wins(self):
        """Native and SQL programs agree bid-for-bid over a random run."""
        rng = np.random.default_rng(11)
        native = ROIEqualizerProgram(
            0, ProgramState(target_spend_rate=3.0,
                            keywords=make_keywords()))
        hosted = SqlBiddingProgram(1, make_keywords(),
                                   target_spend_rate=3.0)
        for auction_id in range(1, 40):
            keyword = "boot" if rng.random() < 0.5 else "shoe"
            query = Query(text=keyword,
                          relevance={keyword: 1.0})
            ctx = AuctionContext(auction_id=auction_id,
                                 time=float(auction_id), query=query,
                                 num_slots=3)
            native_bids = table_dict(native.bid(ctx))
            hosted_bids = table_dict(hosted.bid(ctx))
            assert native_bids == pytest.approx(hosted_bids), auction_id
            if rng.random() < 0.4:
                price = float(rng.uniform(0.5, 4.0))
                note = ProgramNotification(
                    auction_id=auction_id, keyword=keyword, slot=1,
                    clicked=True, price_paid=price)
                native.notify(note)
                hosted.notify(note)


class TestHostedProgram:
    def test_bids_read_back_from_bids_table(self):
        hosted = SqlBiddingProgram(0, make_keywords(),
                                   target_spend_rate=3.0)
        query = Query(text="boot", relevance={"boot": 1.0})
        ctx = AuctionContext(auction_id=1, time=1.0, query=query,
                             num_slots=3)
        bids = table_dict(hosted.bid(ctx))
        assert set(bids) == {"Click & Slot1", "Click"}

    def test_quoted_keyword_text_escaped(self):
        keywords = [KeywordRecord(text="bo'ot", formula="Click", maxbid=5,
                                  bid=1, value_per_click=1.0)]
        hosted = SqlBiddingProgram(0, keywords, target_spend_rate=2.0)
        query = Query(text="bo'ot", relevance={"bo'ot": 1.0})
        ctx = AuctionContext(auction_id=1, time=1.0, query=query,
                             num_slots=2)
        bids = table_dict(hosted.bid(ctx))
        assert bids["Click"] == 2.0  # 1 + underspending increment

    def test_notify_updates_accounting(self):
        hosted = SqlBiddingProgram(0, make_keywords(),
                                   target_spend_rate=3.0)
        hosted.notify(ProgramNotification(
            auction_id=1, keyword="boot", slot=1, clicked=True,
            price_paid=2.5))
        assert hosted.amt_spent == 2.5
        boot = next(r for r in hosted.keywords if r.text == "boot")
        assert boot.spent == 2.5
        assert boot.gained == 2.0  # value_per_click

    def test_custom_program_source(self):
        source = """
        CREATE TRIGGER bid AFTER INSERT ON Query
        { UPDATE Bids SET value = 42; }
        """
        hosted = SqlBiddingProgram(0, make_keywords(),
                                   target_spend_rate=3.0,
                                   program_source=source)
        query = Query(text="boot", relevance={"boot": 1.0})
        ctx = AuctionContext(auction_id=1, time=1.0, query=query,
                             num_slots=2)
        bids = table_dict(hosted.bid(ctx))
        assert all(value == 42.0 for value in bids.values())
