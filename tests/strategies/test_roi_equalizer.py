"""Tests for the ROI-equalizing strategies (Section II-C, Figures 4-6)."""

import pytest

from repro.strategies.base import AuctionContext, ProgramNotification, Query
from repro.strategies.roi_equalizer import (
    ROIEqualizerProgram,
    SimpleROIPacer,
    make_roi_state,
)
from repro.strategies.state import KeywordRecord, ProgramState


def figure4_state(target=3.0):
    records = [
        KeywordRecord(text="boot", formula="Click & Slot1", maxbid=5,
                      bid=4, value_per_click=1.0),
        KeywordRecord(text="shoe", formula="Click", maxbid=6, bid=6,
                      value_per_click=1.0),
    ]
    records[0].gained, records[0].spent = 2.0, 1.0  # roi 2
    records[1].gained, records[1].spent = 1.0, 1.0  # roi 1
    return ProgramState(target_spend_rate=target, keywords=records)


def ctx(time, text="boot", relevance=None, auction_id=1):
    relevance = relevance or {"boot": 0.8, "shoe": 0.2}
    return AuctionContext(auction_id=auction_id, time=time,
                          query=Query(text=text, relevance=relevance),
                          num_slots=3)


class TestFigure4ToFigure6:
    def test_figure4_to_figure6(self):
        # On-target spending: no adjustment; Bids table is Figure 6.
        state = figure4_state()
        state.amt_spent = 6.0
        program = ROIEqualizerProgram(0, state)
        bids = {str(row.formula): row.value for row in program.bid(ctx(2.0))}
        assert bids == {"Click & Slot1": 4.0, "Click": 0.0}


class TestAdjustments:
    def test_underspending_increments_max_roi(self):
        state = figure4_state()
        program = ROIEqualizerProgram(0, state)
        program.bid(ctx(2.0))  # rate 0 < 3
        assert state.keyword("boot").bid == 5.0
        assert state.keyword("shoe").bid == 6.0

    def test_overspending_decrements_min_roi(self):
        state = figure4_state()
        state.amt_spent = 20.0
        program = ROIEqualizerProgram(0, state)
        program.bid(ctx(2.0))
        assert state.keyword("shoe").bid == 5.0
        assert state.keyword("boot").bid == 4.0

    def test_increment_respects_cap(self):
        state = figure4_state()
        state.keyword("boot").bid = 5.0  # at maxbid
        program = ROIEqualizerProgram(0, state)
        program.bid(ctx(2.0))
        assert state.keyword("boot").bid == 5.0

    def test_decrement_floors_at_zero(self):
        state = figure4_state()
        state.amt_spent = 20.0
        state.keyword("shoe").bid = 0.5
        program = ROIEqualizerProgram(0, state, step=1.0)
        program.bid(ctx(2.0))
        assert state.keyword("shoe").bid == 0.0

    def test_irrelevant_keywords_not_adjusted(self):
        state = figure4_state()
        program = ROIEqualizerProgram(0, state)
        program.bid(ctx(2.0, relevance={"shoe": 0.2}))  # boot irrelevant
        assert state.keyword("boot").bid == 4.0


class TestNotify:
    def test_spend_and_roi_accounting(self):
        state = figure4_state()
        program = ROIEqualizerProgram(0, state)
        program.notify(ProgramNotification(
            auction_id=1, keyword="boot", slot=1, clicked=True,
            price_paid=2.0))
        assert state.amt_spent == 2.0
        record = state.keyword("boot")
        assert record.spent == 3.0  # 1 (seeded) + 2
        assert record.gained == 3.0  # 2 (seeded) + value_per_click 1

    def test_losing_notification_is_noop(self):
        state = figure4_state()
        program = ROIEqualizerProgram(0, state)
        program.notify(ProgramNotification(auction_id=1, keyword="boot"))
        assert state.amt_spent == 0.0


class TestSimplePacer:
    def test_only_queried_keyword_moves(self):
        state = figure4_state()
        pacer = SimpleROIPacer(0, state)
        pacer.bid(ctx(2.0, text="boot"))
        assert state.keyword("boot").bid == 5.0
        assert state.keyword("shoe").bid == 6.0

    def test_bid_table_is_single_row(self):
        state = figure4_state()
        pacer = SimpleROIPacer(0, state)
        table = pacer.bid(ctx(2.0, text="shoe"))
        assert len(table) == 1
        assert str(table.rows[0].formula) == "Click"

    def test_unknown_keyword_yields_empty_table(self):
        state = figure4_state()
        pacer = SimpleROIPacer(0, state)
        assert len(pacer.bid(ctx(2.0, text="hat",
                                 relevance={"hat": 1.0}))) == 0

    def test_clamping_both_ends(self):
        state = make_roi_state([("kw", "Click", 2.0, 2.0)],
                               target_spend_rate=1.0,
                               initial_bid_fraction=0.5)
        pacer = SimpleROIPacer(0, state)
        query = Query(text="kw", relevance={"kw": 1.0})
        for t in range(1, 6):  # underspending: 1 -> 2 (cap)
            pacer.bid(AuctionContext(auction_id=t, time=float(t),
                                     query=query, num_slots=2))
        assert state.keyword("kw").bid == 2.0
        state.amt_spent = 1000.0  # overspending: decrement to 0
        for t in range(6, 12):
            pacer.bid(AuctionContext(auction_id=t, time=float(t),
                                     query=query, num_slots=2))
        assert state.keyword("kw").bid == 0.0


class TestStateValidation:
    def test_roi_prior_before_spend(self):
        record = KeywordRecord(text="k", formula="Click", maxbid=5, bid=1,
                               value_per_click=7.0)
        assert record.roi == 7.0
        record.record_spend(2.0, 3.0)
        assert record.roi == 1.5

    def test_bid_clamped_to_maxbid(self):
        record = KeywordRecord(text="k", formula="Click", maxbid=5, bid=9,
                               value_per_click=1.0)
        assert record.bid == 5.0

    def test_spend_rate_requires_positive_time(self):
        state = figure4_state()
        with pytest.raises(ValueError):
            state.spend_rate(0.0)

    def test_invalid_step_rejected(self):
        with pytest.raises(ValueError):
            ROIEqualizerProgram(0, figure4_state(), step=0.0)
        with pytest.raises(ValueError):
            SimpleROIPacer(0, figure4_state(), step=-1.0)
