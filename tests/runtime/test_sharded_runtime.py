"""The sharded runtime's contract: bit-identical to the engine.

The invariant PR 1 established for batching and PR 2 for the
vectorized RHTALU path, extended across process boundaries: under a
fixed seed, the multi-process runtime's merged records, prices,
account balances, and decision metrics equal the single-process
engine's *exactly* (float equality), for every supported method, for
worker counts that divide the population evenly, unevenly, and not at
all (empty shards).  Timing stamps and work accounting (TA access
counts) are execution-shape dependent and are the only exempt fields.
"""

from __future__ import annotations

import pytest

from repro.auction.metrics import summarize
from repro.bench import records_identical
from repro.runtime import ShardedAuctionRuntime
from repro.workloads import PaperWorkload, PaperWorkloadConfig

NUM_SLOTS = 5
NUM_KEYWORDS = 4
AUCTIONS = 40

METHODS = ("rh", "lp", "rhtalu")


def workload_config(num_advertisers: int,
                    seed: int = 11) -> PaperWorkloadConfig:
    return PaperWorkloadConfig(
        num_advertisers=num_advertisers, num_slots=NUM_SLOTS,
        num_keywords=NUM_KEYWORDS, seed=seed)


def sequential_run(config: PaperWorkloadConfig, method: str,
                   auctions: int = AUCTIONS, engine_seed: int = 5):
    engine = PaperWorkload(config).build_engine(
        method, engine_seed=engine_seed)
    records = engine.run(auctions)
    return records, engine.accounts


def sharded_run(config: PaperWorkloadConfig, method: str, workers: int,
                auctions: int = AUCTIONS, engine_seed: int = 5):
    with ShardedAuctionRuntime(config, method=method, workers=workers,
                               engine_seed=engine_seed) as runtime:
        records = runtime.run_batch(auctions)
    return records, runtime.accounts


def assert_equivalent(reference, sharded):
    ref_records, ref_accounts = reference
    got_records, got_accounts = sharded
    assert records_identical(ref_records, got_records)
    # Balances: every counter and every charged cent, exactly.
    assert ref_accounts.provider_revenue == got_accounts.provider_revenue
    assert set(ref_accounts.accounts) == set(got_accounts.accounts)
    for advertiser, account in ref_accounts.accounts.items():
        assert got_accounts.accounts[advertiser] == account
    # Decision metrics (timing means are execution-dependent).
    ref_summary = summarize(ref_records)
    got_summary = summarize(got_records)
    assert ref_summary.auctions == got_summary.auctions
    assert (ref_summary.total_expected_revenue
            == got_summary.total_expected_revenue)
    assert (ref_summary.total_realized_revenue
            == got_summary.total_realized_revenue)
    assert ref_summary.total_clicks == got_summary.total_clicks
    assert ref_summary.total_impressions == got_summary.total_impressions


class TestBitIdentity:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_even_population(self, method, workers):
        config = workload_config(num_advertisers=36)
        assert_equivalent(sequential_run(config, method),
                          sharded_run(config, method, workers))

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("workers", [2, 4])
    def test_uneven_shards(self, method, workers):
        # 37 % 4 != 0: shard sizes differ by one.
        config = workload_config(num_advertisers=37)
        assert_equivalent(sequential_run(config, method),
                          sharded_run(config, method, workers))

    @pytest.mark.parametrize("method", METHODS)
    def test_empty_shards(self, method):
        # More workers than advertisers: trailing shards own nobody.
        config = workload_config(num_advertisers=3, seed=2)
        assert_equivalent(sequential_run(config, method),
                          sharded_run(config, method, workers=5))

    def test_candidate_counts_match_for_rhtalu(self):
        # mean_candidates is part of the run metrics; RHTALU's sharded
        # TA must select the same candidate union.
        config = workload_config(num_advertisers=36)
        ref_records, _ = sequential_run(config, "rhtalu")
        got_records, _ = sharded_run(config, "rhtalu", workers=3)
        assert (summarize(ref_records).mean_candidates
                == summarize(got_records).mean_candidates)


class TestRuntimeBehaviour:
    def test_consecutive_batches_continue_the_stream(self):
        config = workload_config(num_advertisers=24)
        reference = sequential_run(config, "rh", auctions=50)
        with ShardedAuctionRuntime(config, method="rh", workers=3,
                                   engine_seed=5) as runtime:
            records = runtime.run_batch(20) + runtime.run_batch(30)
            accounts = runtime.accounts
        assert_equivalent(reference, (records, accounts))

    def test_records_carry_parallel_wd_stats(self):
        config = workload_config(num_advertisers=24)
        with ShardedAuctionRuntime(config, method="rh", workers=3,
                                   engine_seed=5) as runtime:
            records = runtime.run_batch(5)
        for record in records:
            stats = record.wd_stats
            assert stats is not None
            assert stats["num_leaves"] == 3
            assert stats["leaf_work_max"] >= 8 * NUM_SLOTS
            assert (stats["critical_path_work"]
                    == stats["leaf_work_max"]
                    + stats["merge_work_total"])

    def test_run_is_run_batch(self):
        config = workload_config(num_advertisers=12)
        reference = sequential_run(config, "rh", auctions=10)
        with ShardedAuctionRuntime(config, method="rh", workers=2,
                                   engine_seed=5) as runtime:
            records = runtime.run(10)
            accounts = runtime.accounts
        assert_equivalent(reference, (records, accounts))

    def test_batch_stats_track_keyword_groups(self):
        config = workload_config(num_advertisers=12)
        with ShardedAuctionRuntime(config, method="rh", workers=2,
                                   engine_seed=5) as runtime:
            runtime.run_batch(30)
            stats = runtime.last_batch_stats
        assert stats is not None
        assert stats.auctions == 30
        assert 1 <= stats.signatures <= NUM_KEYWORDS
        assert stats.groups >= stats.signatures

    def test_close_is_idempotent_and_final(self):
        config = workload_config(num_advertisers=12)
        runtime = ShardedAuctionRuntime(config, method="rh", workers=2,
                                        engine_seed=5)
        runtime.run_batch(3)
        runtime.close()
        runtime.close()
        # Shard state died with the workers; silently respawning fresh
        # shards against an advanced coordinator stream would break the
        # bit-identity contract, so running again must fail loudly.
        with pytest.raises(RuntimeError, match="closed"):
            runtime.run_batch(1)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ShardedAuctionRuntime(workload_config(8), workers=0)

    def test_profile_run_integration(self):
        from repro.bench import profile_run

        config = workload_config(num_advertisers=24)
        with ShardedAuctionRuntime(config, method="rh", workers=2,
                                   engine_seed=5) as runtime:
            records, profile = profile_run(runtime, 12, batch=True)
        assert profile.auctions == 12
        assert profile.batched
        assert "parallel_wd" in profile.extra
        assert profile.extra["parallel_wd"]["num_leaves"] == 2
        assert profile.pipeline_auctions_per_second > 0
