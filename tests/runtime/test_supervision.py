"""Worker failure detection and fleet lifecycle, at the runtime level.

The structured-failure contract: a dead worker raises
:class:`~repro.runtime.supervision.WorkerFailure` (naming the shard,
the reason, and the last message kind sent) instead of hanging the
coordinator or leaking a raw ``EOFError``; a *hung* worker trips the
``round_timeout``; ``close()`` escalates join → terminate → kill so
even a SIGTERM-ignoring worker cannot leak past it; and workers
orphaned by a coordinator that died without cleanup notice and exit on
their own.  The healing paths themselves are exercised end-to-end in
``tests/stream/test_supervision.py``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.runtime import (
    ShardedAuctionRuntime,
    SupervisionStats,
    WorkerFailure,
)
from repro.runtime.worker import STUBBORN_ENV
from repro.workloads import PaperWorkloadConfig

CONFIG = PaperWorkloadConfig(num_advertisers=12, num_slots=3,
                             num_keywords=3, seed=11)

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
SRC = os.path.join(REPO, "src")


def wait_until(predicate, timeout=20.0, tick=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(tick)
    return False


class TestFailureDetection:
    def test_dead_worker_raises_structured_failure(self):
        runtime = ShardedAuctionRuntime(CONFIG, method="rh",
                                        workers=2, engine_seed=5)
        with runtime:
            runtime.run_batch(2)
            victim = runtime._processes[1]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            with pytest.raises(WorkerFailure) as excinfo:
                # Possibly several auctions: the kill can land after
                # a send already buffered.
                runtime.run_batch(5)
        failure = excinfo.value
        assert failure.shard == 1
        assert failure.last_message in ("ShardTask", "spawn")
        assert "shard 1 failed" in str(failure)
        # Unsupervised failure is fatal: the runtime closed itself.
        assert runtime._processes is None
        with pytest.raises(RuntimeError, match="closed"):
            runtime.run_batch(1)

    def test_worker_failure_is_a_runtime_error(self):
        # Back-compat: callers catching RuntimeError keep working.
        assert issubclass(WorkerFailure, RuntimeError)
        failure = WorkerFailure(3, "process died (exitcode -9)",
                                "ShardTask")
        assert failure.shard == 3
        assert not failure.timed_out
        assert "last message sent: ShardTask" in str(failure)

    def test_hung_worker_trips_round_timeout(self):
        with ShardedAuctionRuntime(CONFIG, method="rh", workers=2,
                                   engine_seed=5,
                                   round_timeout=1.0) as runtime:
            runtime._join_timeout = 0.5
            runtime.run_batch(2)
            victim = runtime._processes[0]
            os.kill(victim.pid, signal.SIGSTOP)
            try:
                start = time.monotonic()
                with pytest.raises(WorkerFailure) as excinfo:
                    runtime.run_batch(1)
                elapsed = time.monotonic() - start
            finally:
                try:
                    # The failure path's close() normally reaps the
                    # stopped worker (SIGKILL works on stopped
                    # processes); this is belt-and-braces.
                    os.kill(victim.pid, signal.SIGCONT)
                except ProcessLookupError:
                    pass
            assert excinfo.value.timed_out
            assert excinfo.value.shard == 0
            assert "timeout" in excinfo.value.reason
            # Within the configured deadline plus scheduling slack.
            assert elapsed < 10.0

    def test_round_timeout_validation(self):
        with pytest.raises(ValueError, match="round_timeout"):
            ShardedAuctionRuntime(CONFIG, round_timeout=0.0)


class TestCloseEscalation:
    def test_close_kills_sigterm_ignoring_worker(self, monkeypatch):
        monkeypatch.setenv(STUBBORN_ENV, "1")
        runtime = ShardedAuctionRuntime(CONFIG, method="rh",
                                        workers=2, engine_seed=5)
        runtime._join_timeout = 0.5
        with runtime:
            runtime.run_batch(1)
            processes = list(runtime._processes)
            assert all(process.is_alive() for process in processes)
        # Shutdown is ignored, SIGTERM is ignored; only the final
        # SIGKILL escalation can have ended these.
        for process in processes:
            assert not process.is_alive()
            assert process.exitcode == -signal.SIGKILL

    def test_close_swallows_dead_worker_pipes(self):
        # close() must succeed (not raise BrokenPipeError) when the
        # fleet is already dead.
        runtime = ShardedAuctionRuntime(CONFIG, method="rh",
                                        workers=2, engine_seed=5)
        with runtime:
            runtime.run_batch(1)
            for process in runtime._processes:
                os.kill(process.pid, signal.SIGKILL)
            for process in runtime._processes:
                process.join(timeout=10)
        assert runtime._processes is None  # close() completed


ORPHAN_SCRIPT = textwrap.dedent("""
    import os, sys
    sys.path.insert(0, {src!r})
    from repro.runtime import ShardedAuctionRuntime
    from repro.runtime.messages import ShardTask
    from repro.workloads import PaperWorkloadConfig

    config = PaperWorkloadConfig(num_advertisers=12, num_slots=3,
                                 num_keywords=3, seed=11)
    runtime = ShardedAuctionRuntime(config, method="rh", workers=2,
                                    engine_seed=5)
    runtime._ensure_started()
    if {mid_round}:
        # Leave a round in flight: tasks sent, replies never read.
        runtime.auction_id += 1
        query = runtime._draw_query()
        for shard in range(runtime.plan.num_shards):
            runtime._send(shard, ShardTask(
                auction_id=runtime.auction_id, keyword=query.text,
                time=1.0))
    print(" ".join(str(p.pid) for p in runtime._processes),
          flush=True)
    os._exit(0)  # die without any cleanup: workers are now orphans
""")


class TestOrphanedWorkers:
    @pytest.mark.parametrize("mid_round", [False, True],
                             ids=["idle", "mid-round"])
    def test_workers_exit_after_coordinator_dies(self, mid_round):
        """Workers poll their parent's liveness and exit on their own
        when the coordinator vanishes without running close() — both
        while idle between rounds and while a round is in flight."""
        script = ORPHAN_SCRIPT.format(src=SRC, mid_round=mid_round)
        result = subprocess.run(
            [sys.executable, "-c", script], capture_output=True,
            text=True, timeout=120)
        assert result.returncode == 0, result.stderr
        pids = [int(token) for token in result.stdout.split()]
        assert len(pids) == 2

        def all_gone():
            for pid in pids:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    continue
                return False
            return True

        assert wait_until(all_gone, timeout=30.0), \
            f"orphaned workers still alive: {pids}"


class TestSupervisionStats:
    def test_to_dict_shape(self):
        stats = SupervisionStats()
        stats.worker_failures = 2
        stats.respawns = 1
        stats.reshards = 1
        stats.record_heal(0.25)
        stats.record_heal(0.75)
        payload = stats.to_dict()
        assert payload["worker_failures"] == 2
        assert payload["heals"] == 2
        assert payload["heal_seconds"] == 1.0
        assert payload["mean_heal_seconds"] == 0.5
        assert payload["max_heal_seconds"] == 0.75

    def test_empty_stats(self):
        payload = SupervisionStats().to_dict()
        assert payload["mean_heal_seconds"] == 0.0
        assert payload["max_heal_seconds"] == 0.0
