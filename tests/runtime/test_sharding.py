"""Shard planning: spans, ownership, and RNG substreams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matching.tree_network import tree_aggregate
from repro.runtime.sharding import ShardPlan, shard_bounds


class TestShardBounds:
    def test_even_split(self):
        assert shard_bounds(12, 4) == (0, 3, 6, 9, 12)

    def test_uneven_split_is_maximally_even(self):
        bounds = shard_bounds(10, 3)
        sizes = np.diff(bounds)
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_advertisers_leaves_empty_shards(self):
        plan = ShardPlan.plan(3, 5)
        assert sum(plan.shard_sizes()) == 3
        assert 0 in plan.shard_sizes()

    def test_matches_tree_network_leaf_split(self):
        # The runtime's workers scan the shards the Section III-E tree
        # simulation models, so its stats transfer.
        weights = np.arange(28.0).reshape(14, 2)
        for leaves in (1, 2, 3, 4, 7):
            expected = np.linspace(0, 14, leaves + 1).astype(int)
            assert shard_bounds(14, leaves) == tuple(expected)
            tree_aggregate(weights, num_leaves=leaves)  # same formula inside

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            shard_bounds(10, 0)
        with pytest.raises(ValueError):
            shard_bounds(-1, 2)


class TestOwnership:
    @pytest.mark.parametrize("n,shards", [(10, 3), (3, 5), (7, 1),
                                          (100, 8)])
    def test_owner_matches_spans(self, n, shards):
        plan = ShardPlan.plan(n, shards)
        for shard, (lo, hi) in enumerate(plan.spans()):
            for advertiser in range(lo, hi):
                assert plan.owner_of(advertiser) == shard

    def test_out_of_range_rejected(self):
        plan = ShardPlan.plan(4, 2)
        with pytest.raises(ValueError):
            plan.owner_of(4)
        with pytest.raises(ValueError):
            plan.owner_of(-1)


class TestSeedSequences:
    def test_deterministic_per_shard(self):
        plan = ShardPlan.plan(20, 4)
        first = [rng.random(4) for rng in plan.shard_rngs(seed=9)]
        second = [rng.random(4) for rng in plan.shard_rngs(seed=9)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_streams_differ_between_shards_and_seeds(self):
        plan = ShardPlan.plan(20, 3)
        streams = [rng.random(8) for rng in plan.shard_rngs(seed=1)]
        assert not np.allclose(streams[0], streams[1])
        other = plan.shard_rngs(seed=2)[0].random(8)
        assert not np.allclose(streams[0], other)

    def test_children_stable_under_shard_count(self):
        # Shard s's substream must not depend on how many other shards
        # exist (re-planning with more workers keeps old streams).
        small = ShardPlan.plan(20, 2).seed_sequences(5)
        large = ShardPlan.plan(20, 6).seed_sequences(5)
        for a, b in zip(small, large):
            assert a.spawn_key == b.spawn_key

    def test_decision_stream_is_not_a_shard_stream(self):
        # Bit-identity: the coordinator consumes default_rng(seed), the
        # sequential engine's stream; shard substreams must all differ
        # from it.
        plan = ShardPlan.plan(10, 2)
        decision = np.random.default_rng(3).random(8)
        for rng in plan.shard_rngs(seed=3):
            assert not np.allclose(rng.random(8), decision)
