"""Tests for workload generators, especially Section V fidelity."""

import numpy as np
import pytest

from repro.probability.separable import is_separable
from repro.workloads import (
    PaperWorkload,
    PaperWorkloadConfig,
    interval_click_matrix,
    random_separable_model,
    slot_probability_intervals,
)


class TestSlotIntervals:
    def test_paper_parameters(self):
        intervals = slot_probability_intervals(15)
        assert len(intervals) == 15
        # Disjoint, covering [0.1, 0.9], slot 1 highest.
        assert intervals[0][1] == pytest.approx(0.9)
        assert intervals[-1][0] == pytest.approx(0.1)
        for (lo, hi), (next_lo, next_hi) in zip(intervals,
                                                intervals[1:]):
            assert lo > next_lo
            assert lo == pytest.approx(next_hi)

    def test_validation(self):
        with pytest.raises(ValueError):
            slot_probability_intervals(0)
        with pytest.raises(ValueError):
            slot_probability_intervals(3, low=0.9, high=0.1)


class TestIntervalClickMatrix:
    def test_probabilities_in_slot_bands(self):
        rng = np.random.default_rng(0)
        matrix = interval_click_matrix(50, 15, rng)
        intervals = slot_probability_intervals(15)
        for j, (lo, hi) in enumerate(intervals):
            assert np.all(matrix[:, j] >= lo)
            assert np.all(matrix[:, j] <= hi)

    def test_click_probabilities_decrease_down_the_page(self):
        rng = np.random.default_rng(1)
        matrix = interval_click_matrix(20, 5, rng)
        assert np.all(np.diff(matrix, axis=1) < 0)

    def test_generally_not_separable(self):
        rng = np.random.default_rng(2)
        matrix = interval_click_matrix(10, 5, rng)
        assert not is_separable(matrix)


class TestPaperWorkload:
    def test_determinism(self):
        a = PaperWorkload(PaperWorkloadConfig(num_advertisers=20, seed=3))
        b = PaperWorkload(PaperWorkloadConfig(num_advertisers=20, seed=3))
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(a.click_matrix, b.click_matrix)
        assert np.array_equal(a.targets, b.targets)

    def test_paper_defaults(self):
        workload = PaperWorkload(PaperWorkloadConfig(num_advertisers=5))
        assert workload.config.num_slots == 15
        assert workload.config.num_keywords == 10
        assert workload.values.shape == (5, 10)
        assert np.all(workload.values <= 50.0)
        assert np.all(workload.values >= 0.0)

    def test_every_bidder_has_nonzero_value(self):
        workload = PaperWorkload(PaperWorkloadConfig(num_advertisers=50,
                                                     seed=9))
        assert np.all(workload.values.max(axis=1) > 0)

    def test_targets_within_paper_range(self):
        workload = PaperWorkload(PaperWorkloadConfig(num_advertisers=50,
                                                     seed=10))
        assert np.all(workload.targets >= 1.0)
        assert np.all(workload.targets
                      <= np.maximum(workload.values.max(axis=1), 1.0))

    def test_program_and_lazy_builders_agree_on_initial_bids(self):
        workload = PaperWorkload(PaperWorkloadConfig(num_advertisers=8,
                                                     num_slots=3,
                                                     num_keywords=2,
                                                     seed=11))
        programs = workload.build_programs()
        lazy = workload.build_lazy_state()
        for keyword in workload.keywords:
            lazy_bids = lazy.bids_for_keyword(keyword)
            for program in programs:
                record = program.state.keyword(keyword)
                assert lazy_bids[program.advertiser_id] == pytest.approx(
                    record.bid)

    def test_query_source_uniform_over_keywords(self):
        workload = PaperWorkload(PaperWorkloadConfig(num_advertisers=3,
                                                     num_keywords=4,
                                                     seed=12))
        source = workload.query_source()
        rng = np.random.default_rng(0)
        counts = {kw: 0 for kw in workload.keywords}
        for _ in range(2000):
            query = source(rng)
            counts[query.text] += 1
            assert query.relevance_of(query.text) == 1.0
        for count in counts.values():
            assert count == pytest.approx(500, abs=120)


class TestGenerators:
    def test_separable_generator_is_separable(self, rng):
        model = random_separable_model(10, 4, rng)
        assert is_separable(model.as_matrix())
        assert np.all(model.as_matrix() <= 1.0)
