"""Tests for expected-revenue matrices."""

import numpy as np
import pytest

from repro.lang.bids import BidsTable
from repro.lang.dependence import NotOneDependentError
from repro.matching.feedback_arc import above_event
from repro.core.revenue import (
    RevenueMatrix,
    build_revenue_matrix,
    click_bid_revenue_matrix,
    slot_click_bid_revenue_matrix,
)
from repro.probability.click_models import TabularClickModel
from repro.probability.purchase_models import (
    ConstantRatePurchaseModel,
    no_purchases,
)


@pytest.fixture
def click_model():
    return TabularClickModel(np.array([[0.8, 0.4],
                                       [0.6, 0.3]]))


class TestBuilders:
    def test_click_bids_cellwise(self, click_model):
        tables = {0: BidsTable.from_pairs([("Click", 10)]),
                  1: BidsTable.from_pairs([("Click", 20)])}
        revenue = build_revenue_matrix(tables, click_model,
                                       no_purchases(2, 2))
        assert revenue.assigned == pytest.approx(
            np.array([[8.0, 4.0], [12.0, 6.0]]))
        assert revenue.unassigned == pytest.approx(np.zeros(2))

    def test_fast_path_matches_general(self, click_model):
        tables = {0: BidsTable.from_pairs([("Click", 10)]),
                  1: BidsTable.from_pairs([("Click", 20)])}
        general = build_revenue_matrix(tables, click_model,
                                       no_purchases(2, 2))
        fast = click_bid_revenue_matrix([10.0, 20.0], click_model)
        assert np.allclose(general.assigned, fast.assigned)
        assert np.allclose(general.unassigned, fast.unassigned)

    def test_slot_click_fast_path(self, click_model):
        bids = np.array([[10.0, 0.0], [0.0, 20.0]])
        tables = {0: BidsTable.from_pairs([("Click & Slot1", 10)]),
                  1: BidsTable.from_pairs([("Click & Slot2", 20)])}
        general = build_revenue_matrix(tables, click_model,
                                       no_purchases(2, 2))
        fast = slot_click_bid_revenue_matrix(bids, click_model)
        assert np.allclose(general.assigned, fast.assigned)

    def test_unassigned_column_priced(self, click_model):
        # A bid that pays off when NOT shown in slot 1.
        tables = {0: BidsTable.from_pairs([("!Slot1", 6)]),
                  1: BidsTable()}
        revenue = build_revenue_matrix(tables, click_model,
                                       no_purchases(2, 2))
        assert revenue.assigned[0] == pytest.approx([0.0, 6.0])
        assert revenue.unassigned[0] == pytest.approx(6.0)
        # Adjusted weights: slot 1 costs the advertiser his 6.
        assert revenue.adjusted()[0] == pytest.approx([-6.0, 0.0])

    def test_purchase_bids(self, click_model):
        purchase_model = ConstantRatePurchaseModel(2, 2,
                                                   rate_given_click=0.5)
        tables = {0: BidsTable.from_pairs([("Purchase", 10)]),
                  1: BidsTable()}
        revenue = build_revenue_matrix(tables, click_model, purchase_model)
        assert revenue.assigned[0, 0] == pytest.approx(0.8 * 0.5 * 10)

    def test_two_dependent_bids_rejected(self, click_model):
        tables = {0: BidsTable(), 1: BidsTable()}
        tables[0].add(above_event(0, 1, 2), 5)
        with pytest.raises(NotOneDependentError):
            build_revenue_matrix(tables, click_model, no_purchases(2, 2))

    def test_validation_can_be_disabled_for_trusted_bids(self, click_model):
        tables = {0: BidsTable.from_pairs([("Click", 1)])}
        revenue = build_revenue_matrix(tables, click_model,
                                       no_purchases(2, 2), validate=False)
        assert revenue.num_advertisers == 2

    def test_out_of_range_ids_rejected(self, click_model):
        tables = {5: BidsTable.from_pairs([("Click", 1)])}
        with pytest.raises(ValueError):
            build_revenue_matrix(tables, click_model, no_purchases(2, 2))

    def test_bid_vector_length_checked(self, click_model):
        with pytest.raises(ValueError):
            click_bid_revenue_matrix([1.0], click_model)


class TestRevenueMatrix:
    def test_total_for_includes_unmatched_baseline(self):
        revenue = RevenueMatrix(assigned=np.array([[5.0], [3.0]]),
                                unassigned=np.array([1.0, 2.0]))
        # advertiser 0 matched to slot 1; advertiser 1 unassigned.
        assert revenue.total_for([(0, 0)]) == pytest.approx(5.0 + 2.0)
        assert revenue.total_for([]) == pytest.approx(3.0)

    def test_adjusted_and_baseline(self):
        revenue = RevenueMatrix(assigned=np.array([[5.0]]),
                                unassigned=np.array([2.0]))
        assert revenue.adjusted() == pytest.approx(np.array([[3.0]]))
        assert revenue.baseline() == pytest.approx(2.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RevenueMatrix(assigned=np.ones(3), unassigned=np.ones(3))
        with pytest.raises(ValueError):
            RevenueMatrix(assigned=np.ones((2, 2)),
                          unassigned=np.ones(3))
