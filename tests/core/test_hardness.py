"""Tests for the exact hard-case solver (Theorem 3 at the core API)."""

import numpy as np
import pytest

from repro.core.hardness import (
    UnsupportedHardBidError,
    exact_slot_only_wd,
    slot_only,
)
from repro.lang.bids import BidsTable
from repro.matching.feedback_arc import (
    FeedbackArcInstance,
    best_allocation_by_enumeration,
)


class TestSlotOnlyPredicate:
    def test_slot_bids_qualify(self):
        tables = {0: BidsTable.from_pairs([("Slot1 | Slot2", 2)])}
        assert slot_only(tables)

    def test_click_bids_do_not(self):
        tables = {0: BidsTable.from_pairs([("Click", 2)])}
        assert not slot_only(tables)


class TestExactSolver:
    def test_matches_gadget_enumeration(self):
        weights = np.array([[0.0, 3.0, 1.0],
                            [2.0, 0.0, 0.0],
                            [0.0, 4.0, 0.0]])
        instance = FeedbackArcInstance(weights=weights, num_slots=2)
        allocation, revenue = exact_slot_only_wd(instance.bids_tables(),
                                                 3, 2)
        _, expected = best_allocation_by_enumeration(instance)
        assert revenue == pytest.approx(expected)
        assert instance.revenue(allocation) == pytest.approx(expected)

    def test_plain_slot_bids(self):
        tables = {0: BidsTable.from_pairs([("Slot1", 5)]),
                  1: BidsTable.from_pairs([("Slot1", 3), ("Slot2", 2)])}
        allocation, revenue = exact_slot_only_wd(tables, 2, 2)
        assert revenue == pytest.approx(7.0)
        assert allocation.slot_of == {0: 1, 1: 2}

    def test_rejects_click_bids(self):
        tables = {0: BidsTable.from_pairs([("Click", 5)])}
        with pytest.raises(UnsupportedHardBidError):
            exact_slot_only_wd(tables, 1, 1)
