"""Tests for the 2^k heavyweight layout algorithm (Section III-F)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heavyweight_wd import (
    HeavyweightBidError,
    determine_winners_heavyweight,
    expected_revenue_of_allocation,
)
from repro.lang.bids import BidsTable
from repro.lang.formula import Atom
from repro.lang.predicates import slot
from repro.matching.brute_force import brute_force_allocation
from repro.probability.click_models import TabularClickModel
from repro.probability.heavyweight import PenaltyHeavyweightClickModel
from repro.probability.purchase_models import no_purchases
from repro.workloads.generators import random_bids_table


def _random_heavy_instance(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 5))
    k = int(rng.integers(1, 4))
    base = TabularClickModel(rng.uniform(0.1, 0.9, size=(n, k)))
    heavy_count = int(rng.integers(1, n))
    heavy = frozenset(
        int(x) for x in rng.choice(n, size=heavy_count, replace=False))
    model = PenaltyHeavyweightClickModel(base=base, penalty=0.6,
                                         exempt=heavy)
    purchase_model = no_purchases(n, k)
    tables = {}
    for advertiser in range(n):
        table = BidsTable()
        table.add("Click", float(rng.integers(1, 10)))
        if k >= 2 and rng.random() < 0.5:
            table.add("Slot1 & !HeavyInSlot2", float(rng.integers(0, 5)))
        if rng.random() < 0.3:
            table.add("HeavyInSlot1", float(rng.integers(0, 3)))
        tables[advertiser] = table
    return tables, heavy, model, purchase_model, n, k


class TestAgainstBruteForce:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_layout_decomposition_is_exact(self, seed):
        tables, heavy, model, purchase_model, n, k = \
            _random_heavy_instance(seed)
        result = determine_winners_heavyweight(tables, heavy, model,
                                               purchase_model)

        def objective(allocation):
            return expected_revenue_of_allocation(
                tables, allocation, heavy, model, purchase_model)

        _, oracle = brute_force_allocation(n, k, objective)
        assert result.expected_revenue == pytest.approx(oracle, abs=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_reported_layout_matches_allocation(self, seed):
        tables, heavy, model, purchase_model, _, _ = \
            _random_heavy_instance(seed)
        result = determine_winners_heavyweight(tables, heavy, model,
                                               purchase_model)
        realized = frozenset(
            slot_index
            for advertiser, slot_index in result.allocation.slot_of.items()
            if advertiser in heavy)
        assert realized == result.heavy_slots

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_revenue_recomputes(self, seed):
        tables, heavy, model, purchase_model, _, _ = \
            _random_heavy_instance(seed)
        result = determine_winners_heavyweight(tables, heavy, model,
                                               purchase_model)
        recomputed = expected_revenue_of_allocation(
            tables, result.allocation, heavy, model, purchase_model)
        assert result.expected_revenue == pytest.approx(recomputed)


class TestStats:
    def test_layout_counts(self):
        rng = np.random.default_rng(3)
        base = TabularClickModel(rng.uniform(0.1, 0.9, size=(3, 2)))
        model = PenaltyHeavyweightClickModel(base=base)
        tables = {i: BidsTable.from_pairs([("Click", 5)])
                  for i in range(3)}
        result = determine_winners_heavyweight(
            tables, frozenset({0}), model, no_purchases(3, 2))
        assert result.stats.layouts_considered == 4  # 2^2
        # Layout {1, 2} needs two heavyweights; only one exists.
        assert result.stats.layouts_feasible == 3
        assert result.stats.parallel_critical_matchings == 2

    def test_no_heavyweights_degenerates_to_plain_wd(self):
        rng = np.random.default_rng(4)
        base = TabularClickModel(rng.uniform(0.1, 0.9, size=(3, 2)))
        model = PenaltyHeavyweightClickModel(base=base, penalty=0.5)
        tables = {i: BidsTable.from_pairs([("Click", float(i + 1))])
                  for i in range(3)}
        result = determine_winners_heavyweight(
            tables, frozenset(), model, no_purchases(3, 2))
        # With no heavyweights only the empty layout is feasible and the
        # penalty never applies.
        assert result.heavy_slots == frozenset()
        from repro.core import determine_winners
        plain = determine_winners(tables, base, no_purchases(3, 2),
                                  method="hungarian")
        assert result.expected_revenue == pytest.approx(
            plain.expected_revenue)


class TestValidation:
    def test_cross_advertiser_bids_rejected(self):
        rng = np.random.default_rng(5)
        base = TabularClickModel(rng.uniform(0.1, 0.9, size=(2, 2)))
        model = PenaltyHeavyweightClickModel(base=base)
        tables = {0: BidsTable([]), 1: BidsTable([])}
        tables[0].add(Atom(slot(1, advertiser=1)), 5)
        with pytest.raises(HeavyweightBidError):
            determine_winners_heavyweight(tables, frozenset({0}), model,
                                          no_purchases(2, 2))
