"""Tests for parallel winner determination (Section III-E)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parallel import parallel_speedup_model, solve_parallel
from repro.core.revenue import RevenueMatrix
from repro.core.winner_determination import solve


def _random_revenue(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 40))
    k = int(rng.integers(1, 5))
    assigned = rng.uniform(0, 10, size=(n, k))
    unassigned = rng.uniform(0, 2, size=n)
    return RevenueMatrix(assigned=assigned, unassigned=unassigned)


class TestEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(1, 12))
    def test_matches_serial_rh(self, seed, leaves):
        revenue = _random_revenue(seed)
        serial = solve(revenue, method="rh")
        parallel = solve_parallel(revenue, num_leaves=leaves)
        assert parallel.result.expected_revenue == pytest.approx(
            serial.expected_revenue, abs=1e-9)

    def test_stats_present(self):
        revenue = _random_revenue(3)
        parallel = solve_parallel(revenue, num_leaves=4)
        assert parallel.stats.num_leaves >= 1
        assert parallel.stats.critical_path_work > 0

    def test_empty_population(self):
        revenue = RevenueMatrix(assigned=np.empty((0, 3)),
                                unassigned=np.empty(0))
        parallel = solve_parallel(revenue, num_leaves=4)
        assert parallel.result.allocation.slot_of == {}
        assert parallel.result.expected_revenue == 0.0


class TestSpeedupModel:
    def test_more_leaves_help_until_merge_dominates(self):
        speedups = [parallel_speedup_model(100_000, 15, p)
                    for p in (1, 8, 64, 512)]
        assert speedups[0] == pytest.approx(1.0)
        assert speedups[1] > speedups[0]
        assert speedups[2] > speedups[1]

    def test_tiny_population_gains_nothing(self):
        assert parallel_speedup_model(16, 15, 1024) < 2.0

    def test_invalid_leaves(self):
        with pytest.raises(ValueError):
            parallel_speedup_model(10, 2, 0)
