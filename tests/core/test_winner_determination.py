"""Cross-method winner-determination tests (Theorem 2 in practice)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.revenue import RevenueMatrix, build_revenue_matrix
from repro.core.validation import WdInvariantError, check_result, results_agree
from repro.core.winner_determination import (
    METHODS,
    SubsetWindowSolver,
    determine_winners,
    solve,
    solve_on_subset,
)
from repro.lang.dependence import NotOneDependentError
from repro.lang.bids import BidsTable
from repro.matching.feedback_arc import above_event
from repro.probability.click_models import TabularClickModel
from repro.probability.purchase_models import ConstantRatePurchaseModel
from repro.probability.separable import NotSeparableError
from repro.workloads.generators import (
    random_bid_population,
    random_click_model,
    random_separable_model,
)

EXACT_METHODS = ("lp", "hungarian", "rh", "brute")


def _random_instance(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 6))
    k = int(rng.integers(1, 4))
    click_model = random_click_model(n, k, rng)
    purchase_model = ConstantRatePurchaseModel(n, k, rate_given_click=0.3)
    tables = random_bid_population(n, rng)
    return tables, click_model, purchase_model


class TestCrossMethodEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_all_exact_methods_agree(self, seed):
        tables, click_model, purchase_model = _random_instance(seed)
        results = [determine_winners(tables, click_model, purchase_model,
                                     method=method)
                   for method in EXACT_METHODS]
        for result in results[1:]:
            assert results_agree(results[0], result), (
                results[0].expected_revenue, result.expected_revenue,
                result.method)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_results_pass_validation(self, seed):
        tables, click_model, purchase_model = _random_instance(seed)
        revenue = build_revenue_matrix(tables, click_model, purchase_model)
        for method in EXACT_METHODS:
            check_result(solve(revenue, method=method), revenue)


class TestSeparableMethod:
    def test_matches_hungarian_on_separable_instances(self, rng):
        for _ in range(20):
            n, k = int(rng.integers(1, 10)), int(rng.integers(1, 4))
            model = random_separable_model(n, k, rng)
            bids = rng.uniform(0, 10, size=n)
            tables = {i: BidsTable.from_pairs([("Click", bids[i])])
                      for i in range(n)}
            purchase_model = ConstantRatePurchaseModel(n, k, 0.0)
            fast = determine_winners(tables, model, purchase_model,
                                     method="separable")
            exact = determine_winners(tables, model, purchase_model,
                                      method="hungarian")
            assert results_agree(fast, exact)

    def test_rejects_non_separable(self):
        click_model = TabularClickModel(np.array([[0.7, 0.4],
                                                  [0.6, 0.3]]))
        tables = {0: BidsTable.from_pairs([("Click", 1)]),
                  1: BidsTable.from_pairs([("Click", 1)])}
        purchase_model = ConstantRatePurchaseModel(2, 2, 0.0)
        with pytest.raises(NotSeparableError):
            determine_winners(tables, click_model, purchase_model,
                              method="separable")

    def test_rejects_negative_adjusted_weights(self):
        revenue = RevenueMatrix(assigned=np.array([[1.0]]),
                                unassigned=np.array([5.0]))
        with pytest.raises(NotSeparableError):
            solve(revenue, method="separable")


class TestDispatch:
    def test_unknown_method(self):
        revenue = RevenueMatrix(assigned=np.ones((1, 1)),
                                unassigned=np.zeros(1))
        with pytest.raises(ValueError):
            solve(revenue, method="quantum")

    def test_methods_constant_lists_all(self):
        assert set(METHODS) == {"lp", "hungarian", "rh", "separable",
                                "brute"}

    def test_two_dependent_bids_rejected_up_front(self):
        rng = np.random.default_rng(0)
        click_model = random_click_model(2, 2, rng)
        purchase_model = ConstantRatePurchaseModel(2, 2, 0.0)
        tables = {0: BidsTable(), 1: BidsTable()}
        tables[0].add(above_event(0, 1, 2), 4)
        with pytest.raises(NotOneDependentError):
            determine_winners(tables, click_model, purchase_model)


class TestUnassignedPayoffs:
    """Bids that reward NOT being shown are handled by the baseline."""

    def test_not_slot1_bid_prefers_unassignment(self):
        click_model = TabularClickModel(np.array([[0.9]]))
        purchase_model = ConstantRatePurchaseModel(1, 1, 0.0)
        # Pays 10 for not holding slot 1; only 0.9 expected from a click
        # bid of 1: leaving the advertiser out is optimal.
        tables = {0: BidsTable.from_pairs([("!Slot1", 10), ("Click", 1)])}
        result = determine_winners(tables, click_model, purchase_model)
        assert result.allocation.slot_of == {}
        assert result.expected_revenue == pytest.approx(10.0)

    def test_mixed_population(self):
        click_model = TabularClickModel(np.array([[0.5], [0.5]]))
        purchase_model = ConstantRatePurchaseModel(2, 1, 0.0)
        tables = {0: BidsTable.from_pairs([("!Slot1", 3)]),
                  1: BidsTable.from_pairs([("Click", 10)])}
        result = determine_winners(tables, click_model, purchase_model)
        assert result.allocation.slot_of == {1: 1}
        assert result.expected_revenue == pytest.approx(3.0 + 5.0)


class TestValidationHelpers:
    def test_check_result_catches_tampering(self):
        revenue = RevenueMatrix(assigned=np.array([[5.0]]),
                                unassigned=np.zeros(1))
        result = solve(revenue, method="hungarian")
        tampered = type(result)(allocation=result.allocation,
                                matching=result.matching,
                                expected_revenue=result.expected_revenue
                                + 1.0,
                                method=result.method)
        with pytest.raises(WdInvariantError):
            check_result(tampered, revenue)


class TestSubsetWindowSolver:
    """The micro-batch window cache must be bit-identical to
    :func:`solve_on_subset` — same pairs, same floats, same
    translation maps — for every method and membership."""

    def _assert_exact(self, cached, uncached):
        assert cached.matching.pairs == uncached.matching.pairs
        assert cached.matching.total_weight \
            == uncached.matching.total_weight
        assert cached.expected_revenue == uncached.expected_revenue
        assert cached.slot_of == uncached.slot_of
        assert cached.id_map == uncached.id_map
        assert np.array_equal(cached.weights, uncached.weights)
        assert np.array_equal(cached.candidate_bids,
                              uncached.candidate_bids)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31 - 1),
           st.sampled_from(["rh", "lp", "hungarian"]))
    def test_bit_identical_to_solve_on_subset(self, seed, method):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 12))
        k = int(rng.integers(1, 4))
        click = rng.random((n, k))
        size = int(rng.integers(0, n + 1))
        active = np.sort(rng.choice(n, size=size, replace=False))
        solver = SubsetWindowSolver(click, active, method=method)
        for _ in range(3):  # reused caches across in-window queries
            bids = rng.random(n) * 10.0
            self._assert_exact(solver.solve(bids),
                               solve_on_subset(click, bids, active,
                                               method=method))

    def test_empty_membership(self):
        click = np.random.default_rng(0).random((4, 2))
        solver = SubsetWindowSolver(click, np.array([], dtype=int))
        result = solver.solve(np.ones(4))
        assert result.matching.pairs == ()
        assert result.expected_revenue == 0.0
        assert result.id_map == []

    def test_unsupported_method_raises(self):
        click = np.ones((2, 1))
        solver = SubsetWindowSolver(click, np.array([0, 1]),
                                    method="separable")
        with pytest.raises(ValueError, match="window method"):
            solver.solve(np.ones(2))
