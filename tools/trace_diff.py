#!/usr/bin/env python
"""Diff two auction traces and report per-advertiser accounting drift.

The verification half of the replay workflow (see
``docs/operations.md``): record a stream's trace, replay the captured
event log against a candidate build (``repro stream --replay``), and
hold the two traces to each other::

    python tools/trace_diff.py baseline_trace.jsonl candidate_trace.jsonl
    python tools/trace_diff.py --json baseline.jsonl candidate.jsonl
    python tools/trace_diff.py --align full_baseline.jsonl recovered.jsonl

Exit status 0 when the traces are identical on every deterministic
outcome field (allocations, clicks, prices, revenues), 1 when anything
drifted; the report names each drifting advertiser with its charged /
wins / clicks deltas and pinpoints the first diverging record.  CI
gates on the exit status.  ``--align`` first trims the baseline to the
candidate's auction-id span — the crash-recovery audit, where the
recovered trace (``repro recover --trace``) covers only the suffix
from the restored checkpoint onward (see the runbook in
``docs/operations.md``).  Thin wrapper over
:mod:`repro.stream.replay`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.auction.trace import read_trace  # noqa: E402
from repro.stream.replay import (  # noqa: E402
    align_traces,
    diff_trace_files,
    diff_traces,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="recorded JSONL auction trace")
    parser.add_argument("candidate",
                        help="replayed JSONL auction trace to verify")
    parser.add_argument("--json", action="store_true",
                        help="emit the full diff as JSON instead of "
                             "the human-readable report")
    parser.add_argument("--align", action="store_true",
                        help="trim the baseline to the candidate's "
                             "auction-id span before diffing (the "
                             "crash-recovery audit: the recovered "
                             "trace is a suffix)")
    args = parser.parse_args(argv)

    if args.align:
        aligned, candidate = align_traces(read_trace(args.baseline),
                                          read_trace(args.candidate))
        diff = diff_traces(aligned, candidate)
    else:
        diff = diff_trace_files(args.baseline, args.candidate)
    if args.json:
        print(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
    else:
        print(diff.format_report())
    return 0 if diff.identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
