#!/usr/bin/env python
"""Diff two auction traces and report per-advertiser accounting drift.

The verification half of the replay workflow (see
``docs/operations.md``): record a stream's trace, replay the captured
event log against a candidate build (``repro stream --replay``), and
hold the two traces to each other::

    python tools/trace_diff.py baseline_trace.jsonl candidate_trace.jsonl
    python tools/trace_diff.py --json baseline.jsonl candidate.jsonl

Exit status 0 when the traces are identical on every deterministic
outcome field (allocations, clicks, prices, revenues), 1 when anything
drifted; the report names each drifting advertiser with its charged /
wins / clicks deltas and pinpoints the first diverging record.  Thin
wrapper over :mod:`repro.stream.replay`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.stream.replay import diff_trace_files  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="recorded JSONL auction trace")
    parser.add_argument("candidate",
                        help="replayed JSONL auction trace to verify")
    parser.add_argument("--json", action="store_true",
                        help="emit the full diff as JSON instead of "
                             "the human-readable report")
    args = parser.parse_args(argv)

    diff = diff_trace_files(args.baseline, args.candidate)
    if args.json:
        print(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
    else:
        print(diff.format_report())
    return 0 if diff.identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
