#!/usr/bin/env python
"""Render a human-readable report from observability sidecars.

The standalone twin of ``repro obs report`` (same renderer), for
pipelines that have the sidecar files but not the package on path::

    python tools/obs_report.py --metrics metrics.jsonl
    python tools/obs_report.py --trace spans.jsonl --top 10
    python tools/obs_report.py --metrics m.jsonl --trace t.jsonl

Sections: counter/gauge tables and latency percentiles from the
metrics summary, merged worker counters when the run was sharded, and
per-event-kind / per-stage totals plus the slowest-N events from the
span trace.  Thin wrapper over :mod:`repro.obs.report`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import render_report  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics", default=None, metavar="FILE",
                        help="a --metrics-out JSONL sidecar")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="a --trace-spans JSONL sidecar")
    parser.add_argument("--top", type=int, default=5, metavar="N",
                        help="how many slowest events to list "
                             "(default 5)")
    args = parser.parse_args(argv)

    if not args.metrics and not args.trace:
        parser.error("nothing to report: give --metrics and/or "
                     "--trace")
    for line in render_report(metrics_path=args.metrics,
                              trace_path=args.trace, top=args.top):
        print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
