#!/usr/bin/env python
"""Validate observability sidecars written by ``repro stream``.

The CI gate for the metrics/span-trace schemas (see
``docs/observability.md``): run a stream with ``--metrics-out`` /
``--trace-spans`` and hold the sidecars to their formats::

    python tools/validate_obs.py --metrics metrics.jsonl
    python tools/validate_obs.py --trace spans.jsonl --events 400
    python tools/validate_obs.py --metrics m.jsonl --trace t.jsonl

``--events`` additionally asserts span coverage: every event seq in
``range(events)`` has exactly one root span (the "every applied event
exactly once" guarantee).  Exit status 0 when every given sidecar is
clean, 1 when anything is malformed; each problem prints on its own
line.  Thin wrapper over :mod:`repro.obs.schema`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import (  # noqa: E402
    validate_metrics_file,
    validate_trace_file,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics", default=None, metavar="FILE",
                        help="a --metrics-out JSONL sidecar")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="a --trace-spans JSONL sidecar")
    parser.add_argument("--events", type=int, default=None,
                        metavar="N",
                        help="with --trace: assert one root span per "
                             "seq in range(N)")
    args = parser.parse_args(argv)

    if not args.metrics and not args.trace:
        parser.error("nothing to validate: give --metrics "
                     "and/or --trace")

    problems: list[str] = []
    if args.metrics:
        problems += [f"{args.metrics}: {problem}" for problem
                     in validate_metrics_file(args.metrics)]
    if args.trace:
        problems += [f"{args.trace}: {problem}" for problem
                     in validate_trace_file(
                         args.trace, expected_events=args.events)]
    for problem in problems:
        print(problem)
    if not problems:
        checked = [path for path in (args.metrics, args.trace) if path]
        print(f"ok: {', '.join(checked)}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
