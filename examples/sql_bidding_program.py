#!/usr/bin/env python
"""Bidding programs as SQL, hosted on the sqlmini engine (Section II-B).

Runs the paper's Figure 5 ROI-equalizing program *verbatim* for one
advertiser — plus a custom dayparting program written from scratch in
the same dialect — inside a live auction loop, printing the private
Keywords/Bids tables as the trigger rewrites them.

Run: ``python examples/sql_bidding_program.py``
"""

import numpy as np

from repro.auction import AuctionEngine, EngineConfig
from repro.probability import TabularClickModel, no_purchases
from repro.strategies import (
    FIGURE5_PROGRAM,
    KeywordRecord,
    Query,
    SqlBiddingProgram,
)

# A second program in the same dialect: bid low in the morning, ramp up
# with the shared `time` variable, never exceeding maxbid (Section IV-A's
# "same strategy, advertiser-specific parameters" example).
DAYPARTING_PROGRAM = """
CREATE TRIGGER bid AFTER INSERT ON Query
{
  UPDATE Keywords
  SET bid = LEAST(maxbid, 1 + time * rampRate)
  WHERE relevance > 0;

  UPDATE Bids
  SET value = ( SELECT SUM( K.bid )
                FROM Keywords K
                WHERE K.relevance > 0.7
                  AND K.formula = Bids.formula );
}
"""


def keywords(seed: float) -> list[KeywordRecord]:
    return [
        KeywordRecord(text="boot", formula="Click", maxbid=9 + seed,
                      bid=4, value_per_click=10 + seed),
        KeywordRecord(text="shoe", formula="Click", maxbid=7 + seed,
                      bid=3, value_per_click=8 + seed),
    ]


def main() -> None:
    roi_program = SqlBiddingProgram(0, keywords(0.0),
                                    target_spend_rate=2.0,
                                    program_source=FIGURE5_PROGRAM)
    ramp_program = SqlBiddingProgram(1, keywords(1.0),
                                     target_spend_rate=3.0,
                                     program_source=DAYPARTING_PROGRAM)
    ramp_program.database.set_variable("rampRate", 0.4)

    click_model = TabularClickModel(np.array([[0.7, 0.4],
                                              [0.6, 0.3]]))

    def query_source(rng: np.random.Generator) -> Query:
        text = "boot" if rng.random() < 0.5 else "shoe"
        return Query(text=text, relevance={text: 1.0})

    engine = AuctionEngine(
        click_model=click_model,
        purchase_model=no_purchases(2, 2),
        query_source=query_source,
        config=EngineConfig(num_slots=2, method="rh", seed=3),
        programs=[roi_program, ramp_program])

    print("running 12 auctions with two SQL-hosted programs...\n")
    for _ in range(12):
        record = engine.run_auction()
        occupant_list = record.allocation.as_slot_list()
        print(f"auction {record.auction_id:2d}  query={record.keyword:4s}"
              f"  slots={occupant_list}"
              f"  clicked={sorted(record.outcome.clicked)}"
              f"  revenue={record.realized_revenue:.2f}")

    print("\nadvertiser 0 (Figure 5 ROI equalizer) — Keywords table:")
    for row in roi_program.database.rows("Keywords"):
        print(f"  {row['text']:5s} bid={row['bid']:-6.2f} "
              f"maxbid={row['maxbid']:-6.2f} roi={row['roi']:.2f}")
    print(f"  amtSpent={roi_program.amt_spent:.2f} "
          f"(target rate {roi_program.target_spend_rate})")

    print("\nadvertiser 1 (SQL dayparting ramp) — Bids table:")
    for row in ramp_program.database.rows("Bids"):
        print(f"  {row['formula']:6s} -> {row['value']}")

    print("\nthe same Figure 5 program text the paper prints:")
    print(FIGURE5_PROGRAM)


if __name__ == "__main__":
    main()
