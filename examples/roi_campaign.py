#!/usr/bin/env python
"""An ROI-equalizing campaign: the Section V workload end to end.

Simulates a population of ROI pacing bidders (the paper's benchmark
strategy) through thousands of auctions, showing:

* spending rates converging toward each advertiser's target (the whole
  point of the heuristic);
* RH and RHTALU producing identical auction streams while RHTALU runs
  programs lazily;
* the provider estimating click probabilities back out of its logs and
  converging to the generating model (Section III-A's "can estimate").

Run: ``python examples/roi_campaign.py``
"""

import numpy as np

from repro.auction import AuctionEngine, EngineConfig, summarize
from repro.probability import estimate_click_model, estimation_error
from repro.workloads import PaperWorkload, PaperWorkloadConfig

NUM_ADVERTISERS = 120
NUM_SLOTS = 8
NUM_KEYWORDS = 5
AUCTIONS = 3000


def build_engine(workload: PaperWorkload, method: str,
                 record_log: bool = False) -> AuctionEngine:
    kwargs = dict(
        click_model=workload.click_model(),
        purchase_model=workload.purchase_model(),
        query_source=workload.query_source(),
        config=EngineConfig(num_slots=NUM_SLOTS, method=method, seed=11,
                            record_log=record_log),
    )
    if method == "rhtalu":
        return AuctionEngine(rhtalu=workload.build_rhtalu(), **kwargs)
    return AuctionEngine(programs=workload.build_programs(), **kwargs)


def main() -> None:
    workload = PaperWorkload(PaperWorkloadConfig(
        num_advertisers=NUM_ADVERTISERS, num_slots=NUM_SLOTS,
        num_keywords=NUM_KEYWORDS, seed=42))

    # -- identical auction streams, lazy vs eager ------------------------
    rh_engine = build_engine(workload, "rh", record_log=True)
    lazy_engine = build_engine(workload, "rhtalu")
    rh_records = rh_engine.run(AUCTIONS)
    lazy_records = lazy_engine.run(AUCTIONS)
    drift = max(abs(a.expected_revenue - b.expected_revenue)
                for a, b in zip(rh_records, lazy_records))
    print(f"RH vs RHTALU: {AUCTIONS} auctions, "
          f"max expected-revenue drift {drift:.2e}")
    print("  rh    :", summarize(rh_records))
    print("  rhtalu:", summarize(lazy_records))

    # -- pacing: spending rates vs targets -------------------------------
    programs = rh_engine.programs
    print("\npacing check (spend rate vs target, winners only):")
    rows = []
    for program in programs:
        spent = program.state.amt_spent
        if spent <= 0:
            continue
        rate = spent / AUCTIONS
        rows.append((program.advertiser_id, rate,
                     program.state.target_spend_rate))
    rows.sort(key=lambda row: -row[1])
    over = sum(1 for _, rate, target in rows if rate > target)
    print(f"  {len(rows)} advertisers spent money; "
          f"{over} finished above target")
    for advertiser, rate, target in rows[:5]:
        bar = "#" * int(20 * min(rate / target, 2.0) / 2)
        print(f"  adv {advertiser:3d}  rate {rate:7.3f}  "
              f"target {target:7.3f}  {bar}")

    # -- the provider learns its click model back ------------------------
    assert rh_engine.interaction_log is not None
    estimated = estimate_click_model(rh_engine.interaction_log)
    truth = workload.click_model()
    # Only compare cells with enough observations to mean anything.
    impressions = rh_engine.interaction_log.impressions
    observed = impressions >= 30
    errors = np.abs(estimated.matrix - truth.matrix)[observed]
    print(f"\nestimation: {observed.sum()} (advertiser, slot) cells with "
          f">=30 impressions")
    if errors.size:
        print(f"  mean |error| on observed cells: {errors.mean():.3f}")
    print(f"  max |error| over all cells (incl. unobserved priors): "
          f"{estimation_error(estimated, truth):.3f}")


if __name__ == "__main__":
    main()
