#!/usr/bin/env python
"""Brand positioning: what expressive bids buy you (Section I-A).

Compares two worlds on the same population and click model:

* **single-feature**: every advertiser can only bid a value on Click
  (today's auctions);
* **multi-feature**: the brand advertisers use slot-position bids —
  "top slot or nothing" and "top-or-bottom, never the middle".

Shows that with expressive bids (a) winner determination respects the
brand constraints exactly, and (b) the provider's expected revenue
*increases*, because advertisers can finally pay for what they actually
value.

Run: ``python examples/brand_positioning.py``
"""

import numpy as np

from repro.core import determine_winners
from repro.lang import BidsTable
from repro.probability import TabularClickModel, no_purchases

NUM_SLOTS = 4
NAMES = ["Discounter", "BrandLeader", "AwarenessBuyer", "Regular",
         "SmallShop"]


def click_model() -> TabularClickModel:
    rng = np.random.default_rng(8)
    base = np.sort(rng.uniform(0.15, 0.75, size=(5, NUM_SLOTS)),
                   axis=1)[:, ::-1]
    return TabularClickModel(base)


def single_feature_bids() -> dict[int, BidsTable]:
    # Everyone compresses their preferences into one click value.
    values = [9.0, 10.0, 6.0, 7.0, 4.0]
    return {i: BidsTable.from_pairs([("Click", value)])
            for i, value in enumerate(values)}


def multi_feature_bids() -> dict[int, BidsTable]:
    return {
        0: BidsTable.from_pairs([("Click", 9)]),
        # BrandLeader: a click is worth 10 only in the top slot; being
        # seen anywhere below dilutes the brand (worth nothing).
        1: BidsTable.from_pairs([("Click & Slot1", 16)]),
        # AwarenessBuyer: pays for edge-of-list impressions, clicks are
        # secondary.
        2: BidsTable.from_pairs([(f"Slot1 | Slot{NUM_SLOTS}", 5),
                                 ("Click", 2)]),
        3: BidsTable.from_pairs([("Click", 7)]),
        4: BidsTable.from_pairs([("Click", 4)]),
    }


def describe(label: str, tables: dict[int, BidsTable]) -> float:
    model = click_model()
    result = determine_winners(tables, model, no_purchases(5, NUM_SLOTS),
                               method="rh")
    print(f"{label}:")
    for slot_index, advertiser in enumerate(
            result.allocation.as_slot_list(), start=1):
        occupant = "-" if advertiser is None else NAMES[advertiser]
        print(f"  slot {slot_index}: {occupant}")
    print(f"  expected revenue: {result.expected_revenue:.3f}\n")
    return result.expected_revenue


def main() -> None:
    legacy = describe("single-feature world (Click bids only)",
                      single_feature_bids())
    expressive = describe("multi-feature world (slot-position bids)",
                          multi_feature_bids())

    tables = multi_feature_bids()
    model = click_model()
    result = determine_winners(tables, model, no_purchases(5, NUM_SLOTS))
    leader_slot = result.allocation.slot_for(1)
    awareness_slot = result.allocation.slot_for(2)
    print("constraint checks:")
    print(f"  BrandLeader slot: {leader_slot} "
          "(must be 1 or unassigned)")
    assert leader_slot in (None, 1)
    print(f"  AwarenessBuyer slot: {awareness_slot} "
          f"(edge slots are 1 and {NUM_SLOTS})")
    print(f"\nprovider revenue: {legacy:.3f} -> {expressive:.3f} "
          f"({100 * (expressive / legacy - 1):+.1f}% from expressiveness)")


if __name__ == "__main__":
    main()
