#!/usr/bin/env python
"""Online serving: live advertiser churn with a snapshot/resume.

The streaming mirror of ``examples/sharded_run.py``:

1. describe a Section V workload as an advertiser-id *universe*;
2. generate a deterministic event stream — genesis joins, then query
   arrivals interleaved with advertisers joining, leaving, editing bid
   programs, and topping up budgets;
3. serve it through :class:`~repro.stream.service
   .OnlineAuctionService`, which maintains the array state
   *incrementally* as the population churns;
4. checkpoint the service mid-stream with a snapshot, restore it, and
   finish — then verify the spliced run is bit-identical to an
   uninterrupted one (snapshots are full state, not approximations);
5. watch one hand-written join change auction outcomes immediately.

Run: ``python examples/online_service.py``
"""

from repro.auction.metrics import summarize
from repro.bench import records_identical
from repro.stream import AdvertiserJoin, OnlineAuctionService, QueryArrival
from repro.workloads import (
    ChurnStreamConfig,
    PaperWorkload,
    PaperWorkloadConfig,
    generate_stream,
)


def main() -> None:
    # -- 1-2. A universe and a churning event stream ---------------------
    config = PaperWorkloadConfig(num_advertisers=120, num_slots=6,
                                 num_keywords=5, seed=42)
    workload = PaperWorkload(config)
    stream = generate_stream(workload, ChurnStreamConfig(
        num_events=250, churn_rate=0.2, genesis=60, min_active=10,
        seed=11))
    counts = stream.counts_by_kind()
    print("stream        :", " ".join(
        f"{kind}={count}" for kind, count in sorted(counts.items())
        if count))

    # -- 3. One uninterrupted serve (the reference) ----------------------
    with OnlineAuctionService(config, method="rh",
                              engine_seed=7) as service:
        reference = service.run(stream)
        print("uninterrupted :", summarize(reference))
        print("active at end :",
              len(service.active_advertisers()), "advertisers")

    # -- 4. Snapshot mid-stream, restore, finish -------------------------
    half = len(stream) // 2
    with OnlineAuctionService(config, method="rh",
                              engine_seed=7) as first_half:
        head = first_half.run(stream.prefix(half))
        snapshot = first_half.snapshot()
    resumed = OnlineAuctionService.restore(snapshot)
    tail = resumed.run(stream[half:])
    resumed.close()
    spliced = head + tail
    print("snapshot splice identical:",
          records_identical(reference, spliced))

    # -- 5. A join visibly changes outcomes ------------------------------
    with OnlineAuctionService(config, method="rh",
                              engine_seed=7) as live:
        live.run(stream.prefix(half))
        whale = AdvertiserJoin(advertiser=119, target=1e6,
                               bids=(500.0,) * 5,
                               maxbids=(500.0,) * 5,
                               values=(500.0,) * 5, budget=1e6)
        live.process(whale)
        record = live.process(QueryArrival("kw0"))
        print("whale joins mid-stream and takes slot",
              record.allocation.slot_of[119])


if __name__ == "__main__":
    main()
