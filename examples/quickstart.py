#!/usr/bin/env python
"""Quickstart: multi-feature bids, winner determination, pricing.

Walks the core API in five steps:

1. write expressive bids (Boolean formulas over Click / Purchase / Slot);
2. give the provider click & purchase probability models;
3. determine winners (the paper's RH method by default);
4. simulate the user and charge winners with generalized second pricing;
5. show that all solver methods agree.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro.auction.pricing import GeneralizedSecondPrice
from repro.auction.user_model import UserModel
from repro.core import build_revenue_matrix, determine_winners
from repro.lang import BidsTable
from repro.probability import ConstantRatePurchaseModel, TabularClickModel


def main() -> None:
    # -- 1. Advertisers submit expressive bids ---------------------------
    # Three slots, four advertisers with very different goals.
    tables = {
        # A classic advertiser: pays 8 per click, wherever it lands.
        0: BidsTable.from_pairs([("Click", 8)]),
        # Figure 3's shape: values conversions plus top-2 prominence.
        1: BidsTable.from_pairs([("Purchase", 50), ("Slot1 | Slot2", 2)]),
        # A brand leader: the top click or nothing at all.
        2: BidsTable.from_pairs([("Click & Slot1", 14)]),
        # Brand awareness: top or bottom of the list, never the middle.
        3: BidsTable.from_pairs([("Slot1 | Slot3", 5), ("Click", 1)]),
    }

    # -- 2. The provider's probability estimates ------------------------
    click_model = TabularClickModel(np.array([
        [0.62, 0.38, 0.21],
        [0.55, 0.33, 0.18],
        [0.70, 0.42, 0.25],   # note: NOT separable — no rank-1 structure
        [0.48, 0.30, 0.22],
    ]))
    purchase_model = ConstantRatePurchaseModel(
        num_advertisers=4, num_slots=3, rate_given_click=0.12)

    # -- 3. Winner determination -----------------------------------------
    result = determine_winners(tables, click_model, purchase_model,
                               method="rh")
    print("allocation:", result.allocation)
    print(f"expected revenue: {result.expected_revenue:.3f}")

    # -- 4. User action and pricing --------------------------------------
    revenue = build_revenue_matrix(tables, click_model, purchase_model)
    bids = np.array([t.total_declared_value() for t in tables.values()])
    quotes = GeneralizedSecondPrice().quote(
        revenue.adjusted(), bids, click_model.as_matrix(),
        result.matching)
    for quote in quotes:
        print(f"  advertiser {quote.advertiser} in slot {quote.slot}: "
              f"pays {quote.per_click:.3f} per click")

    rng = np.random.default_rng(7)
    outcome = UserModel(click_model, purchase_model).sample(
        result.allocation, rng)
    print("clicked:", sorted(outcome.clicked),
          " purchased:", sorted(outcome.purchased))

    # -- 5. Every method agrees ------------------------------------------
    for method in ("lp", "hungarian", "rh", "brute"):
        other = determine_winners(tables, click_model, purchase_model,
                                  method=method)
        print(f"  {method:9s} expected revenue "
              f"{other.expected_revenue:.3f}")
        assert abs(other.expected_revenue
                   - result.expected_revenue) < 1e-6


if __name__ == "__main__":
    main()
