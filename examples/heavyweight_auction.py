#!/usr/bin/env python
"""Beyond 1-dependence: heavyweight-aware auctions (Section III-F).

A small advertiser's clicks collapse when a famous brand sits just above
him.  This example builds the paper's heavyweight/lightweight model,
lets advertisers bid on the layout (``HeavyInSlot`` predicates), runs
the 2^k layout-enumeration winner determination, and contrasts it with a
naive solver that ignores layout effects.

Run: ``python examples/heavyweight_auction.py``
"""

import numpy as np

from repro.core import determine_winners
from repro.core.heavyweight_wd import (
    determine_winners_heavyweight,
    expected_revenue_of_allocation,
)
from repro.lang import BidsTable
from repro.probability import (
    AdvertiserClassifier,
    PenaltyHeavyweightClickModel,
    TabularClickModel,
    no_purchases,
)

NUM_SLOTS = 3
NAMES = ["MegaBrand", "BigBrand", "NicheShop", "TinyStore"]


def main() -> None:
    # -- classify advertisers by historical clicks (the paper's rule) ----
    classifier = AdvertiserClassifier(click_counts=(5400, 3100, 220, 40),
                                      num_heavyweights=2)
    heavy = classifier.heavyweights()
    print("heavyweights:", [NAMES[i] for i in sorted(heavy)])

    # -- layout-dependent click model ------------------------------------
    base = TabularClickModel(np.array([
        [0.70, 0.45, 0.25],
        [0.65, 0.42, 0.24],
        [0.60, 0.40, 0.22],
        [0.55, 0.35, 0.20],
    ]))
    # Each heavyweight above a lightweight halves its click-through.
    model = PenaltyHeavyweightClickModel(base=base, penalty=0.5,
                                         exempt=heavy)
    purchase_model = no_purchases(4, NUM_SLOTS)

    # -- bids, including layout-aware ones -------------------------------
    tables = {
        0: BidsTable.from_pairs([("Click", 10)]),
        1: BidsTable.from_pairs([("Click", 9)]),
        # NicheShop pays well for clicks but adds a defensive bid: extra
        # value if it gets slot 2 with no heavyweight overhead.
        2: BidsTable.from_pairs([("Click", 10),
                                 ("Slot2 & !HeavyInSlot1", 3)]),
        3: BidsTable.from_pairs([("Click", 6)]),
    }

    result = determine_winners_heavyweight(tables, heavy, model,
                                           purchase_model)
    print("\nlayout-aware winner determination (2^k enumeration):")
    for slot_index, advertiser in enumerate(
            result.allocation.as_slot_list(), start=1):
        occupant = "-" if advertiser is None else NAMES[advertiser]
        tag = (" [heavyweight]"
               if advertiser in heavy and advertiser is not None else "")
        print(f"  slot {slot_index}: {occupant}{tag}")
    print(f"  heavyweight slots: {sorted(result.heavy_slots)}")
    print(f"  expected revenue: {result.expected_revenue:.3f}")
    print(f"  layouts considered: {result.stats.layouts_considered}, "
          f"feasible: {result.stats.layouts_feasible}")

    # -- what a layout-blind solver would have done ----------------------
    blind_tables = {i: BidsTable.from_pairs(
        [(str(row.formula), row.value) for row in table
         if "HeavyInSlot" not in str(row.formula)])
        for i, table in tables.items()}
    blind = determine_winners(blind_tables, base, purchase_model,
                              method="rh")
    blind_revenue = expected_revenue_of_allocation(
        tables, blind.allocation, heavy, model, purchase_model)
    print("\nlayout-blind allocation, re-priced under the true model:")
    for slot_index, advertiser in enumerate(
            blind.allocation.as_slot_list(), start=1):
        occupant = "-" if advertiser is None else NAMES[advertiser]
        print(f"  slot {slot_index}: {occupant}")
    print(f"  true expected revenue: {blind_revenue:.3f}")

    gain = result.expected_revenue - blind_revenue
    print(f"\nlayout-awareness is worth {gain:.3f} "
          f"({100 * gain / blind_revenue:+.1f}%) on this auction")
    assert result.expected_revenue >= blind_revenue - 1e-9


if __name__ == "__main__":
    main()
