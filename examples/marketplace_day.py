#!/usr/bin/env python
"""A day in a mixed marketplace: heterogeneous dynamic strategies.

Where the other examples isolate one mechanism, this one runs a whole
ecosystem for a simulated day (1440 auctions ≈ one per minute):

* dayparting rampers (Section IV-A's worked example) that start low and
  bid up as the day progresses;
* a budget-capped advertiser that drops out when his daily budget is
  spent;
* a position targeter chasing slot 2 by feedback control;
* a purchase-focused advertiser whose value rides on conversions;
* plain fixed bidders as the competitive fringe.

Prints an hourly timeline of who holds slot 1, the budget advertiser's
exhaustion point, and the targeter's hit rate — the kinds of goals the
paper says advertisers hire third-party bid managers for, expressed
directly as programs.

Run: ``python examples/marketplace_day.py``
"""

import numpy as np

from repro.auction import AuctionEngine, EngineConfig
from repro.probability import (
    ConstantRatePurchaseModel,
    TabularClickModel,
)
from repro.strategies import (
    BudgetPacedProgram,
    DaypartingRampProgram,
    FixedBidProgram,
    PositionTargetProgram,
    PurchaseFocusedProgram,
    Query,
)

NUM_SLOTS = 3
AUCTIONS = 1440  # one per simulated minute
NAMES = {0: "Ramp-A", 1: "Ramp-B", 2: "Budgeted", 3: "Targeter",
         4: "Converter", 5: "Fringe-1", 6: "Fringe-2"}


def build_programs():
    # time is the auction index; one "day" = 1440 minutes.
    return [
        DaypartingRampProgram(0, start=0.5, rate=0.006,
                              day_length=AUCTIONS, cap=9.0),
        DaypartingRampProgram(1, start=2.0, rate=0.003,
                              day_length=AUCTIONS, cap=8.0),
        BudgetPacedProgram(2, FixedBidProgram(2, value_per_click=7.0),
                           budget=220.0),
        PositionTargetProgram(3, target_slot=2, initial_bid=2.0,
                              max_bid=12.0, adjust_factor=1.15),
        PurchaseFocusedProgram(4, purchase_value=40.0,
                               prominent_slots=2, impression_value=0.3),
        FixedBidProgram(5, value_per_click=4.0),
        FixedBidProgram(6, value_per_click=3.0),
    ]


def main() -> None:
    # Uniform CTRs across advertisers so the *strategies* drive the
    # story (who outbids whom when), not CTR luck.
    click_model = TabularClickModel(
        np.tile(np.array([0.55, 0.35, 0.2]), (7, 1)))
    purchase_model = ConstantRatePurchaseModel(7, NUM_SLOTS,
                                               rate_given_click=0.15)

    def query_source(rng: np.random.Generator) -> Query:
        return Query(text="market", relevance={"market": 1.0})

    programs = build_programs()
    engine = AuctionEngine(
        click_model=click_model,
        purchase_model=purchase_model,
        query_source=query_source,
        config=EngineConfig(num_slots=NUM_SLOTS, method="rh", seed=22),
        programs=programs)

    top_by_hour: list[dict[str, int]] = [dict() for _ in range(24)]
    budget_out_at = None
    targeter_hits = 0
    targeter_in = 0
    for minute in range(AUCTIONS):
        record = engine.run_auction()
        hour = minute // 60
        top = record.allocation.advertiser_in(1)
        if top is not None:
            name = NAMES[top]
            top_by_hour[hour][name] = top_by_hour[hour].get(name, 0) + 1
        budgeted: BudgetPacedProgram = programs[2]
        if budget_out_at is None and budgeted.remaining <= 0:
            budget_out_at = minute
        slot = record.allocation.slot_for(3)
        if slot is not None:
            targeter_in += 1
            if slot == 2:
                targeter_hits += 1

    print("hour | dominant slot-1 occupant (share)")
    print("-----+----------------------------------")
    for hour in range(0, 24, 2):
        counts = top_by_hour[hour]
        if not counts:
            print(f" {hour:02d}  | (slot empty)")
            continue
        name, wins = max(counts.items(), key=lambda kv: kv[1])
        share = wins / sum(counts.values())
        print(f" {hour:02d}  | {name:9s} {100 * share:5.1f}%")

    print()
    if budget_out_at is not None:
        print(f"Budgeted exhausted its 220.0 budget at minute "
              f"{budget_out_at} (hour {budget_out_at // 60})")
    else:
        print(f"Budgeted ended the day with "
              f"{programs[2].remaining:.2f} unspent")
    if targeter_in:
        print(f"Targeter held a slot {targeter_in} times; "
              f"hit slot 2 {100 * targeter_hits / targeter_in:.1f}% "
              "of those")
    accounts = engine.accounts
    print(f"provider revenue for the day: "
          f"{accounts.provider_revenue:.2f} over "
          f"{accounts.total_clicks()} clicks")

    # The ramps should own the evening: their bids peak late.
    evening = {}
    for hour in range(20, 24):
        for name, wins in top_by_hour[hour].items():
            evening[name] = evening.get(name, 0) + wins
    if evening:
        leader = max(evening.items(), key=lambda kv: kv[1])[0]
        print(f"evening (20:00-24:00) slot-1 leader: {leader}")


if __name__ == "__main__":
    main()
