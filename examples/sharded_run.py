#!/usr/bin/env python
"""Sharded run: the auction pipeline across real worker processes.

The multi-process mirror of ``examples/quickstart.py``'s engine usage:

1. describe a Section V workload (advertisers, slots, keywords, seed);
2. run it through the single-process engine;
3. run the *same* workload through ``ShardedAuctionRuntime``, which
   partitions the advertiser population over worker OS processes
   (the paper's Section III-E tree network made real);
4. verify the merged output is bit-identical — same allocations,
   outcomes, prices, balances — because sharding is an execution
   strategy, not a semantics change;
5. read the parallel accounting off the records.

Run: ``python examples/sharded_run.py``
"""

from repro.auction.metrics import summarize
from repro.bench import records_identical
from repro.runtime import ShardedAuctionRuntime
from repro.workloads import PaperWorkload, PaperWorkloadConfig

WORKERS = 2
AUCTIONS = 150


def main() -> None:
    # -- 1. One workload recipe, shared by both runs ---------------------
    config = PaperWorkloadConfig(num_advertisers=300, num_slots=8,
                                 num_keywords=6, seed=42)

    # -- 2. The single-process reference ---------------------------------
    engine = PaperWorkload(config).build_engine("rh", engine_seed=7)
    reference = engine.run_batch(AUCTIONS)
    print("single process :", summarize(reference))

    # -- 3. The same auctions, sharded over worker processes -------------
    # Workers rebuild their advertiser shards from the workload seed;
    # each auction is one lockstep round (scan out at the shards, merge
    # + match + settle at the coordinator).
    with ShardedAuctionRuntime(config, method="rh", workers=WORKERS,
                               engine_seed=7) as runtime:
        print(f"sharded        : {WORKERS} workers, shard sizes "
              f"{runtime.plan.shard_sizes()}")
        sharded = runtime.run_batch(AUCTIONS)
        balances_match = (runtime.accounts.provider_revenue
                          == engine.accounts.provider_revenue)
    print("sharded        :", summarize(sharded))

    # -- 4. Bit-identity: sharding changes nothing observable ------------
    print("records identical:", records_identical(reference, sharded))
    print("provider revenue identical:", balances_match)

    # -- 5. The records carry the parallel-WD accounting -----------------
    stats = sharded[-1].wd_stats
    print(f"parallel WD: {stats['num_leaves']} leaves, max leaf work "
          f"{stats['leaf_work_max']} entries, critical path "
          f"{stats['critical_path_work']} entries")


if __name__ == "__main__":
    main()
