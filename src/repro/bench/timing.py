"""Timing utilities for the experiment harness.

``pytest-benchmark`` drives the per-figure benchmark modules; this module
serves the standalone series harness (``benchmarks/harness.py``), which
regenerates whole figures — many (n, method) cells — in one process,
where pytest-benchmark's one-benchmark-per-test model is too rigid.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from statistics import mean, median
from typing import Callable


@dataclass(frozen=True)
class TimingResult:
    """Wall-clock samples of repeated calls (seconds)."""

    samples: tuple[float, ...]

    @property
    def mean_s(self) -> float:
        return mean(self.samples)

    @property
    def median_s(self) -> float:
        return median(self.samples)

    @property
    def min_s(self) -> float:
        return min(self.samples)

    @property
    def mean_ms(self) -> float:
        return 1e3 * self.mean_s

    @property
    def median_ms(self) -> float:
        return 1e3 * self.median_s


def time_callable(fn: Callable[[], object], repeats: int,
                  warmup: int = 1) -> TimingResult:
    """Time ``fn`` ``repeats`` times after ``warmup`` unmeasured calls.

    Each call is timed individually (the harness measures per-auction
    latency, and successive auctions legitimately differ as program state
    evolves — which is also why we never re-run a "round" on reset
    state).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return TimingResult(samples=tuple(samples))


def time_auction_run(run_auction: Callable[[], object],
                     auctions: int) -> TimingResult:
    """Average per-auction latency over a run (the paper's metric).

    The paper reports "average time taken per auction (over 100
    auctions)"; this helper times each auction of a single evolving run.
    """
    return time_callable(run_auction, repeats=auctions, warmup=0)
