"""Report helpers: cross-method comparisons in paper-like terms."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.series import FigureSeries


@dataclass(frozen=True)
class SpeedupReport:
    """Pairwise speedups between methods at each x of a series."""

    baseline: str
    contender: str
    rows: tuple[tuple[float, float], ...]  # (x, speedup factor)

    def to_lines(self) -> list[str]:
        lines = [f"speedup of {self.contender} over {self.baseline}:"]
        for x, factor in self.rows:
            lines.append(f"  x={x:g}: {factor:.1f}x")
        return lines


def speedup(series: FigureSeries, baseline: str,
            contender: str) -> SpeedupReport:
    """How many times faster ``contender`` is than ``baseline``.

    This is how the paper words its findings ("roughly an order of
    magnitude improvement ... and further order of magnitude ...").
    """
    rows = []
    for x in series.xs():
        base = series.value(x, baseline)
        other = series.value(x, contender)
        if base is None or other is None or other == 0:
            continue
        rows.append((x, base / other))
    return SpeedupReport(baseline=baseline, contender=contender,
                         rows=tuple(rows))


def ordering_holds(series: FigureSeries, slow_to_fast: list[str],
                   at_x: float | None = None) -> bool:
    """Whether methods rank in the expected order (slowest first).

    The reproduction's acceptance criterion is the *shape* of the paper's
    figures: who wins, not absolute milliseconds.  Checked at the largest
    x by default, where the asymptotics dominate.
    """
    xs = series.xs()
    if not xs:
        return False
    x = xs[-1] if at_x is None else at_x
    values = []
    for method in slow_to_fast:
        value = series.value(x, method)
        if value is None:
            return False
        values.append(value)
    return all(earlier >= later for earlier, later in zip(values,
                                                          values[1:]))
