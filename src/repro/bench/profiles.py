"""Per-phase profiling of auction runs, with JSON artifacts.

The engine stamps every :class:`~repro.auction.events.AuctionRecord`
with the wall-clock cost of the four pipeline phases — program
**eval**uation, **wd** (winner determination), **price** quoting, and
**settle**ment (user simulation, accounting, notification).  This module
aggregates those stamps over a run into a :class:`PhaseProfile`, writes
profiles as JSON artifacts the benchmark harness and CI can archive, and
drives the sequential-vs-batched throughput comparison
(:func:`compare_throughput`) behind ``benchmarks/bench_batch_throughput
.py`` and the ``repro bench-throughput`` CLI command.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.auction.events import AuctionRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.auction.engine import AuctionEngine

PHASES = ("eval", "wd", "price", "settle")
"""The four pipeline phases, in execution order."""


@dataclass(frozen=True)
class PhaseProfile:
    """Aggregate per-phase timings of one run of auctions."""

    label: str
    method: str
    auctions: int
    wall_seconds: float
    eval_seconds: float
    wd_seconds: float
    price_seconds: float
    settle_seconds: float
    batched: bool = False
    groups: int | None = None
    extra: dict = field(default_factory=dict)

    @property
    def auctions_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.auctions / self.wall_seconds

    def phase_ms(self) -> dict[str, float]:
        """Mean per-auction milliseconds by phase."""
        if self.auctions == 0:
            return {phase: 0.0 for phase in PHASES}
        scale = 1e3 / self.auctions
        return {
            "eval": self.eval_seconds * scale,
            "wd": self.wd_seconds * scale,
            "price": self.price_seconds * scale,
            "settle": self.settle_seconds * scale,
        }

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "method": self.method,
            "auctions": self.auctions,
            "batched": self.batched,
            "groups": self.groups,
            "wall_seconds": self.wall_seconds,
            "auctions_per_second": self.auctions_per_second,
            "phase_seconds": {
                "eval": self.eval_seconds,
                "wd": self.wd_seconds,
                "price": self.price_seconds,
                "settle": self.settle_seconds,
            },
            "phase_ms_per_auction": self.phase_ms(),
            **self.extra,
        }

    def write(self, path: str | Path) -> Path:
        """Write the profile as a JSON artifact; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2,
                                   sort_keys=True) + "\n",
                        encoding="utf-8")
        return path


def profile_from_records(label: str, method: str,
                         records: Sequence[AuctionRecord],
                         wall_seconds: float, batched: bool = False,
                         groups: int | None = None,
                         **extra) -> PhaseProfile:
    """Fold a run's records into a :class:`PhaseProfile`."""
    return PhaseProfile(
        label=label,
        method=method,
        auctions=len(records),
        wall_seconds=wall_seconds,
        eval_seconds=sum(r.eval_seconds for r in records),
        wd_seconds=sum(r.wd_seconds for r in records),
        price_seconds=sum(r.price_seconds for r in records),
        settle_seconds=sum(r.settle_seconds for r in records),
        batched=batched,
        groups=groups,
        extra=dict(extra),
    )


def profile_run(engine: "AuctionEngine", auctions: int,
                batch: bool = False, label: str | None = None,
                **extra) -> tuple[list[AuctionRecord], PhaseProfile]:
    """Run ``auctions`` auctions and profile them.

    ``batch`` selects :meth:`~repro.auction.engine.AuctionEngine
    .run_batch` over the sequential loop; the profile notes which path
    ran and, for batched runs, how many signature groups the planner
    formed.
    """
    runner = engine.run_batch if batch else engine.run
    start = time.perf_counter()
    records = runner(auctions)
    wall = time.perf_counter() - start
    stats = engine.last_batch_stats if batch else None
    # ``batched`` reports what actually ran: run_batch falls back to
    # the sequential loop for populations the planner can't vectorize
    # (then last_batch_stats is None), and claiming "batched" for that
    # would misattribute the resulting ~1x speedup.
    if batch and stats is None:
        extra.setdefault("batch_fallback", True)
    profile = profile_from_records(
        label or ("batched" if batch else "sequential"),
        str(engine.config.method), records, wall,
        batched=batch and stats is not None,
        groups=stats.groups if stats else None, **extra)
    return records, profile


def records_identical(left: Sequence[AuctionRecord],
                      right: Sequence[AuctionRecord]) -> bool:
    """Exact (float-equality) equivalence of two auction-record streams.

    Compares everything the auction *decided* — allocations, outcomes,
    revenues, prices — and ignores the timing stamps, which legitimately
    differ between runs.
    """
    if len(left) != len(right):
        return False
    return all(
        a.auction_id == b.auction_id
        and a.keyword == b.keyword
        and a.allocation.slot_of == b.allocation.slot_of
        and a.outcome.clicked == b.outcome.clicked
        and a.outcome.purchased == b.outcome.purchased
        and a.expected_revenue == b.expected_revenue
        and a.realized_revenue == b.realized_revenue
        and a.prices == b.prices
        for a, b in zip(left, right))


@dataclass(frozen=True)
class ThroughputReport:
    """Sequential vs batched throughput on identical auction streams."""

    sequential: PhaseProfile
    batched: PhaseProfile
    identical: bool

    @property
    def speedup(self) -> float:
        if self.sequential.wall_seconds <= 0.0:
            return 0.0
        return (self.sequential.wall_seconds
                / max(self.batched.wall_seconds, 1e-12))

    def to_dict(self) -> dict:
        return {
            "identical": self.identical,
            "speedup": self.speedup,
            "sequential": self.sequential.to_dict(),
            "batched": self.batched.to_dict(),
        }

    def to_lines(self) -> list[str]:
        lines = []
        for profile in (self.sequential, self.batched):
            phases = profile.phase_ms()
            phase_text = "  ".join(
                f"{phase}={phases[phase]:.3f}ms" for phase in PHASES)
            lines.append(
                f"{profile.label:>10s}: {profile.auctions_per_second:8.1f} "
                f"auctions/s over {profile.auctions} auctions  "
                f"[{phase_text}]")
        lines.append(
            f"   speedup: {self.speedup:.2f}x  "
            f"(results identical: {self.identical})")
        return lines


def write_report_artifacts(report: "ThroughputReport",
                           directory: str | Path,
                           stem: str) -> list[Path]:
    """Write a throughput report's JSON artifacts under ``directory``.

    One profile file per pipeline plus a ``<stem>_throughput.json``
    summary — the shared artifact layout of
    ``benchmarks/bench_batch_throughput.py`` and the
    ``repro bench-throughput`` CLI command.
    """
    directory = Path(directory)
    paths = [report.sequential.write(
                 directory / f"{stem}_{report.sequential.label}.json"),
             report.batched.write(
                 directory / f"{stem}_{report.batched.label}.json")]
    summary = directory / f"{stem}_throughput.json"
    summary.write_text(json.dumps(report.to_dict(), indent=2,
                                  sort_keys=True) + "\n",
                       encoding="utf-8")
    paths.append(summary)
    return paths


def compare_throughput(sequential_engine: "AuctionEngine",
                       batched_engine: "AuctionEngine",
                       auctions: int, warmup: int = 2,
                       **extra) -> ThroughputReport:
    """Measure both pipelines on the same auction stream.

    Both engines must be freshly built from identical seeds.  Warmup
    auctions run through each engine's respective path (keeping the two
    in lockstep) before the measured segment; the report carries the
    measured profiles plus an exact-equivalence verdict.
    """
    if warmup:
        sequential_engine.run(warmup)
        batched_engine.run_batch(warmup)
    seq_records, seq_profile = profile_run(
        sequential_engine, auctions, batch=False, **extra)
    batch_records, batch_profile = profile_run(
        batched_engine, auctions, batch=True, **extra)
    return ThroughputReport(
        sequential=seq_profile,
        batched=batch_profile,
        identical=records_identical(seq_records, batch_records))
