"""Per-phase profiling of auction runs, with JSON artifacts.

The engine stamps every :class:`~repro.auction.events.AuctionRecord`
with the wall-clock cost of the four pipeline phases — program
**eval**uation, **wd** (winner determination), **price** quoting, and
**settle**ment (user simulation, accounting, notification).  This module
aggregates those stamps over a run into a :class:`PhaseProfile`, writes
profiles as JSON artifacts the benchmark harness and CI can archive, and
drives the sequential-vs-batched throughput comparison
(:func:`compare_throughput`) behind ``benchmarks/bench_batch_throughput
.py`` and the ``repro bench-throughput`` CLI command.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.auction.events import AuctionRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.auction.engine import AuctionEngine

PHASES = ("eval", "wd", "price", "settle")
"""The four pipeline phases, in execution order."""


@dataclass(frozen=True)
class PhaseProfile:
    """Aggregate per-phase timings of one run of auctions."""

    label: str
    method: str
    auctions: int
    wall_seconds: float
    eval_seconds: float
    wd_seconds: float
    price_seconds: float
    settle_seconds: float
    batched: bool = False
    groups: int | None = None
    extra: dict = field(default_factory=dict)

    @property
    def auctions_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.auctions / self.wall_seconds

    @property
    def pipeline_seconds(self) -> float:
        """Summed per-phase busy time (the records' critical path).

        For single-process runs this tracks ``wall_seconds`` minus
        loop overhead.  For the sharded runtime the phase stamps are
        critical-path quantities (max over workers per phase, plus the
        coordinator), so this is the run's modeled parallel time — on
        a host with at least ``workers`` free cores, wall-clock
        converges to it; on a core-starved host (CI pins one CPU) it
        is the scaling signal wall-clock cannot show.
        """
        return (self.eval_seconds + self.wd_seconds
                + self.price_seconds + self.settle_seconds)

    @property
    def pipeline_auctions_per_second(self) -> float:
        """Auctions/second over :attr:`pipeline_seconds`."""
        if self.pipeline_seconds <= 0.0:
            return 0.0
        return self.auctions / self.pipeline_seconds

    def phase_ms(self) -> dict[str, float]:
        """Mean per-auction milliseconds by phase."""
        if self.auctions == 0:
            return {phase: 0.0 for phase in PHASES}
        scale = 1e3 / self.auctions
        return {
            "eval": self.eval_seconds * scale,
            "wd": self.wd_seconds * scale,
            "price": self.price_seconds * scale,
            "settle": self.settle_seconds * scale,
        }

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "method": self.method,
            "auctions": self.auctions,
            "batched": self.batched,
            "groups": self.groups,
            "wall_seconds": self.wall_seconds,
            "auctions_per_second": self.auctions_per_second,
            "pipeline_seconds": self.pipeline_seconds,
            "pipeline_auctions_per_second":
                self.pipeline_auctions_per_second,
            "phase_seconds": {
                "eval": self.eval_seconds,
                "wd": self.wd_seconds,
                "price": self.price_seconds,
                "settle": self.settle_seconds,
            },
            "phase_ms_per_auction": self.phase_ms(),
            **self.extra,
        }

    def write(self, path: str | Path) -> Path:
        """Write the profile as a JSON artifact; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2,
                                   sort_keys=True) + "\n",
                        encoding="utf-8")
        return path


def aggregate_wd_stats(records: Sequence[AuctionRecord]
                       ) -> dict | None:
    """Fold per-auction parallel-WD accounting over a run.

    Returns ``None`` when no record carries ``wd_stats`` (winner
    determination ran serially).  Otherwise: how many auctions ran
    sharded, the shard count, and the mean/max of the two quantities
    the Section III-E analysis cares about — the heaviest leaf's scan
    work and the root-to-leaf critical-path work that stands in for
    parallel wall-clock.
    """
    stats = [r.wd_stats for r in records if r.wd_stats is not None]
    if not stats:
        return None
    leaf = [s["leaf_work_max"] for s in stats]
    path = [s["critical_path_work"] for s in stats]
    return {
        "auctions": len(stats),
        "num_leaves": max(s["num_leaves"] for s in stats),
        "leaf_work_max": max(leaf),
        "leaf_work_mean": sum(leaf) / len(leaf),
        "critical_path_max": max(path),
        "critical_path_mean": sum(path) / len(path),
        "merge_work_total": sum(s["merge_work_total"] for s in stats),
    }


def profile_from_records(label: str, method: str,
                         records: Sequence[AuctionRecord],
                         wall_seconds: float, batched: bool = False,
                         groups: int | None = None,
                         **extra) -> PhaseProfile:
    """Fold a run's records into a :class:`PhaseProfile`.

    Parallel winner-determination accounting, when the records carry
    it, lands in ``extra["parallel_wd"]`` (see
    :func:`aggregate_wd_stats`) and flows into the JSON artifacts.
    """
    parallel_wd = aggregate_wd_stats(records)
    if parallel_wd is not None:
        extra = {"parallel_wd": parallel_wd, **extra}
    return PhaseProfile(
        label=label,
        method=method,
        auctions=len(records),
        wall_seconds=wall_seconds,
        eval_seconds=sum(r.eval_seconds for r in records),
        wd_seconds=sum(r.wd_seconds for r in records),
        price_seconds=sum(r.price_seconds for r in records),
        settle_seconds=sum(r.settle_seconds for r in records),
        batched=batched,
        groups=groups,
        extra=dict(extra),
    )


def profile_run(engine: "AuctionEngine", auctions: int,
                batch: bool = False, label: str | None = None,
                **extra) -> tuple[list[AuctionRecord], PhaseProfile]:
    """Run ``auctions`` auctions and profile them.

    ``batch`` selects :meth:`~repro.auction.engine.AuctionEngine
    .run_batch` over the sequential loop; the profile notes which path
    ran and, for batched runs, how many signature groups the planner
    formed.
    """
    runner = engine.run_batch if batch else engine.run
    start = time.perf_counter()
    records = runner(auctions)
    wall = time.perf_counter() - start
    stats = engine.last_batch_stats if batch else None
    # ``batched`` reports what actually ran: run_batch falls back to
    # the sequential loop for populations the planner can't vectorize
    # (then last_batch_stats is None), and claiming "batched" for that
    # would misattribute the resulting ~1x speedup.
    if batch and stats is None:
        extra.setdefault("batch_fallback", True)
    profile = profile_from_records(
        label or ("batched" if batch else "sequential"),
        str(engine.config.method), records, wall,
        batched=batch and stats is not None,
        groups=stats.groups if stats else None, **extra)
    return records, profile


def records_identical(left: Sequence[AuctionRecord],
                      right: Sequence[AuctionRecord]) -> bool:
    """Exact (float-equality) equivalence of two auction-record streams.

    Compares everything the auction *decided* — allocations, outcomes,
    revenues, prices — and ignores the timing stamps, which legitimately
    differ between runs.
    """
    if len(left) != len(right):
        return False
    return all(
        a.auction_id == b.auction_id
        and a.keyword == b.keyword
        and a.allocation.slot_of == b.allocation.slot_of
        and a.outcome.clicked == b.outcome.clicked
        and a.outcome.purchased == b.outcome.purchased
        and a.expected_revenue == b.expected_revenue
        and a.realized_revenue == b.realized_revenue
        and a.prices == b.prices
        for a, b in zip(left, right))


@dataclass(frozen=True)
class ThroughputReport:
    """Sequential vs batched throughput on identical auction streams."""

    sequential: PhaseProfile
    batched: PhaseProfile
    identical: bool

    @property
    def speedup(self) -> float:
        if self.sequential.wall_seconds <= 0.0:
            return 0.0
        return (self.sequential.wall_seconds
                / max(self.batched.wall_seconds, 1e-12))

    def to_dict(self) -> dict:
        return {
            "identical": self.identical,
            "speedup": self.speedup,
            "sequential": self.sequential.to_dict(),
            "batched": self.batched.to_dict(),
        }

    def to_lines(self) -> list[str]:
        lines = []
        for profile in (self.sequential, self.batched):
            phases = profile.phase_ms()
            phase_text = "  ".join(
                f"{phase}={phases[phase]:.3f}ms" for phase in PHASES)
            parallel = ""
            if "parallel_wd" in profile.extra:
                # Sharded run: phase stamps are critical-path times, so
                # also report the modeled parallel throughput (what
                # wall-clock becomes with enough free cores).
                parallel = (" critical-path "
                            f"{profile.pipeline_auctions_per_second:.1f}"
                            "/s")
            lines.append(
                f"{profile.label:>10s}: {profile.auctions_per_second:8.1f} "
                f"auctions/s over {profile.auctions} auctions  "
                f"[{phase_text}]{parallel}")
        lines.append(
            f"   speedup: {self.speedup:.2f}x  "
            f"(results identical: {self.identical})")
        return lines


def write_report_artifacts(report: "ThroughputReport",
                           directory: str | Path,
                           stem: str) -> list[Path]:
    """Write a throughput report's JSON artifacts under ``directory``.

    One profile file per pipeline plus a ``<stem>_throughput.json``
    summary — the shared artifact layout of
    ``benchmarks/bench_batch_throughput.py`` and the
    ``repro bench-throughput`` CLI command.
    """
    directory = Path(directory)
    paths = [report.sequential.write(
                 directory / f"{stem}_{report.sequential.label}.json"),
             report.batched.write(
                 directory / f"{stem}_{report.batched.label}.json")]
    summary = directory / f"{stem}_throughput.json"
    summary.write_text(json.dumps(report.to_dict(), indent=2,
                                  sort_keys=True) + "\n",
                       encoding="utf-8")
    paths.append(summary)
    return paths


def compare_throughput(sequential_engine: "AuctionEngine",
                       batched_engine: "AuctionEngine",
                       auctions: int, warmup: int = 2,
                       labels: tuple[str, str] | None = None,
                       **extra) -> ThroughputReport:
    """Measure both pipelines on the same auction stream.

    Both engines must be freshly built from identical seeds.  Warmup
    auctions run through each engine's respective path (keeping the two
    in lockstep) before the measured segment; the report carries the
    measured profiles plus an exact-equivalence verdict.

    ``batched_engine`` may be any engine-shaped runner — the CLI passes
    a :class:`~repro.runtime.executor.ShardedAuctionRuntime` for
    ``--workers`` comparisons, with ``labels`` naming the two sides.
    """
    if warmup:
        sequential_engine.run(warmup)
        batched_engine.run_batch(warmup)
    seq_label, batch_label = labels or ("sequential", "batched")
    seq_records, seq_profile = profile_run(
        sequential_engine, auctions, batch=False, label=seq_label,
        **extra)
    batch_records, batch_profile = profile_run(
        batched_engine, auctions, batch=True, label=batch_label,
        **extra)
    return ThroughputReport(
        sequential=seq_profile,
        batched=batch_profile,
        identical=records_identical(seq_records, batch_records))
