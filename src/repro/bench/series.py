"""Figure series: the (x, method) -> value grids the paper plots."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field


@dataclass
class FigureSeries:
    """One figure's data: per-method curves over a shared x axis.

    ``x_label`` is the abscissa ("Number of advertisers"), ``y_label``
    the ordinate ("Time per auction (ms)").  Cells may be missing (a
    method skipped at a size); rendering shows a dash.
    """

    name: str
    x_label: str
    y_label: str
    methods: list[str]
    cells: dict[tuple[float, str], float] = field(default_factory=dict)

    def record(self, x: float, method: str, value: float) -> None:
        if method not in self.methods:
            raise ValueError(f"unknown method {method!r}; expected one of "
                             f"{self.methods}")
        self.cells[(float(x), method)] = float(value)

    def xs(self) -> list[float]:
        return sorted({x for x, _ in self.cells})

    def value(self, x: float, method: str) -> float | None:
        return self.cells.get((float(x), method))

    def series_for(self, method: str) -> list[tuple[float, float]]:
        return [(x, self.cells[(x, method)]) for x in self.xs()
                if (x, method) in self.cells]

    # -- rendering -----------------------------------------------------------

    def to_rows(self) -> list[list[str]]:
        """Rows ready for printing: header plus one row per x value."""
        header = [self.x_label] + list(self.methods)
        rows = [header]
        for x in self.xs():
            row = [_format_number(x)]
            for method in self.methods:
                value = self.value(x, method)
                row.append("-" if value is None
                           else _format_number(value))
            rows.append(row)
        return rows

    def to_table(self) -> str:
        """An aligned ASCII table (what the harness prints)."""
        rows = self.to_rows()
        widths = [max(len(row[i]) for row in rows)
                  for i in range(len(rows[0]))]
        lines = []
        for index, row in enumerate(rows):
            line = "  ".join(cell.rjust(width)
                             for cell, width in zip(row, widths))
            lines.append(line)
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        title = f"{self.name}  ({self.y_label})"
        return title + "\n" + "\n".join(lines)

    def to_csv(self) -> str:
        """CSV export for external plotting."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        for row in self.to_rows():
            writer.writerow(row)
        return buffer.getvalue()


def _format_number(value: float) -> str:
    if value == int(value) and abs(value) >= 1:
        return str(int(value))
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.2f}"
    return f"{value:.4f}"
