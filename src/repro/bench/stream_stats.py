"""Per-event-type accounting for the online serving layer.

The phase profiler (:mod:`repro.bench.profiles`) splits an *auction*
into eval/wd/price/settle; a streaming service additionally spends
time on control events — joins, leaves, bid edits, top-ups — whose
cost is exactly what the incremental-vs-rebuild maintenance comparison
measures.  :class:`EventTimings` folds one wall-clock stamp per
processed event into per-kind counts and totals, and renders the JSON
cell ``benchmarks/bench_stream_churn.py`` commits.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def zero_supervision() -> dict:
    """The supervision block's stable all-zero schema.

    Keys mirror :meth:`repro.runtime.supervision.SupervisionStats
    .to_dict` exactly (hardcoded here so the bench layer never imports
    the runtime).  Surfacing zeros unconditionally gives dashboards
    and the observability summary a fixed shape instead of a block
    that pops into existence at the first failure.
    """
    return {
        "worker_failures": 0,
        "respawns": 0,
        "reshards": 0,
        "timeouts": 0,
        "heals": 0,
        "heal_seconds": 0.0,
        "mean_heal_seconds": 0.0,
        "max_heal_seconds": 0.0,
    }


@dataclass
class EventTimings:
    """Counts and summed wall-clock seconds, keyed by event kind."""

    counts: dict[str, int] = field(default_factory=dict)
    seconds: dict[str, float] = field(default_factory=dict)
    supervision: dict = field(default_factory=zero_supervision)
    """Worker-supervision counters (failures, respawns, reshards,
    heal latency) from :class:`repro.runtime.supervision
    .SupervisionStats` — always present with a stable schema, all
    zeros unless the service ran supervised shards and a counter
    moved."""

    batching: dict = field(default_factory=dict)
    """Micro-batch window accounting (``windows``, ``batched_events``,
    ``window_seconds``, ``max_window``, and a per-kind ``shed`` map
    under shed backpressure) — empty unless the service ran with a
    batch window."""

    def record(self, kind: str, elapsed: float) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.seconds[kind] = self.seconds.get(kind, 0.0) + elapsed

    def record_window(self, kind: str, count: int,
                      elapsed: float) -> None:
        """Fold one dispatched window of ``count`` events.

        The wall time amortizes into the per-kind buckets — ``count``
        events, ``elapsed`` seconds — so per-event means (and any
        percentile derived from them) describe events, not windows;
        attributing a whole window's wall time to its last event is
        exactly the skew this method exists to avoid.  The window
        itself lands in the batch-level :attr:`batching` counters.

        An empty window (``count == 0``) records nothing: no events
        were served, so neither the per-kind buckets nor the window
        counters should move.
        """
        if count == 0:
            return
        self.counts[kind] = self.counts.get(kind, 0) + count
        self.seconds[kind] = self.seconds.get(kind, 0.0) + elapsed
        block = self.batching
        block["windows"] = block.get("windows", 0) + 1
        block["batched_events"] = block.get("batched_events", 0) + count
        block["window_seconds"] = (block.get("window_seconds", 0.0)
                                   + elapsed)
        block["max_window"] = max(block.get("max_window", 0), count)

    def record_shed(self, kind: str) -> None:
        """Count one event dropped by shed backpressure."""
        shed = self.batching.setdefault("shed", {})
        shed[kind] = shed.get(kind, 0) + 1

    def absorb(self, other: "EventTimings") -> None:
        """Fold another accumulator in (e.g. a pre-snapshot segment's
        stats into the resumed service's, so a spliced run reports the
        whole stream)."""
        for kind, count in other.counts.items():
            self.counts[kind] = self.counts.get(kind, 0) + count
        for kind, value in other.seconds.items():
            self.seconds[kind] = self.seconds.get(kind, 0.0) + value
        if other.supervision:
            merged = dict(self.supervision)
            for key, value in other.supervision.items():
                if key == "max_heal_seconds":
                    merged[key] = max(merged.get(key, 0.0), value)
                elif key == "mean_heal_seconds":
                    continue  # recomputed below
                elif isinstance(value, (int, float)):
                    merged[key] = merged.get(key, 0) + value
                else:  # pragma: no cover - future non-numeric fields
                    merged[key] = value
            heals = merged.get("heals", 0)
            if heals:
                merged["mean_heal_seconds"] = (
                    merged.get("heal_seconds", 0.0) / heals)
            self.supervision = merged
        if other.batching:
            merged = dict(self.batching)
            for key, value in other.batching.items():
                if key == "max_window":
                    merged[key] = max(merged.get(key, 0), value)
                elif key == "shed":
                    shed = dict(merged.get("shed", {}))
                    for kind, count in value.items():
                        shed[kind] = shed.get(kind, 0) + count
                    merged["shed"] = shed
                else:
                    merged[key] = merged.get(key, 0) + value
            self.batching = merged

    @property
    def total_events(self) -> int:
        return sum(self.counts.values())

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def control_seconds(self) -> float:
        """Summed cost of everything that is not a query arrival."""
        return sum(value for kind, value in self.seconds.items()
                   if kind != "query")

    def mean_ms(self, kind: str) -> float:
        count = self.counts.get(kind, 0)
        if count == 0:
            return 0.0
        return 1e3 * self.seconds.get(kind, 0.0) / count

    def to_dict(self) -> dict:
        payload = {
            "total_events": self.total_events,
            "total_seconds": self.total_seconds,
            "control_seconds": self.control_seconds(),
            "by_kind": {
                kind: {
                    "count": self.counts[kind],
                    "seconds": self.seconds.get(kind, 0.0),
                    "mean_ms": self.mean_ms(kind),
                }
                for kind in sorted(self.counts)
            },
            "supervision": dict(self.supervision),
        }
        if self.batching:
            block = dict(self.batching)
            windows = block.get("windows", 0)
            if windows:
                block["mean_window"] = (
                    block.get("batched_events", 0) / windows)
            payload["batching"] = block
        return payload
