"""Benchmark harness utilities: timing, figure series, reporting."""

from repro.bench.reporting import SpeedupReport, ordering_holds, speedup
from repro.bench.series import FigureSeries
from repro.bench.timing import TimingResult, time_auction_run, time_callable

__all__ = [
    "FigureSeries",
    "SpeedupReport",
    "TimingResult",
    "ordering_holds",
    "speedup",
    "time_auction_run",
    "time_callable",
]
