"""Benchmark harness utilities: timing, profiling, series, reporting."""

from repro.bench.profiles import (
    PHASES,
    PhaseProfile,
    ThroughputReport,
    aggregate_wd_stats,
    compare_throughput,
    profile_from_records,
    profile_run,
    records_identical,
    write_report_artifacts,
)
from repro.bench.reporting import SpeedupReport, ordering_holds, speedup
from repro.bench.series import FigureSeries
from repro.bench.stream_stats import EventTimings
from repro.bench.timing import TimingResult, time_auction_run, time_callable

__all__ = [
    "EventTimings",
    "FigureSeries",
    "PHASES",
    "PhaseProfile",
    "SpeedupReport",
    "ThroughputReport",
    "TimingResult",
    "aggregate_wd_stats",
    "compare_throughput",
    "ordering_holds",
    "profile_from_records",
    "profile_run",
    "records_identical",
    "speedup",
    "time_auction_run",
    "time_callable",
    "write_report_artifacts",
]
