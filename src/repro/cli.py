"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``
    Run the Section V workload through the auction engine and print a
    run summary (optionally writing a JSONL trace).
``validate``
    Self-check: solve random instances with every exact method and
    verify they agree (the Theorem 2 equivalence, as a smoke test).
``bench-throughput``
    Compare the sequential and batched pipelines on the Section V
    workload: auctions/sec, per-phase split, exact-equivalence verdict,
    optional per-phase JSON profile artifacts.  With ``--churn-rate``
    the comparison becomes streaming: two online services (incremental
    vs rebuild-per-event maintenance) consume the same churn stream.
``stream``
    Run the online serving layer: a deterministic event stream with
    live advertiser churn and budget-lifecycle enforcement through
    :class:`~repro.stream.service.OnlineAuctionService`, in-process
    or sharded (``--workers``), with optional snapshot/restore
    mid-stream.  ``--record-events`` / ``--trace`` journal a run, and
    ``--replay`` re-consumes a captured event log — the
    replay-verified-accounting workflow (``tools/trace_diff.py``
    diffs the traces; see ``docs/operations.md``).  ``--journal`` adds
    durability: every event is fsync'd to a write-ahead journal before
    application, with ``--checkpoint-every`` continuous checkpoints.
    ``--supervise`` arms worker supervision for sharded runs: a killed
    or hung shard worker (``--round-timeout``) is healed in place —
    respawned from the supervisor's retained capture, or, past
    ``--max-worker-restarts``, the fleet degrades to one fewer worker
    — with records bit-identical to an unfailed run.
``recover``
    Rebuild a crashed durable service from its journal and checkpoint
    directory: newest valid checkpoint (torn files skipped) plus
    journaled-suffix replay, optionally to a different ``--workers``
    count — the crash-recovery runbook in ``docs/operations.md``.
``serve``
    Put the online service on a TCP port (:mod:`repro.serve`): many
    concurrent client connections, an ingress sequencer stamping a
    total arrival order, auction results pushed back to the
    originating client.  Takes the same durability and observability
    knobs as ``stream`` (``--journal``, ``--checkpoint-every``,
    ``--metrics-out``, ...); ``--record-events`` writes the applied
    stream, which replays bit-identically offline through
    ``repro stream --replay`` (gate with ``tools/trace_diff.py``).
    SIGTERM drains in-flight connections, flushes everything, writes
    a final checkpoint, and exits 0.
``loadgen``
    Drive a live ``repro serve`` instance with the deterministic
    client fleet (:mod:`repro.workloads.loadgen`): N processes × M
    connections replaying a churn workload, round-trip latency
    percentiles and sustained events/sec reported (and optionally
    written as JSON).
``sql``
    Execute sqlmini statements from the command line or stdin — handy
    for exploring the bidding-program dialect.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.auction import summarize
    from repro.auction.trace import write_trace
    from repro.workloads import PaperWorkload, PaperWorkloadConfig

    config = PaperWorkloadConfig(
        num_advertisers=args.advertisers, num_slots=args.slots,
        num_keywords=args.keywords, seed=args.seed)
    if args.workers:
        from repro.runtime import ShardedAuctionRuntime

        with ShardedAuctionRuntime(
                config, method=args.method, workers=args.workers,
                engine_seed=args.seed + 1) as engine:
            records = engine.run_batch(args.auctions)
            accounts = engine.accounts
        print(f"sharded over {args.workers} worker processes "
              f"(shard sizes: {engine.plan.shard_sizes()})")
    else:
        workload = PaperWorkload(config)
        engine = workload.build_engine(args.method,
                                       engine_seed=args.seed + 1)
        records = (engine.run_batch(args.auctions) if args.batch
                   else engine.run(args.auctions))
        accounts = engine.accounts
    print(summarize(records))
    print(f"provider revenue: {accounts.provider_revenue:.2f} "
          f"over {accounts.total_clicks()} clicks")
    if args.trace:
        count = write_trace(args.trace, records)
        print(f"wrote {count} records to {args.trace}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.core import determine_winners, results_agree
    from repro.probability import ConstantRatePurchaseModel
    from repro.workloads.generators import (
        random_bid_population,
        random_click_model,
    )

    rng = np.random.default_rng(args.seed)
    failures = 0
    for trial in range(args.trials):
        n = int(rng.integers(1, 7))
        k = int(rng.integers(1, 4))
        click_model = random_click_model(n, k, rng)
        purchase_model = ConstantRatePurchaseModel(n, k,
                                                   rate_given_click=0.2)
        tables = random_bid_population(n, rng)
        results = [determine_winners(tables, click_model, purchase_model,
                                     method=method)
                   for method in ("lp", "hungarian", "rh", "brute")]
        if not all(results_agree(results[0], other)
                   for other in results[1:]):
            failures += 1
            print(f"trial {trial}: METHOD DISAGREEMENT "
                  f"{[r.expected_revenue for r in results]}")
    verdict = "OK" if failures == 0 else f"{failures} FAILURES"
    print(f"validate: {args.trials} random instances, "
          f"4 methods each: {verdict}")
    return 1 if failures else 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.auction.trace import write_trace
    from repro.stream import EventLog, OnlineAuctionService
    from repro.workloads import (
        ChurnStreamConfig,
        PaperWorkload,
        PaperWorkloadConfig,
        generate_stream,
    )

    config = PaperWorkloadConfig(
        num_advertisers=args.advertisers, num_slots=args.slots,
        num_keywords=args.keywords, seed=args.seed)
    if args.replay:
        # Replay a captured event log instead of generating one: the
        # replay-verified-accounting workflow (docs/operations.md).
        # The stream is self-contained; the service knobs (method,
        # workers, seeds) must match the recording for the traces to
        # diff empty.
        stream = EventLog.from_jsonl(args.replay)
        print(f"replaying {len(stream)} events from {args.replay}")
    else:
        workload = PaperWorkload(config)
        genesis = args.genesis if args.genesis is not None \
            else max(args.advertisers // 2, 1)
        stream = generate_stream(workload, ChurnStreamConfig(
            num_events=args.events, churn_rate=args.churn_rate,
            genesis=genesis, min_active=args.min_active,
            budget_low=args.budget_low, budget_high=args.budget_high,
            seed=args.seed + 17))
    counts = stream.counts_by_kind()
    print(f"stream: {len(stream)} events "
          + " ".join(f"{kind}={count}"
                     for kind, count in sorted(counts.items())
                     if count))
    if args.record_events:
        stream.to_jsonl(args.record_events)
        print(f"event log written to {args.record_events}")

    if args.supervise and not args.workers:
        print("--supervise needs --workers >= 1 (the in-process "
              "backend has no worker fleet to supervise)",
              file=sys.stderr)
        return 2

    batching = None
    if args.batch_window:
        from repro.stream import BatchingConfig

        batching = BatchingConfig(
            window=args.batch_window,
            ingress_capacity=args.ingress_capacity,
            backpressure=args.backpressure,
            arrival_rate=args.arrival_rate)

    observability = None
    if args.metrics_out or args.trace_spans:
        if args.snapshot_at:
            # The snapshot/restore splice runs two services; their
            # sidecar files would overwrite each other and the span
            # seqs would restart mid-stream.
            print("--metrics-out/--trace-spans and --snapshot-at are "
                  "mutually exclusive (the snapshot splice runs two "
                  "services over one stream)", file=sys.stderr)
            return 2
        from repro.obs import ObservabilityConfig

        observability = ObservabilityConfig(
            metrics_out=args.metrics_out,
            trace_spans=args.trace_spans,
            snapshot_every=args.metrics_every)

    if args.journal:
        # Durable serving: journal-ahead every event, checkpoint on
        # the --checkpoint-every schedule; crash recovery is
        # `repro recover` (see the runbook in docs/operations.md).
        if args.snapshot_at:
            print("--snapshot-at and --journal are mutually "
                  "exclusive (continuous checkpoints subsume the "
                  "one-shot snapshot)", file=sys.stderr)
            return 2
        if args.checkpoint_every and not args.checkpoint_dir:
            print("--checkpoint-every needs --checkpoint-dir",
                  file=sys.stderr)
            return 2
        from repro.stream import DurableAuctionService

        with DurableAuctionService.open(
                config, args.journal, method=args.method,
                maintenance=args.maintenance, workers=args.workers,
                engine_seed=args.seed + 1,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
                checkpoint_retain=args.checkpoint_retain,
                supervise=args.supervise,
                round_timeout=args.round_timeout,
                max_worker_restarts=args.max_worker_restarts,
                batching=batching,
                observability=observability) as durable:
            records = durable.run(stream)
            inner = durable.service
            accounts = inner.accounts
            stats = inner.stats
            active = len(inner.active_advertisers())
            paused = len(inner.paused_advertisers())
            emitted = len(inner.emitted)
            retained = (durable.checkpoints.checkpoint_files()
                        if durable.checkpoints else [])
        print(f"journal: {len(stream) + emitted} entries fsync'd "
              f"to {args.journal}")
        if args.checkpoint_every:
            print(f"checkpoints: every {args.checkpoint_every} "
                  f"events, {len(retained)} retained in "
                  f"{args.checkpoint_dir}")
        _print_stream_summary(args, records, accounts, active,
                              paused, emitted, stats)
        if args.trace:
            count = write_trace(args.trace, records)
            print(f"wrote {count} records to {args.trace}")
        return 0

    with OnlineAuctionService(
            config, method=args.method, maintenance=args.maintenance,
            workers=args.workers, engine_seed=args.seed + 1,
            supervise=args.supervise,
            round_timeout=args.round_timeout,
            max_worker_restarts=args.max_worker_restarts,
            batching=batching,
            observability=observability) as service:
        if args.snapshot_at:
            head = service.run(stream.prefix(args.snapshot_at))
            snapshot = service.snapshot()
            head_stats = service.stats
            emitted = len(service.emitted)
            if args.snapshot_file:
                snapshot.to_file(args.snapshot_file)
                print(f"snapshot written to {args.snapshot_file} "
                      f"after {args.snapshot_at} events")
            service.close()
            resumed = OnlineAuctionService.restore(snapshot)
            # Batching is a dispatch knob, not resumable state: the
            # snapshot doesn't carry it, so re-arm the resumed side.
            resumed.batching = batching
            try:
                records = head + resumed.run(stream[args.snapshot_at:])
                accounts = resumed.accounts
                # Per-event timings of the whole spliced run, not just
                # the post-restore tail.
                stats = resumed.stats
                stats.absorb(head_stats)
                active = len(resumed.active_advertisers())
                paused = len(resumed.paused_advertisers())
                emitted += len(resumed.emitted)
            finally:
                resumed.close()
            print("resumed from snapshot mid-stream")
        else:
            records = service.run(stream)
            accounts = service.accounts
            stats = service.stats
            active = len(service.active_advertisers())
            paused = len(service.paused_advertisers())
            emitted = len(service.emitted)

    _print_stream_summary(args, records, accounts, active, paused,
                          emitted, stats)
    if args.trace:
        count = write_trace(args.trace, records)
        print(f"wrote {count} records to {args.trace}")
    return 0


def _print_stream_summary(args, records, accounts, active, paused,
                          emitted, stats) -> None:
    print(f"auctions: {len(records)}  "
          f"provider revenue: {accounts.provider_revenue:.2f} "
          f"over {accounts.total_clicks()} clicks  "
          f"active advertisers at end: {active}")
    print(f"budget lifecycle: {emitted} pause/resume events emitted, "
          f"{paused} advertisers paused at end")
    timing = stats.to_dict()
    for kind, cell in timing["by_kind"].items():
        print(f"  {kind:>6s}: {cell['count']:5d} events  "
              f"{cell['mean_ms']:8.3f} ms/event")
    mode = (f"{args.workers} workers" if args.workers
            else "in-process")
    print(f"maintenance={args.maintenance} ({mode})")
    batching = timing.get("batching")
    if batching:
        shed_total = sum(batching.get("shed", {}).values())
        print(f"batching: {batching.get('windows', 0)} windows, "
              f"mean {batching.get('mean_window', 0.0):.1f} "
              f"max {batching.get('max_window', 0)} queries/window, "
              f"{shed_total} events shed")
    supervision = timing.get("supervision")
    # The supervision block is always present (stable schema, zeros
    # when nothing failed); only print it when a worker actually
    # failed — a healthy run has no healing story to tell.
    if supervision and supervision.get("worker_failures"):
        print(f"supervision: {supervision['worker_failures']} worker "
              f"failures healed ({supervision['respawns']} respawns, "
              f"{supervision['reshards']} re-shards, "
              f"{supervision['timeouts']} timeouts) "
              f"mean heal {1e3 * supervision['mean_heal_seconds']:.1f} "
              f"ms")
    if getattr(args, "metrics_out", None):
        print(f"metrics written to {args.metrics_out} "
              f"(inspect: repro obs report --metrics "
              f"{args.metrics_out})")
    if getattr(args, "trace_spans", None):
        print(f"span trace written to {args.trace_spans} "
              f"(inspect: repro obs report --trace "
              f"{args.trace_spans})")


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs import render_report

    if not args.metrics and not args.trace:
        print("obs report needs --metrics and/or --trace",
              file=sys.stderr)
        return 2
    try:
        lines = render_report(metrics_path=args.metrics,
                              trace_path=args.trace, top=args.top)
    except (OSError, ValueError) as error:
        print(f"obs report failed: {error}", file=sys.stderr)
        return 1
    for line in lines:
        print(line)
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.auction.trace import write_trace
    from repro.stream import EventLog, RecoveryError, recover

    try:
        result = recover(args.journal,
                         checkpoint_dir=args.checkpoint_dir,
                         workers=args.workers)
    except (RecoveryError, ValueError, OSError) as error:
        print(f"recovery failed: {error}", file=sys.stderr)
        return 1
    if result.checkpoint_path is not None:
        print(f"checkpoint: {result.checkpoint_path} "
              f"(watermark {result.checkpoint_events})")
    else:
        print("checkpoint: none — rebuilt from the journal header's "
              "genesis config")
    if result.checkpoints_skipped:
        print(f"skipped {result.checkpoints_skipped} torn/invalid "
              f"checkpoint file(s): "
              + ", ".join(path.name
                          for path in result.skipped_paths))
    print(f"journal: replayed {result.replayed_events} entries"
          + (" (torn tail dropped)" if result.torn_tail else ""))
    print(f"verified {result.verified_emissions} journaled "
          f"service emissions against replay")
    print(f"recovered watermark: {result.events_processed} events, "
          f"{result.service.auctions_run} auctions, "
          f"provider revenue "
          f"{result.service.accounts.provider_revenue:.2f}")
    records = list(result.records)
    if args.resume_events:
        # Finish the stream from a recorded event log: everything at
        # or past the recovered watermark is still unapplied.
        remaining = EventLog.from_jsonl(
            args.resume_events)[result.events_processed:]
        records += result.service.run(remaining)
        print(f"resumed {len(remaining)} remaining events from "
              f"{args.resume_events}")
    result.service.close()
    print(f"auctions recovered+resumed: {len(records)}")
    if args.trace:
        count = write_trace(args.trace, records)
        print(f"wrote {count} records to {args.trace} "
              f"(audit: tools/trace_diff.py --align against the "
              f"uninterrupted trace)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeConfig, run_server

    if args.checkpoint_every and not args.checkpoint_dir:
        print("--checkpoint-every needs --checkpoint-dir",
              file=sys.stderr)
        return 2
    if (args.checkpoint_every or args.checkpoint_dir) \
            and not args.journal:
        print("checkpoints need --journal (recovery replays the "
              "journaled suffix)", file=sys.stderr)
        return 2
    return run_server(ServeConfig(
        host=args.host, port=args.port,
        advertisers=args.advertisers, slots=args.slots,
        keywords=args.keywords, seed=args.seed, method=args.method,
        maintenance=args.maintenance, workers=args.workers,
        batch_window=args.batch_window,
        ingress_capacity=args.ingress_capacity,
        journal=args.journal,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        checkpoint_retain=args.checkpoint_retain,
        record_events=args.record_events, trace=args.trace,
        metrics_out=args.metrics_out, trace_spans=args.trace_spans,
        metrics_every=args.metrics_every,
        port_file=args.port_file))


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json as json_module
    import time as time_module

    from repro.workloads import (
        LoadgenConfig,
        PaperWorkloadConfig,
        plan_fleet,
        run_fleet,
    )

    port = args.port
    if args.port_file:
        deadline = time_module.monotonic() + args.wait
        while time_module.monotonic() < deadline:
            try:
                text = open(args.port_file).read().strip()
            except OSError:
                text = ""
            if text:
                port = int(text)
                break
            time_module.sleep(0.05)
    if not port:
        print("loadgen needs --port or a --port-file that appears "
              "within --wait seconds", file=sys.stderr)
        return 2
    workload_config = PaperWorkloadConfig(
        num_advertisers=args.advertisers, num_slots=args.slots,
        num_keywords=args.keywords, seed=args.seed)
    plan = plan_fleet(workload_config, LoadgenConfig(
        events=args.events, churn_rate=args.churn_rate,
        genesis=args.genesis, min_active=args.min_active,
        budget_low=args.budget_low, budget_high=args.budget_high,
        seed=args.seed, processes=args.processes,
        connections=args.connections, consoles=args.consoles))
    print(f"loadgen: {plan.total_events} events "
          f"({len(plan.genesis)} genesis) over "
          f"{args.processes} processes x {args.connections} query "
          f"connections + {args.consoles} consoles "
          f"-> {args.host}:{port}")
    report = run_fleet(args.host, port, plan,
                       processes=args.processes, timeout=args.wait)
    summary = report.to_dict()
    print(f"loadgen: {summary['submitted']} submitted, "
          f"{summary['results']} results, {summary['oks']} acks, "
          f"{summary['errors']} errors in "
          f"{summary['wall_seconds']:.2f}s "
          f"({summary['events_per_second']:.1f} events/s)")
    print(f"loadgen: round-trip p50 {summary['p50_ms']:.2f} ms  "
          f"p99 {summary['p99_ms']:.2f} ms")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json_module.dump(summary, handle, indent=2,
                             sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")
    return 1 if summary["errors"] else 0


def _cmd_bench_throughput(args: argparse.Namespace) -> int:
    from repro.bench import compare_throughput, write_report_artifacts
    from repro.workloads import PaperWorkload, PaperWorkloadConfig

    config = PaperWorkloadConfig(
        num_advertisers=args.advertisers, num_slots=args.slots,
        num_keywords=args.keywords, seed=args.seed)

    if args.churn_rate:
        return _bench_churn(args, config)

    def fresh_engine():
        return PaperWorkload(config).build_engine(
            args.method, engine_seed=args.seed + 1)

    if args.workers:
        from repro.runtime import ShardedAuctionRuntime

        with ShardedAuctionRuntime(
                config, method=args.method, workers=args.workers,
                engine_seed=args.seed + 1) as runtime:
            # Worker count reaches the sharded profile through its
            # parallel_wd accounting (num_leaves); stamping it as a
            # shared extra would mislabel the sequential profile too.
            report = compare_throughput(
                fresh_engine(), runtime, args.auctions,
                labels=("sequential", f"sharded-{args.workers}w"),
                num_advertisers=args.advertisers, num_slots=args.slots,
                num_keywords=args.keywords)
    else:
        report = compare_throughput(fresh_engine(), fresh_engine(),
                                    args.auctions,
                                    num_advertisers=args.advertisers,
                                    num_slots=args.slots,
                                    num_keywords=args.keywords)
    print(f"bench-throughput: method={args.method} "
          f"n={args.advertisers} k={args.slots} "
          f"keywords={args.keywords} auctions={args.auctions}"
          + (f" workers={args.workers}" if args.workers else ""))
    for line in report.to_lines():
        print(line)

    if args.profile_dir is not None:
        write_report_artifacts(report, args.profile_dir,
                               stem=f"{args.method}_n{args.advertisers}")
        print(f"profiles written to {args.profile_dir}/")

    if not report.identical:
        print("error: batched results differ from sequential",
              file=sys.stderr)
        return 1
    if args.min_speedup and report.speedup < args.min_speedup:
        print(f"error: speedup {report.speedup:.2f}x below "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


def _bench_churn(args: argparse.Namespace, config) -> int:
    """Streaming throughput: incremental vs rebuild-per-event."""
    import time as time_module

    from repro.bench import records_identical
    from repro.stream import OnlineAuctionService
    from repro.workloads import (
        ChurnStreamConfig,
        PaperWorkload,
        generate_stream,
    )

    workload = PaperWorkload(config)
    stream = generate_stream(workload, ChurnStreamConfig(
        num_events=args.auctions, churn_rate=args.churn_rate,
        genesis=max(args.advertisers // 2, 1),
        min_active=args.slots + 1, seed=args.seed + 17))
    results = {}
    for maintenance in ("incremental", "rebuild"):
        with OnlineAuctionService(
                config, method=args.method, maintenance=maintenance,
                workers=args.workers,
                engine_seed=args.seed + 1) as service:
            start = time_module.perf_counter()
            records = service.run(stream)
            wall = time_module.perf_counter() - start
            results[maintenance] = (records, wall,
                                    service.stats.to_dict())
        rate = len(records) / wall if wall > 0 else 0.0
        control_ms = 1e3 * results[maintenance][2]["control_seconds"]
        print(f"{maintenance:>12s}: {rate:8.1f} auctions/s "
              f"({len(records)} auctions, "
              f"control events cost {control_ms:.1f} ms total)")
    identical = records_identical(results["incremental"][0],
                                  results["rebuild"][0])
    speedup = (results["rebuild"][1]
               / max(results["incremental"][1], 1e-12))
    print(f"   incremental vs rebuild speedup: {speedup:.2f}x  "
          f"(results identical: {identical})")
    if not identical:
        print("error: incremental maintenance diverged from "
              "rebuild-per-event", file=sys.stderr)
        return 1
    if args.min_speedup and speedup < args.min_speedup:
        print(f"error: speedup {speedup:.2f}x below "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


def _cmd_sql(args: argparse.Namespace) -> int:
    from repro.sqlmini import Database, SelectResult, SqlError

    database = Database()
    source = " ".join(args.statements) if args.statements \
        else sys.stdin.read()
    try:
        from repro.sqlmini.parser import parse_script
        script = parse_script(source)
        for statement in script.statements:
            result = database.execute(statement)
            if isinstance(result, SelectResult):
                print("\t".join(result.columns))
                for row in result.rows:
                    print("\t".join("NULL" if value is None else str(value)
                                    for value in row))
            elif isinstance(result, int):
                print(f"-- {result} row(s) affected")
    except SqlError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Expressive and scalable sponsored-search auctions "
                    "(Martin, Gehrke & Halpern, ICDE 2008)")
    parser.add_argument("--log-level", default=None,
                        choices=["debug", "info", "warning", "error"],
                        help="attach a structured handler to the "
                             "repro.* logging namespace at this level "
                             "(place before the subcommand)")
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", help="run the Section V workload")
    simulate.add_argument("--advertisers", type=int, default=200)
    simulate.add_argument("--auctions", type=int, default=200)
    simulate.add_argument("--slots", type=int, default=15)
    simulate.add_argument("--keywords", type=int, default=10)
    simulate.add_argument("--method", default="rh",
                          choices=["lp", "hungarian", "rh", "rhtalu"])
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--trace", default=None,
                          help="write a JSONL auction trace here")
    simulate.add_argument("--batch", action="store_true",
                          help="run through the batched pipeline")
    simulate.add_argument("--workers", type=int, default=0,
                          help="shard the population over this many "
                               "worker processes (0 = in-process)")
    simulate.set_defaults(func=_cmd_simulate)

    bench = commands.add_parser(
        "bench-throughput",
        help="sequential vs batched pipeline throughput")
    bench.add_argument("--advertisers", type=int, default=500)
    bench.add_argument("--auctions", type=int, default=100)
    bench.add_argument("--slots", type=int, default=15)
    bench.add_argument("--keywords", type=int, default=10)
    bench.add_argument("--method", default="rh",
                       choices=["lp", "hungarian", "rh", "rhtalu"])
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--workers", type=int, default=0,
                       help="compare against the sharded runtime with "
                            "this many worker processes (0 = batched "
                            "in-process pipeline)")
    bench.add_argument("--min-speedup", type=float, default=0.0,
                       help="fail below this speedup (0 = report only)")
    bench.add_argument("--profile-dir", default=None,
                       help="write per-phase JSON profiles here")
    bench.add_argument("--churn-rate", type=float, default=0.0,
                       help="stream this fraction of control events "
                            "through two online services (incremental "
                            "vs rebuild-per-event maintenance) instead "
                            "of the batch comparison")
    bench.set_defaults(func=_cmd_bench_throughput)

    stream = commands.add_parser(
        "stream",
        help="online serving: event stream with live advertiser churn")
    stream.add_argument("--advertisers", type=int, default=200,
                        help="universe capacity (ids join/leave "
                             "within it)")
    stream.add_argument("--events", type=int, default=400,
                        help="post-genesis stream length")
    stream.add_argument("--churn-rate", type=float, default=0.1)
    stream.add_argument("--genesis", type=int, default=None,
                        help="initial advertisers (default: half the "
                             "universe)")
    stream.add_argument("--min-active", type=int, default=2)
    stream.add_argument("--slots", type=int, default=15)
    stream.add_argument("--keywords", type=int, default=10)
    stream.add_argument("--method", default="rh",
                        choices=["lp", "hungarian", "rh", "rhtalu"])
    stream.add_argument("--maintenance", default="incremental",
                        choices=["incremental", "rebuild"])
    stream.add_argument("--workers", type=int, default=0,
                        help="shard the service over this many worker "
                             "processes (0 = in-process)")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--budget-low", type=float, default=50.0,
                        help="lower bound of generated join budgets "
                             "(low budgets exercise exhaustion "
                             "pausing; 0 0 disables tracking)")
    stream.add_argument("--budget-high", type=float, default=500.0,
                        help="upper bound of generated join budgets")
    stream.add_argument("--snapshot-at", type=int, default=0,
                        help="snapshot after this many events, then "
                             "restore and finish the stream")
    stream.add_argument("--snapshot-file", default=None,
                        help="also write the snapshot JSON here")
    stream.add_argument("--replay", default=None, metavar="FILE",
                        help="consume a captured JSONL event log "
                             "instead of generating a stream (the "
                             "replay-verification workflow; service "
                             "knobs must match the recording)")
    stream.add_argument("--record-events", default=None,
                        metavar="FILE",
                        help="write the consumed event stream as "
                             "JSONL (replayable via --replay)")
    stream.add_argument("--trace", default=None, metavar="FILE",
                        help="write the auction records as a JSONL "
                             "trace (diffable via "
                             "tools/trace_diff.py)")
    stream.add_argument("--journal", default=None, metavar="FILE",
                        help="serve durably: fsync every event to "
                             "this write-ahead journal before "
                             "applying it (recoverable via "
                             "`repro recover`)")
    stream.add_argument("--checkpoint-every", type=int, default=0,
                        metavar="N",
                        help="with --journal: write a checkpoint "
                             "every N applied events (0 = journal "
                             "only)")
    stream.add_argument("--checkpoint-dir", default=None,
                        metavar="DIR",
                        help="directory for checkpoint files "
                             "(required by --checkpoint-every)")
    stream.add_argument("--checkpoint-retain", type=int, default=2,
                        metavar="K",
                        help="keep the newest K checkpoints "
                             "(default 2: survives one torn file)")
    stream.add_argument("--supervise", action="store_true",
                        help="with --workers: heal worker failures "
                             "in place (respawn the shard from the "
                             "supervisor's retained capture; after "
                             "--max-worker-restarts, degrade to one "
                             "fewer worker) instead of dying")
    stream.add_argument("--round-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="treat a shard whose reply is this late "
                             "as hung and heal it (default: wait "
                             "forever on a live worker)")
    stream.add_argument("--max-worker-restarts", type=int, default=1,
                        metavar="N",
                        help="per-shard respawn budget before the "
                             "fleet degrades by re-sharding over one "
                             "fewer worker (default 1)")
    stream.add_argument("--batch-window", type=int, default=0,
                        metavar="N",
                        help="micro-batch up to N consecutive query "
                             "arrivals per dispatch (control events "
                             "flush the window; 0 = unbatched). "
                             "Records stay bit-identical to the "
                             "unbatched service under the default "
                             "delay backpressure")
    stream.add_argument("--ingress-capacity", type=int, default=64,
                        metavar="N",
                        help="with --batch-window: bound on the "
                             "ingress queue (default 64); admission "
                             "beyond it applies --backpressure")
    stream.add_argument("--backpressure", default="delay",
                        choices=["delay", "shed"],
                        help="full-queue policy: delay (arrivals "
                             "wait upstream; lossless) or shed "
                             "(drop queries, never control events; "
                             "sheds are counted in the timing stats)")
    stream.add_argument("--arrival-rate", type=float, default=1.0,
                        metavar="R",
                        help="with --backpressure shed: simulated "
                             "arrivals per serviced event (> 1 "
                             "saturates the queue and sheds)")
    stream.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write a JSONL metrics sidecar here "
                             "(periodic snapshots + a final summary; "
                             "inspect with `repro obs report`). "
                             "Observability is sidecar-only: the "
                             "auction trace stays bit-identical")
    stream.add_argument("--trace-spans", default=None, metavar="FILE",
                        help="write a JSONL span trace here (one "
                             "span tree per applied event, ids "
                             "derived from event seq)")
    stream.add_argument("--metrics-every", type=int, default=100,
                        metavar="N",
                        help="with --metrics-out: snapshot the "
                             "metrics every N applied events "
                             "(0 = summary only; default 100)")
    stream.set_defaults(func=_cmd_stream)

    recover = commands.add_parser(
        "recover",
        help="rebuild a crashed durable stream service: newest valid "
             "checkpoint + journaled-suffix replay")
    recover.add_argument("--journal", required=True, metavar="FILE",
                         help="the crashed run's write-ahead journal")
    recover.add_argument("--checkpoint-dir", default=None,
                         metavar="DIR",
                         help="the crashed run's checkpoint "
                              "directory (omit to replay the whole "
                              "journal from genesis)")
    recover.add_argument("--workers", type=int, default=None,
                         help="worker count for the recovered "
                              "service (default: the crashed run's; "
                              "captures are global, any count "
                              "replays identically)")
    recover.add_argument("--resume-events", default=None,
                         metavar="FILE",
                         help="after recovery, finish the stream "
                              "from this recorded event log "
                              "(events at/past the recovered "
                              "watermark)")
    recover.add_argument("--trace", default=None, metavar="FILE",
                         help="write recovered (+resumed) auction "
                              "records as a JSONL trace for "
                              "trace_diff auditing")
    recover.set_defaults(func=_cmd_recover)

    serve = commands.add_parser(
        "serve",
        help="serve the online auction service on a TCP port "
             "(length-prefixed JSON wire protocol; SIGTERM drains "
             "and exits 0)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 = let the OS pick (see --port-file)")
    serve.add_argument("--port-file", default=None, metavar="FILE",
                       help="write the bound port here once "
                            "listening (how scripted clients find "
                            "an --port 0 server)")
    serve.add_argument("--advertisers", type=int, default=200,
                       help="universe capacity (ids join/leave "
                            "within it)")
    serve.add_argument("--slots", type=int, default=15)
    serve.add_argument("--keywords", type=int, default=10)
    serve.add_argument("--method", default="rh",
                       choices=["lp", "hungarian", "rh", "rhtalu"])
    serve.add_argument("--maintenance", default="incremental",
                       choices=["incremental", "rebuild"])
    serve.add_argument("--workers", type=int, default=0,
                       help="shard the service over this many worker "
                            "processes (0 = in-process)")
    serve.add_argument("--seed", type=int, default=0,
                       help="engine seed is seed+1 (the stream CLI "
                            "convention, so offline replays match)")
    serve.add_argument("--batch-window", type=int, default=0,
                       metavar="N",
                       help="coalesce up to N already-queued query "
                            "arrivals per dispatch (adaptive: never "
                            "waits; control events flush; 0/1 = "
                            "unbatched)")
    serve.add_argument("--ingress-capacity", type=int, default=256,
                       metavar="N",
                       help="bound on the sequencer queue; a full "
                            "queue blocks the submitting "
                            "connection's reads (TCP backpressure)")
    serve.add_argument("--record-events", default=None,
                       metavar="FILE",
                       help="write the applied event stream as JSONL "
                            "at shutdown (replayable via `repro "
                            "stream --replay`)")
    serve.add_argument("--trace", default=None, metavar="FILE",
                       help="write the auction records as a JSONL "
                            "trace at shutdown")
    serve.add_argument("--journal", default=None, metavar="FILE",
                       help="serve durably: fsync every applied "
                            "event to this write-ahead journal "
                            "before applying it")
    serve.add_argument("--checkpoint-every", type=int, default=0,
                       metavar="N",
                       help="with --journal: checkpoint every N "
                            "applied events (a final checkpoint "
                            "always lands at shutdown)")
    serve.add_argument("--checkpoint-dir", default=None,
                       metavar="DIR")
    serve.add_argument("--checkpoint-retain", type=int, default=2,
                       metavar="K")
    serve.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="JSONL metrics sidecar (connection/"
                            "ingress counters + e2e latency ride "
                            "alongside the service metrics)")
    serve.add_argument("--trace-spans", default=None, metavar="FILE")
    serve.add_argument("--metrics-every", type=int, default=100,
                       metavar="N")
    serve.set_defaults(func=_cmd_serve)

    loadgen = commands.add_parser(
        "loadgen",
        help="drive a live `repro serve` with the deterministic "
             "client fleet (N processes x M connections of churn)")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=0)
    loadgen.add_argument("--port-file", default=None, metavar="FILE",
                         help="poll this file for the server's port "
                              "(written by `repro serve "
                              "--port-file`)")
    loadgen.add_argument("--wait", type=float, default=30.0,
                         metavar="SECONDS",
                         help="how long to wait for the port file "
                              "and for replies (default 30)")
    loadgen.add_argument("--advertisers", type=int, default=200,
                         help="must match the server's universe")
    loadgen.add_argument("--slots", type=int, default=15)
    loadgen.add_argument("--keywords", type=int, default=10)
    loadgen.add_argument("--seed", type=int, default=0,
                         help="fixed seed -> identical fleet scripts "
                              "(the plan is deterministic)")
    loadgen.add_argument("--events", type=int, default=400,
                         help="post-genesis stream length")
    loadgen.add_argument("--churn-rate", type=float, default=0.2)
    loadgen.add_argument("--genesis", type=int, default=None)
    loadgen.add_argument("--min-active", type=int, default=2)
    loadgen.add_argument("--budget-low", type=float, default=50.0)
    loadgen.add_argument("--budget-high", type=float, default=500.0)
    loadgen.add_argument("--processes", type=int, default=2,
                         help="fleet worker processes")
    loadgen.add_argument("--connections", type=int, default=2,
                         help="query connections per process")
    loadgen.add_argument("--consoles", type=int, default=2,
                         help="advertiser-console connections")
    loadgen.add_argument("--out", default=None, metavar="FILE",
                         help="write the latency/throughput report "
                              "as JSON")
    loadgen.set_defaults(func=_cmd_loadgen)

    validate = commands.add_parser(
        "validate", help="cross-method agreement self-check")
    validate.add_argument("--trials", type=int, default=25)
    validate.add_argument("--seed", type=int, default=0)
    validate.set_defaults(func=_cmd_validate)

    sql = commands.add_parser(
        "sql", help="execute sqlmini statements (args or stdin)")
    sql.add_argument("statements", nargs="*",
                     help="SQL text; omit to read stdin")
    sql.set_defaults(func=_cmd_sql)

    obs = commands.add_parser(
        "obs",
        help="inspect observability sidecars written by "
             "`repro stream`")
    obs_commands = obs.add_subparsers(dest="obs_command",
                                      required=True)
    report = obs_commands.add_parser(
        "report",
        help="render a human-readable report from a metrics and/or "
             "span-trace sidecar")
    report.add_argument("--metrics", default=None, metavar="FILE",
                        help="a --metrics-out JSONL sidecar")
    report.add_argument("--trace", default=None, metavar="FILE",
                        help="a --trace-spans JSONL sidecar")
    report.add_argument("--top", type=int, default=5, metavar="N",
                        help="how many slowest events to list "
                             "(default 5)")
    report.set_defaults(func=_cmd_obs_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level:
        from repro.obs import configure_logging

        configure_logging(args.log_level)
    return args.func(args)
