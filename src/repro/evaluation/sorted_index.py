"""Sorted per-parameter indexes for the threshold algorithm (IV-A).

The paper keeps, for each slot and each advertiser-specific parameter, a
list of bidders sorted by that parameter, maintained incrementally as
winners update their state.  :class:`SortedIndex` is that structure: ids
sorted by a float key, supporting descending sequential access (what TA's
sorted access needs), random access by id, and incremental repositioning.

Implementation: a bisect-maintained array of ``(key, id)`` pairs plus an
``id -> key`` map.  Updates are O(log n) search + O(n) memmove — the
memmove is C-speed and only the k winners per auction ever move, which
matches the paper's O(|Y_j| k log n) maintenance budget in spirit.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterator


class SortedIndex:
    """Ids ordered by a float key (descending iteration order)."""

    def __init__(self, items: dict[int, float] | None = None):
        self._key_of: dict[int, float] = {}
        self._entries: list[tuple[float, int]] = []
        if items:
            self._key_of = {int(i): float(k) for i, k in items.items()}
            self._entries = sorted(
                (key, item) for item, key in self._key_of.items())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, item: int) -> bool:
        return item in self._key_of

    def key(self, item: int) -> float:
        """Random access: the key currently stored for ``item``."""
        return self._key_of[item]

    def insert(self, item: int, key: float) -> None:
        """Add a new id (must not be present)."""
        if item in self._key_of:
            raise KeyError(f"id {item} already present")
        self._key_of[item] = float(key)
        insort(self._entries, (float(key), item))

    def remove(self, item: int) -> float:
        """Remove an id, returning its key."""
        key = self._key_of.pop(item)
        index = bisect_left(self._entries, (key, item))
        assert self._entries[index] == (key, item)
        del self._entries[index]
        return key

    def update(self, item: int, new_key: float) -> None:
        """Reposition an id under a new key."""
        self.remove(item)
        self.insert(item, new_key)

    def descending(self) -> Iterator[tuple[int, float]]:
        """Yield (id, key) pairs from the highest key downward.

        The iterator reflects the index at call time; do not mutate the
        index while consuming it.
        """
        for key, item in reversed(self._entries):
            yield item, key

    def max_key(self) -> float | None:
        """The largest key, or None when empty."""
        if not self._entries:
            return None
        return self._entries[-1][0]

    def items(self) -> dict[int, float]:
        """A snapshot copy of the id -> key mapping."""
        return dict(self._key_of)
