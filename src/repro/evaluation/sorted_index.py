"""Sorted per-parameter indexes for the threshold algorithm (IV-A).

The paper keeps, for each slot and each advertiser-specific parameter, a
list of bidders sorted by that parameter, maintained incrementally as
winners update their state.  :class:`SortedIndex` is that structure: ids
sorted by a float key, supporting descending sequential access (what TA's
sorted access needs), random access by id, and incremental repositioning.

Implementation: a bisect-maintained array of ``(key, id)`` pairs plus an
``id -> key`` map.  Updates are O(log n) search + O(n) memmove — the
memmove is C-speed and only the k winners per auction ever move, which
matches the paper's O(|Y_j| k log n) maintenance budget in spirit.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterator

import numpy as np


class SortedIndex:
    """Ids ordered by a float key (descending iteration order)."""

    def __init__(self, items: dict[int, float] | None = None):
        self._key_of: dict[int, float] = {}
        self._entries: list[tuple[float, int]] = []
        if items:
            self._key_of = {int(i): float(k) for i, k in items.items()}
            self._entries = sorted(
                (key, item) for item, key in self._key_of.items())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, item: int) -> bool:
        return item in self._key_of

    def key(self, item: int) -> float:
        """Random access: the key currently stored for ``item``."""
        return self._key_of[item]

    def insert(self, item: int, key: float) -> None:
        """Add a new id (must not be present)."""
        if item in self._key_of:
            raise KeyError(f"id {item} already present")
        self._key_of[item] = float(key)
        insort(self._entries, (float(key), item))

    def remove(self, item: int) -> float:
        """Remove an id, returning its key."""
        key = self._key_of.pop(item)
        index = bisect_left(self._entries, (key, item))
        assert self._entries[index] == (key, item)
        del self._entries[index]
        return key

    def update(self, item: int, new_key: float) -> None:
        """Reposition an id under a new key."""
        self.remove(item)
        self.insert(item, new_key)

    def descending(self) -> Iterator[tuple[int, float]]:
        """Yield (id, key) pairs from the highest key downward.

        The iterator reflects the index at call time; do not mutate the
        index while consuming it.
        """
        for key, item in reversed(self._entries):
            yield item, key

    def max_key(self) -> float | None:
        """The largest key, or None when empty."""
        if not self._entries:
            return None
        return self._entries[-1][0]

    def items(self) -> dict[int, float]:
        """A snapshot copy of the id -> key mapping."""
        return dict(self._key_of)


class ColumnArgsortIndex:
    """All columns' descending orders as slices of one shared argsort.

    The vectorized RHTALU path replaces the k per-slot
    :class:`SortedIndex` objects with this structure: one ``(m, k)``
    argsort of the click matrix rows that are currently *members*, so
    every slot's sorted source is a column view of a single allocation
    instead of its own dict-backed index.  Three aligned arrays:

    * ``order[r, j]`` — the id at descending rank ``r`` of column ``j``
      (ties between equal values fall to the higher id first, matching
      ``SortedIndex.descending()``);
    * ``sorted_values[r, j]`` — ``matrix[order[r, j], j]``, the value
      stream a sorted access at rank ``r`` would read;
    * ``rank[i, j]`` — the inverse permutation: the descending rank of
      id ``i`` in column ``j`` (non-members hold an out-of-range
      sentinel).  The threshold kernel uses it to decide in O(1)
      whether an id surfaced by the other source already lies inside a
      column's walked prefix.

    ``members`` defaults to every row of the matrix — the static
    full-population index the batch pipeline builds once.  The online
    serving layer (:mod:`repro.stream`) instead maintains the member
    set *incrementally* under advertiser churn: :meth:`insert` and
    :meth:`remove` splice one id in or out of every column's order in
    O(m) memmoves, preserving exactly the order a fresh stable argsort
    of the surviving members would produce (``tests/evaluation/
    test_sorted_index.py`` pins the equivalence).
    """

    def __init__(self, matrix: np.ndarray,
                 members: np.ndarray | None = None):
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(
                f"matrix must be 2-D, got shape {matrix.shape}")
        self.matrix = matrix
        universe, num_cols = matrix.shape
        if members is None:
            sub = matrix
            member_ids = np.arange(universe, dtype=np.int64)
        else:
            member_ids = np.asarray(members, dtype=np.int64)
            if member_ids.ndim != 1:
                raise ValueError("members must be a 1-D id array")
            if len(member_ids) and (
                    member_ids.min() < 0
                    or member_ids.max() >= universe):
                raise ValueError("members outside the matrix's rows")
            if np.any(np.diff(member_ids) <= 0):
                raise ValueError("members must be strictly ascending")
            sub = (matrix if len(member_ids) == universe
                   else matrix[member_ids])
        # Stable ascending argsort reversed: descending by value, ties
        # descending by id — the SortedIndex iteration order.  (Member
        # positions ascend with ids, so position ties are id ties.)
        ascending = np.argsort(sub, axis=0, kind="stable")
        self.order = np.ascontiguousarray(
            member_ids[ascending[::-1, :]])
        self.sorted_values = np.take_along_axis(
            matrix, self.order, axis=0)
        self.rank = np.full((universe, num_cols), universe,
                            dtype=np.int64)
        self._refresh_rank()

    def _refresh_rank(self) -> None:
        """Recompute the inverse permutation from ``order``."""
        universe, num_cols = self.matrix.shape
        self.rank.fill(universe)
        if len(self.order):
            np.put_along_axis(
                self.rank, self.order,
                np.arange(len(self.order))[:, None].repeat(num_cols,
                                                           axis=1),
                axis=0)

    @property
    def num_ids(self) -> int:
        return self.order.shape[0]

    @property
    def num_columns(self) -> int:
        return self.order.shape[1]

    def __contains__(self, item: int) -> bool:
        return (0 <= item < self.matrix.shape[0]
                and self.rank[item, 0] < len(self.order))

    # -- incremental membership (live advertiser churn) -----------------

    def insert(self, item: int) -> None:
        """Splice a matrix row into every column's descending order.

        The insertion point per column is exactly where a fresh stable
        argsort would put the id: descending by value, ties descending
        by id.  Cost is O(m) work per column — the order/value memmove
        plus a rank bump for the entries the splice displaces — versus
        O(m log m) per column for a full re-argsort, and independent of
        the id universe's size.
        """
        if item in self:
            raise KeyError(f"id {item} already indexed")
        if not 0 <= item < self.matrix.shape[0]:
            raise KeyError(f"id {item} outside the matrix's rows")
        values = self.matrix[item]
        greater = (self.sorted_values > values).sum(axis=0)
        tied_above = ((self.sorted_values == values)
                      & (self.order > item)).sum(axis=0)
        positions = greater + tied_above
        num_cols = self.order.shape[1]
        grown_order = np.empty((len(self.order) + 1, num_cols),
                               dtype=np.int64)
        grown_values = np.empty_like(grown_order, dtype=float)
        for col in range(num_cols):
            split = positions[col]
            grown_order[:split, col] = self.order[:split, col]
            grown_order[split, col] = item
            grown_order[split + 1:, col] = self.order[split:, col]
            grown_values[:split, col] = self.sorted_values[:split, col]
            grown_values[split, col] = values[col]
            grown_values[split + 1:, col] = \
                self.sorted_values[split:, col]
            # Entries displaced by the splice move down one rank; the
            # prefix is untouched.
            self.rank[self.order[split:, col], col] += 1
            self.rank[item, col] = split
        self.order = grown_order
        self.sorted_values = grown_values

    def remove(self, item: int) -> None:
        """Drop an id from every column's order (one memmove each,
        plus a rank decrement for the entries that move up)."""
        if item not in self:
            raise KeyError(f"id {item} not indexed")
        num_cols = self.order.shape[1]
        for col in range(num_cols):
            position = self.rank[item, col]
            self.rank[self.order[position + 1:, col], col] -= 1
        self.rank[item, :] = self.matrix.shape[0]
        keep = self.order != item
        num_rows = len(self.order) - 1
        self.order = self.order.T[keep.T].reshape(
            num_cols, num_rows).T.copy()
        self.sorted_values = self.sorted_values.T[keep.T].reshape(
            num_cols, num_rows).T.copy()

    def column(self, col: int) -> "_ColumnView":
        """A per-column :class:`RankedSource`-compatible view."""
        return _ColumnView(self, col)


class _ColumnView:
    """RankedSource adapter over one column of a ColumnArgsortIndex."""

    def __init__(self, index: ColumnArgsortIndex, col: int):
        self._index = index
        self._col = col

    def __len__(self) -> int:
        return self._index.num_ids

    def __contains__(self, item: int) -> bool:
        return 0 <= item < self._index.num_ids

    def key(self, item: int) -> float:
        return float(self._index.matrix[item, self._col])

    def descending(self) -> Iterator[tuple[int, float]]:
        order = self._index.order[:, self._col]
        values = self._index.sorted_values[:, self._col]
        for item, value in zip(order, values):
            yield int(item), float(value)
