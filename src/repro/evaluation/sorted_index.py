"""Sorted per-parameter indexes for the threshold algorithm (IV-A).

The paper keeps, for each slot and each advertiser-specific parameter, a
list of bidders sorted by that parameter, maintained incrementally as
winners update their state.  :class:`SortedIndex` is that structure: ids
sorted by a float key, supporting descending sequential access (what TA's
sorted access needs), random access by id, and incremental repositioning.

Implementation: a bisect-maintained array of ``(key, id)`` pairs plus an
``id -> key`` map.  Updates are O(log n) search + O(n) memmove — the
memmove is C-speed and only the k winners per auction ever move, which
matches the paper's O(|Y_j| k log n) maintenance budget in spirit.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterator

import numpy as np


class SortedIndex:
    """Ids ordered by a float key (descending iteration order)."""

    def __init__(self, items: dict[int, float] | None = None):
        self._key_of: dict[int, float] = {}
        self._entries: list[tuple[float, int]] = []
        if items:
            self._key_of = {int(i): float(k) for i, k in items.items()}
            self._entries = sorted(
                (key, item) for item, key in self._key_of.items())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, item: int) -> bool:
        return item in self._key_of

    def key(self, item: int) -> float:
        """Random access: the key currently stored for ``item``."""
        return self._key_of[item]

    def insert(self, item: int, key: float) -> None:
        """Add a new id (must not be present)."""
        if item in self._key_of:
            raise KeyError(f"id {item} already present")
        self._key_of[item] = float(key)
        insort(self._entries, (float(key), item))

    def remove(self, item: int) -> float:
        """Remove an id, returning its key."""
        key = self._key_of.pop(item)
        index = bisect_left(self._entries, (key, item))
        assert self._entries[index] == (key, item)
        del self._entries[index]
        return key

    def update(self, item: int, new_key: float) -> None:
        """Reposition an id under a new key."""
        self.remove(item)
        self.insert(item, new_key)

    def descending(self) -> Iterator[tuple[int, float]]:
        """Yield (id, key) pairs from the highest key downward.

        The iterator reflects the index at call time; do not mutate the
        index while consuming it.
        """
        for key, item in reversed(self._entries):
            yield item, key

    def max_key(self) -> float | None:
        """The largest key, or None when empty."""
        if not self._entries:
            return None
        return self._entries[-1][0]

    def items(self) -> dict[int, float]:
        """A snapshot copy of the id -> key mapping."""
        return dict(self._key_of)


class ColumnArgsortIndex:
    """All columns' descending orders as slices of one shared argsort.

    The vectorized RHTALU path replaces the k per-slot
    :class:`SortedIndex` objects with this structure: one ``(n, k)``
    argsort of the click matrix, so every slot's sorted source is a
    column view of a single allocation instead of its own dict-backed
    index.  Three aligned arrays:

    * ``order[r, j]`` — the id at descending rank ``r`` of column ``j``
      (ties between equal values fall to the higher id first, matching
      ``SortedIndex.descending()``);
    * ``sorted_values[r, j]`` — ``matrix[order[r, j], j]``, the value
      stream a sorted access at rank ``r`` would read;
    * ``rank[i, j]`` — the inverse permutation: the descending rank of
      id ``i`` in column ``j``.  The threshold kernel uses it to decide
      in O(1) whether an id surfaced by the other source already lies
      inside a column's walked prefix.

    The matrix is static per evaluator (click probabilities do not move
    between auctions), so the index is built once.
    """

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(
                f"matrix must be 2-D, got shape {matrix.shape}")
        self.matrix = matrix
        num_ids, num_cols = matrix.shape
        # Stable ascending argsort reversed: descending by value, ties
        # descending by id — the SortedIndex iteration order.
        ascending = np.argsort(matrix, axis=0, kind="stable")
        self.order = np.ascontiguousarray(ascending[::-1, :])
        self.sorted_values = np.take_along_axis(matrix, self.order,
                                                axis=0)
        self.rank = np.empty_like(self.order)
        np.put_along_axis(
            self.rank, self.order,
            np.arange(num_ids)[:, None].repeat(num_cols, axis=1), axis=0)

    @property
    def num_ids(self) -> int:
        return self.order.shape[0]

    @property
    def num_columns(self) -> int:
        return self.order.shape[1]

    def column(self, col: int) -> "_ColumnView":
        """A per-column :class:`RankedSource`-compatible view."""
        return _ColumnView(self, col)


class _ColumnView:
    """RankedSource adapter over one column of a ColumnArgsortIndex."""

    def __init__(self, index: ColumnArgsortIndex, col: int):
        self._index = index
        self._col = col

    def __len__(self) -> int:
        return self._index.num_ids

    def __contains__(self, item: int) -> bool:
        return 0 <= item < self._index.num_ids

    def key(self, item: int) -> float:
        return float(self._index.matrix[item, self._col])

    def descending(self) -> Iterator[tuple[int, float]]:
        order = self._index.order[:, self._col]
        values = self._index.sorted_values[:, self._col]
        for item, value in zip(order, values):
            yield int(item), float(value)
