"""Lazily-maintained pacing programs (the "LU" in method RHTALU).

This module maintains the state of *n* :class:`~repro.strategies.
roi_equalizer.SimpleROIPacer` programs without running them: per keyword,
bidders sit in an increment, decrement, or constant delta list
(:mod:`repro.evaluation.delta_list`), and each auction applies one O(1)
logical adjustment per list instead of n physical updates.  Programs move
between lists only when

* a **time trigger** fires — a losing, overspending program's spending
  rate ``amt_spent / t`` decays past its target at the critical time
  ``t* = amt_spent / target`` (Section IV-B's shared monotonic variable
  "time"), or
* a **count trigger** fires — a bid reaches its cap/floor after a
  computable number of further auctions for its keyword (the shared
  monotonic variable "number of times the keyword occurred"), or
* the program **wins** and is updated eagerly (the only programs touched
  per auction, as Section IV-A stipulates).

The invariant, verified by ``tests/evaluation/test_logical_updates.py``:
after any auction sequence, every effective bid equals the bid an eager
``SimpleROIPacer`` ensemble would hold (to float tolerance).

This dict-backed class is the *reference implementation* — the semantic
spec the tests pin down.  The RHTALU evaluator's hot path runs on
:class:`~repro.evaluation.pacer_arrays.LazyPacerArrays`, an array
mirror built from a registered ``LazyPacerState`` at evaluator
construction that replays the same placement and trigger rules as
boolean-mask kernels (``tests/evaluation/test_pacer_arrays.py`` holds
the two to bid-for-bid parity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.evaluation.delta_list import DeltaList, MergedDeltaSource
from repro.evaluation.trigger_queue import TriggerQueue

_INC, _DEC = "inc", "dec"


@dataclass
class _KeywordEntry:
    """One advertiser's lazily-tracked state for one keyword."""

    maxbid: float
    generation: int = 0  # invalidates stale count triggers


@dataclass
class _AdvertiserState:
    target: float
    amt_spent: float = 0.0
    mode: str = _INC  # everyone starts underspending (spent 0)
    generation: int = 0  # invalidates stale time triggers
    keywords: dict[str, _KeywordEntry] = field(default_factory=dict)


@dataclass
class _KeywordIndex:
    """The three delta lists and the auction counter of one keyword."""

    inc: DeltaList = field(default_factory=DeltaList)
    dec: DeltaList = field(default_factory=DeltaList)
    const: DeltaList = field(default_factory=DeltaList)
    count: int = 0

    def source(self) -> MergedDeltaSource:
        return MergedDeltaSource([self.inc, self.dec, self.const])

    def locate(self, item: int) -> DeltaList:
        for lst in (self.inc, self.dec, self.const):
            if item in lst:
                return lst
        raise KeyError(f"advertiser {item} not indexed for this keyword")


@dataclass(frozen=True)
class _TimeTrigger:
    advertiser: int
    generation: int


@dataclass(frozen=True)
class _CountTrigger:
    advertiser: int
    keyword: str
    generation: int
    bound: float  # the bid value to pin when the trigger fires


class LazyPacerState:
    """All n pacing programs, maintained by logical updates."""

    def __init__(self, step: float = 1.0):
        if step <= 0:
            raise ValueError(f"step must be > 0, got {step}")
        self.step = step
        self._advertisers: dict[int, _AdvertiserState] = {}
        self._keywords: dict[str, _KeywordIndex] = {}
        self._triggers: TriggerQueue = TriggerQueue()
        self.physical_moves = 0  # list insert/removes, for the ablation

    # -- setup ---------------------------------------------------------------

    def add_advertiser(self, advertiser: int, target: float) -> None:
        if advertiser in self._advertisers:
            raise KeyError(f"advertiser {advertiser} already added")
        if target <= 0:
            raise ValueError(f"target spend rate must be > 0, got {target}")
        self._advertisers[advertiser] = _AdvertiserState(target=target)

    def add_keyword_bid(self, advertiser: int, keyword: str,
                        initial_bid: float, maxbid: float) -> None:
        """Register one (advertiser, keyword) bid at its initial value."""
        state = self._advertisers[advertiser]
        if keyword in state.keywords:
            raise KeyError(f"advertiser {advertiser} already bids on "
                           f"{keyword!r}")
        if not 0 <= initial_bid <= max(maxbid, 0):
            raise ValueError(
                f"need 0 <= initial_bid <= maxbid, got {initial_bid} "
                f"vs {maxbid}")
        state.keywords[keyword] = _KeywordEntry(maxbid=maxbid)
        index = self._keywords.setdefault(keyword, _KeywordIndex())
        self._place(advertiser, keyword, index, initial_bid)

    # -- the per-auction protocol ---------------------------------------------

    def begin_auction(self, keyword: str, time: float) -> MergedDeltaSource:
        """Advance lazily to this auction and apply the logical update.

        Returns the keyword's merged bid source (a TA input).  ``time``
        must be strictly increasing across calls; the keyword's auction
        counter advances by one.
        """
        self._advance_time(time)
        index = self._keyword_index(keyword)
        index.count += 1
        self._fire_count_triggers(keyword, index)
        index.inc.adjust(self.step)
        index.dec.adjust(-self.step)
        return index.source()

    def record_win(self, advertiser: int, price: float,
                   time: float) -> None:
        """Eagerly fold a winner's charge into his state (Section IV-A)."""
        if price < 0:
            raise ValueError(f"price must be >= 0, got {price}")
        state = self._advertisers[advertiser]
        if price == 0:
            return
        state.amt_spent += price
        new_mode = (_INC if state.amt_spent / time < state.target
                    else _DEC)
        if new_mode != state.mode:
            state.mode = new_mode
            self._rebuild_all_memberships(advertiser)
        if new_mode == _DEC:
            # (Re)schedule the decay crossing; older triggers go stale.
            state.generation += 1
            critical = state.amt_spent / state.target
            self._triggers.schedule(
                "time", critical,
                _TimeTrigger(advertiser, state.generation))

    # -- accessors ----------------------------------------------------------

    def effective_bid(self, advertiser: int, keyword: str) -> float:
        index = self._keyword_index(keyword)
        return index.locate(advertiser).key(advertiser)

    def bids_for_keyword(self, keyword: str) -> dict[int, float]:
        """Snapshot of every advertiser's effective bid on a keyword."""
        index = self._keyword_index(keyword)
        bids: dict[int, float] = {}
        for lst in (index.inc, index.dec, index.const):
            bids.update(lst.items())
        return bids

    def mode_of(self, advertiser: int) -> str:
        """The advertiser's current pacing mode ("inc" or "dec")."""
        return self._advertisers[advertiser].mode

    def amt_spent(self, advertiser: int) -> float:
        return self._advertisers[advertiser].amt_spent

    def keyword_count(self, keyword: str) -> int:
        return self._keyword_index(keyword).count

    def trigger_stats(self) -> tuple[int, int, int]:
        """(scheduled, fired, pending) trigger counts, for the ablation."""
        return (self._triggers.scheduled_total,
                self._triggers.fired_total,
                self._triggers.pending_total())

    # -- internals ------------------------------------------------------------

    def _keyword_index(self, keyword: str) -> _KeywordIndex:
        if keyword not in self._keywords:
            raise KeyError(f"no bids registered for keyword {keyword!r}")
        return self._keywords[keyword]

    def _advance_time(self, time: float) -> None:
        for trigger in self._triggers.advance("time", time):
            state = self._advertisers.get(trigger.advertiser)
            if state is None or state.generation != trigger.generation:
                continue  # stale: the advertiser won since scheduling
            if state.mode != _DEC:
                continue
            # Spending rate decayed below target: overspender -> inc.
            state.mode = _INC
            state.generation += 1
            self._rebuild_all_memberships(trigger.advertiser)

    def _fire_count_triggers(self, keyword: str,
                             index: _KeywordIndex) -> None:
        due = self._triggers.advance(("count", keyword),
                                     index.count + 0.5)
        for trigger in due:
            state = self._advertisers.get(trigger.advertiser)
            if state is None:
                continue
            entry = state.keywords.get(keyword)
            if entry is None or entry.generation != trigger.generation:
                continue
            # The bid saturates at its bound on this very auction.
            lst = index.locate(trigger.advertiser)
            lst.remove(trigger.advertiser)
            index.const.insert(trigger.advertiser, trigger.bound)
            entry.generation += 1
            self.physical_moves += 2

    def _rebuild_all_memberships(self, advertiser: int) -> None:
        state = self._advertisers[advertiser]
        for keyword in state.keywords:
            index = self._keyword_index(keyword)
            bid = index.locate(advertiser).remove(advertiser)
            self.physical_moves += 1
            self._place(advertiser, keyword, index, bid)

    def _place(self, advertiser: int, keyword: str,
               index: _KeywordIndex, bid: float) -> None:
        """Insert a bid into the list matching the advertiser's mode,
        scheduling the bound-saturation count trigger."""
        state = self._advertisers[advertiser]
        entry = state.keywords[keyword]
        entry.generation += 1
        bid = min(max(bid, 0.0), entry.maxbid)
        self.physical_moves += 1
        if state.mode == _INC:
            if bid >= entry.maxbid:
                index.const.insert(advertiser, entry.maxbid)
                return
            index.inc.insert(advertiser, bid)
            steps = math.ceil((entry.maxbid - bid) / self.step)
            self._triggers.schedule(
                ("count", keyword), index.count + steps,
                _CountTrigger(advertiser, keyword, entry.generation,
                              entry.maxbid))
        else:
            if bid <= 0.0:
                index.const.insert(advertiser, 0.0)
                return
            index.dec.insert(advertiser, bid)
            steps = math.ceil(bid / self.step)
            self._triggers.schedule(
                ("count", keyword), index.count + steps,
                _CountTrigger(advertiser, keyword, entry.generation, 0.0))
