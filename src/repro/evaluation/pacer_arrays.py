"""Array mirror of the lazily-maintained pacer state (Section IV-B).

:class:`LazyPacerArrays` is to :class:`~repro.evaluation.pacer_state.
LazyPacerState` what ``PacerArrays`` (PR 1) is to the eager program
objects: the same semantics, operation for operation, but held in flat
NumPy arrays so the per-auction protocol runs as boolean-mask kernels
instead of per-program Python.  The dict-backed ``LazyPacerState``
remains the reference implementation (its tests lock the Section IV-B
invariant); the mirror is built from it once, at evaluator construction,
and is the single live state from then on.

Layout — ``n`` advertisers x ``K`` keywords, dense (every advertiser
must bid on every keyword, which the threshold algorithm's shared-id
requirement already imposed):

* ``stored[i, c]`` / ``cls[i, c]`` — each bid's stored value and its
  delta-list membership (increment / decrement / constant); the
  effective bid is ``stored + adjustment[cls]``, exactly the
  :class:`~repro.evaluation.delta_list.DeltaList` convention.
* per keyword, three :class:`~repro.evaluation.delta_list.
  ArrayDeltaList` objects keep the same memberships in ascending stored
  order — the sorted-walk mirror the TA kernel merges per auction.
* ``count_deadlines`` / ``time_deadlines`` — :class:`~repro.evaluation.
  trigger_queue.DeadlineArray` banks holding each bid's saturation
  auction and each overspender's decay-crossing time, so "fire the due
  triggers" is one strict-inequality mask per auction.

The per-auction protocol (`begin_auction`) therefore costs a handful of
O(n) vectorized operations plus work proportional to the members that
actually move — the logical-update guarantee, with the constant factor
of C loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.evaluation.delta_list import ArrayDeltaList, merged_descending
from repro.evaluation.pacer_state import LazyPacerState
from repro.evaluation.trigger_queue import DeadlineArray

INC, DEC, CONST = 0, 1, 2
_MODE_NAMES = ("inc", "dec")


@dataclass
class KeywordBidSource:
    """One auction's merged bid view over a keyword (a TA input).

    ``ids_desc`` / ``values_desc`` are the keyword's bidders by
    descending effective bid; ``eff`` and ``rank`` are the dense
    random-access mirrors (``eff[i]`` = advertiser *i*'s effective
    bid, ``rank[i]`` = *i*'s position in the descending walk).  The
    arrays alias per-state scratch buffers and are valid until the
    next ``begin_auction`` call.

    The object also satisfies the generic
    :class:`~repro.evaluation.threshold.RankedSource` protocol, so the
    scalar ``threshold_top_k`` accepts it unchanged.
    """

    keyword: str
    col: int
    ids_desc: np.ndarray
    values_desc: np.ndarray
    eff: np.ndarray
    rank: np.ndarray

    def descending(self) -> Iterator[tuple[int, float]]:
        for item, value in zip(self.ids_desc, self.values_desc):
            yield int(item), float(value)

    def key(self, item: int) -> float:
        return float(self.eff[item])

    def __contains__(self, item: int) -> bool:
        return 0 <= item < len(self.eff)

    def __len__(self) -> int:
        return len(self.ids_desc)


class LazyPacerArrays:
    """All n pacing programs as arrays, maintained by masked kernels."""

    def __init__(self, targets: np.ndarray, keywords: list[str],
                 step: float = 1.0):
        if step <= 0:
            raise ValueError(f"step must be > 0, got {step}")
        targets = np.asarray(targets, dtype=float)
        if targets.ndim != 1 or np.any(targets <= 0):
            raise ValueError("targets must be a 1-D array of positives")
        self.step = float(step)
        self.keywords = list(keywords)
        self.kw_index = {text: col for col, text in enumerate(keywords)}
        n, width = len(targets), len(keywords)
        self.num_advertisers = n
        self.target = targets
        self.amt_spent = np.zeros(n)
        self.mode = np.full(n, INC, dtype=np.int8)
        self.cls = np.full((n, width), INC, dtype=np.int8)
        self.stored = np.zeros((n, width))
        self.maxbid = np.zeros((n, width))
        self.counts = np.zeros(width, dtype=np.int64)
        self.count_deadlines = DeadlineArray((n, width))
        self.time_deadlines = DeadlineArray(n)
        self.lists = [[ArrayDeltaList() for _ in range(3)]
                      for _ in range(width)]
        self.active = np.zeros(n, dtype=bool)
        """Rows currently registered in the delta lists.  Everything the
        per-auction protocol touches is membership-driven, so inactive
        rows cost nothing; the online serving layer flips this mask
        under advertiser churn (:meth:`join`, :meth:`leave`)."""
        self.paused: dict[int, dict] = {}
        """Frozen row captures of budget-paused advertisers, keyed by
        id.  A paused row is out of every delta list and trigger bank
        (it cannot surface in a TA walk), but its primary state —
        target, spend, mode, per-keyword *effective* bids and caps —
        is retained here so :meth:`resume` re-places it.  Maintained by
        the online serving layer's budget lifecycle
        (:mod:`repro.stream`)."""
        self.physical_moves = 0  # list insert/removes, for the ablation
        # Per-auction scratch (aliased by KeywordBidSource views).
        self._eff = np.empty(n)
        self._rank = np.empty(n, dtype=np.int64)
        self._member_mask = np.zeros(n, dtype=bool)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_state(cls, state: LazyPacerState,
                   num_advertisers: int) -> "LazyPacerArrays":
        """Mirror a registered ``LazyPacerState`` into arrays.

        Reads the reference state's registrations (targets, max bids,
        effective bids, modes, keyword counters) and re-derives the
        delta-list memberships and trigger deadlines through the same
        placement rules the dict state uses, so the mirror starts bid-
        for-bid equal.  Requires dense ids ``0..n-1`` with every
        advertiser bidding on every keyword — the shape the threshold
        algorithm needs anyway.
        """
        keywords = list(state._keywords)
        advertisers = sorted(state._advertisers)
        if advertisers != list(range(num_advertisers)):
            raise ValueError(
                "vectorized RHTALU needs dense advertiser ids 0..n-1; "
                f"got {len(advertisers)} registered for n={num_advertisers}")
        if not keywords:
            raise ValueError("no keyword bids registered")
        targets = np.array([state._advertisers[a].target
                            for a in range(num_advertisers)])
        mirror = cls(targets, keywords, step=state.step)
        mirror.amt_spent[:] = [state._advertisers[a].amt_spent
                               for a in range(num_advertisers)]
        mirror.mode[:] = [INC if state.mode_of(a) == "inc" else DEC
                          for a in range(num_advertisers)]
        mirror.counts[:] = [state.keyword_count(text) for text in keywords]
        dec_mask = mirror.mode == DEC
        if dec_mask.any():
            mirror.time_deadlines.schedule(
                dec_mask,
                mirror.amt_spent[dec_mask] / mirror.target[dec_mask])
        mirror.active[:] = True
        everyone = np.arange(num_advertisers)
        for col, text in enumerate(keywords):
            bids = state.bids_for_keyword(text)
            if len(bids) != num_advertisers:
                raise ValueError(
                    f"keyword {text!r} has {len(bids)} bidders; the "
                    "vectorized path needs every advertiser on every "
                    "keyword")
            effective = np.array([bids[a]
                                  for a in range(num_advertisers)])
            mirror.maxbid[:, col] = [
                state._advertisers[a].keywords[text].maxbid
                for a in range(num_advertisers)]
            mirror._place_batch(everyone, col, effective)
        mirror.physical_moves = 0  # construction is not churn
        return mirror

    # -- the per-auction protocol --------------------------------------------

    def begin_auction(self, keyword: str, time: float) -> KeywordBidSource:
        """Advance lazily to this auction and apply the logical update.

        Same contract as :meth:`LazyPacerState.begin_auction`, returning
        the keyword's merged descending bid view.
        """
        self._advance_time(time)
        col = self.kw_index.get(keyword)
        if col is None:
            raise KeyError(f"no bids registered for keyword {keyword!r}")
        self.counts[col] += 1
        self._fire_count_triggers(col)
        lists = self.lists[col]
        lists[INC].adjust(self.step)
        lists[DEC].adjust(-self.step)
        return self._bid_source(keyword, col)

    def record_win(self, advertiser: int, price: float,
                   time: float) -> None:
        """Eagerly fold a winner's charge into his state (Section IV-A)."""
        if price < 0:
            raise ValueError(f"price must be >= 0, got {price}")
        if price == 0:
            return
        spent = float(self.amt_spent[advertiser]) + price
        self.amt_spent[advertiser] = spent
        new_mode = INC if spent / time < self.target[advertiser] else DEC
        if new_mode != self.mode[advertiser]:
            self.mode[advertiser] = new_mode
            if new_mode == INC:
                self.time_deadlines.cancel(advertiser)
            self._rebuild_memberships(np.array([advertiser]))
        if new_mode == DEC:
            # (Re)schedule the decay crossing; the cell holds only the
            # latest generation, so older schedules simply vanish.
            self.time_deadlines.schedule(
                advertiser, spent / self.target[advertiser])

    # -- live churn (the online serving layer) -------------------------------

    def active_ids(self) -> np.ndarray:
        """Ascending ids of the currently registered advertisers."""
        return np.flatnonzero(self.active)

    def join(self, advertiser: int, target: float, bids: np.ndarray,
             maxbids: np.ndarray) -> None:
        """Register an advertiser mid-stream with fresh pacing state.

        ``bids`` / ``maxbids`` are per-keyword (the constructor's
        keyword order).  The newcomer starts underspending (mode
        ``inc``, nothing spent) and is placed into each keyword's delta
        list by the same rules initial registration uses, scheduling
        its bound-saturation count triggers against the keyword
        counters *as they stand now* — joining late means joining the
        lists mid-adjustment, which is exactly what the delta-list
        representation makes O(1) per keyword.
        """
        if not 0 <= advertiser < self.num_advertisers:
            raise KeyError(f"advertiser {advertiser} outside capacity "
                           f"0..{self.num_advertisers - 1}")
        if self.active[advertiser]:
            raise KeyError(f"advertiser {advertiser} already active")
        if advertiser in self.paused:
            raise KeyError(f"advertiser {advertiser} is paused; "
                           f"resume re-admits it")
        if target <= 0:
            raise ValueError(f"target spend rate must be > 0, got {target}")
        bids = np.asarray(bids, dtype=float)
        maxbids = np.asarray(maxbids, dtype=float)
        width = len(self.keywords)
        if bids.shape != (width,) or maxbids.shape != (width,):
            raise ValueError(
                f"join needs one bid and one cap per keyword "
                f"({width}), got {bids.shape} / {maxbids.shape}")
        self.active[advertiser] = True
        self.target[advertiser] = target
        self.amt_spent[advertiser] = 0.0
        self.mode[advertiser] = INC
        self.time_deadlines.cancel(advertiser)
        self.maxbid[advertiser, :] = maxbids
        who = np.array([advertiser])
        for col in range(width):
            self._place_batch(who, col, bids[col:col + 1])

    def leave(self, advertiser: int) -> None:
        """Retire an advertiser: delta-list removal, trigger cancels.

        A budget-paused advertiser can leave too: its retained capture
        is discarded (it holds no live memberships to remove).
        """
        if advertiser in self.paused:
            del self.paused[advertiser]
            return
        if not self.active[advertiser]:
            raise KeyError(f"advertiser {advertiser} is not active")
        mask = self._member_mask
        mask[advertiser] = True
        for lists in self.lists:
            for lst in lists:
                lst.remove_mask(mask)
        mask[advertiser] = False
        self.count_deadlines.cancel(advertiser)
        self.time_deadlines.cancel(advertiser)
        self.active[advertiser] = False
        self.physical_moves += len(self.keywords)

    def update_bid(self, advertiser: int, keyword: str, bid: float,
                   maxbid: float) -> None:
        """Re-place one keyword bid at an edited value and cap.

        Paused advertisers accept edits too — the change lands in the
        retained capture's frozen effective bid and takes effect on
        :meth:`resume`.
        """
        if maxbid < 0:
            raise ValueError(f"maxbid must be >= 0, got {maxbid}")
        row = self.paused.get(advertiser)
        if row is not None:
            col = self._column(keyword)
            row["maxbid"][col] = maxbid
            row["effective"][col] = min(max(float(bid), 0.0), maxbid)
            return
        if not self.active[advertiser]:
            raise KeyError(f"advertiser {advertiser} is not active")
        col = self._column(keyword)
        mask = self._member_mask
        mask[advertiser] = True
        for lst in self.lists[col]:
            lst.remove_mask(mask)
        mask[advertiser] = False
        who = np.array([advertiser])
        self.count_deadlines.cancel((who, col))
        self.maxbid[advertiser, col] = maxbid
        self.physical_moves += 1
        self._place_batch(who, col, np.array([float(bid)]))

    def pause(self, advertiser: int) -> None:
        """Retire an advertiser but retain primary state for re-entry.

        The budget lifecycle's exhaustion step.  The row's per-keyword
        *effective* bids (``stored + adjustment``) are frozen at this
        instant, then the advertiser leaves every derived structure
        through the exact :meth:`leave` path — delta-list removals,
        count/time trigger cancels.  While paused the bids do not move
        with the lists' adjustments (the advertiser is not pacing) and
        no trigger can fire for it.
        """
        if not self.active[advertiser]:
            raise KeyError(f"advertiser {advertiser} is not active")
        width = len(self.keywords)
        cls_row = self.cls[advertiser]
        effective = self.stored[advertiser].copy()
        for col in range(width):
            effective[col] += self._adjustment(col, cls_row[col])
        row = {
            "target": float(self.target[advertiser]),
            "amt_spent": float(self.amt_spent[advertiser]),
            "mode": int(self.mode[advertiser]),
            "effective": effective,
            "maxbid": self.maxbid[advertiser].copy(),
        }
        self.leave(advertiser)
        self.paused[advertiser] = row

    def resume(self, advertiser: int) -> None:
        """Re-admit a paused advertiser at its frozen effective bids.

        Inverse of :meth:`pause`, by *re-placement* rather than raw
        copy-back: target, spend, and mode are restored verbatim, the
        frozen effective bids are placed into each keyword's delta
        lists by the same rules a join uses (scheduling fresh
        bound-saturation count triggers against the keyword counters
        *as they stand now*), and an overspender's decay-crossing time
        trigger is rescheduled from its unchanged ``spent / target``
        instant — so a long pause can legitimately resume straight
        into a mode flip on the next auction.
        """
        row = self.paused.pop(advertiser, None)
        if row is None:
            raise KeyError(f"advertiser {advertiser} is not paused")
        self.active[advertiser] = True
        self.target[advertiser] = row["target"]
        self.amt_spent[advertiser] = row["amt_spent"]
        self.mode[advertiser] = row["mode"]
        self.maxbid[advertiser, :] = row["maxbid"]
        if row["mode"] == DEC:
            self.time_deadlines.schedule(
                advertiser, row["amt_spent"] / row["target"])
        else:
            self.time_deadlines.cancel(advertiser)
        who = np.array([advertiser])
        effective = np.asarray(row["effective"], dtype=float)
        for col in range(len(self.keywords)):
            self._place_batch(who, col, effective[col:col + 1])

    # -- capture / rebuild ---------------------------------------------------

    def capture(self) -> dict:
        """The primary pacing state as flat arrays (fresh copies).

        Everything the lazily-maintained representation *means* —
        stored bids plus membership classes, the per-keyword adjustment
        scalars and auction counters, modes, spend, caps, and pending
        trigger deadlines — without the derived sorted structures (the
        delta lists' orders, the walk scratch).  :meth:`from_capture`
        re-derives those from scratch, which is both the snapshot/
        restore path of the online service and its ``rebuild``
        maintenance strategy's per-event cost.  Budget-paused rows ride
        along under ``"paused"`` as their frozen per-row captures (pure
        data, copied verbatim both ways).
        """
        ids = self.active_ids()
        return {
            "paused": {advertiser: {key: (value.copy()
                                          if isinstance(value, np.ndarray)
                                          else value)
                                    for key, value in row.items()}
                       for advertiser, row in self.paused.items()},
            "kind": "rhtalu",
            "num_advertisers": int(self.num_advertisers),
            "keywords": list(self.keywords),
            "step": float(self.step),
            "ids": ids.copy(),
            "target": self.target[ids].copy(),
            "amt_spent": self.amt_spent[ids].copy(),
            "mode": self.mode[ids].copy(),
            "stored": self.stored[ids].copy(),
            "cls": self.cls[ids].copy(),
            "maxbid": self.maxbid[ids].copy(),
            "count_critical": self.count_deadlines.critical[ids].copy(),
            "time_critical": self.time_deadlines.critical[ids].copy(),
            "counts": self.counts.copy(),
            "adjust_inc": np.array([lists[INC].adjustment
                                    for lists in self.lists]),
            "adjust_dec": np.array([lists[DEC].adjustment
                                    for lists in self.lists]),
        }

    @classmethod
    def from_capture(cls, capture: dict) -> "LazyPacerArrays":
        """Rebuild the full state from :meth:`capture` output.

        The numeric state (stored bids, adjustments, deadlines) is
        copied bit-for-bit; every *derived* structure — each keyword's
        three sorted delta arrays, the trigger banks, the walk scratch —
        is reconstructed from scratch.  A rebuilt state is therefore
        observationally identical to the incrementally-maintained one:
        same effective bids, same trigger firings, same TA walks up to
        exact-tie order (which no selection in the repo depends on).
        """
        keywords = list(capture["keywords"])
        n = int(capture["num_advertisers"])
        state = cls(np.ones(n), keywords, step=float(capture["step"]))
        ids = np.asarray(capture["ids"], dtype=np.int64)
        state.active[ids] = True
        state.target[ids] = capture["target"]
        state.amt_spent[ids] = capture["amt_spent"]
        state.mode[ids] = capture["mode"]
        state.stored[ids] = capture["stored"]
        state.cls[ids] = capture["cls"]
        state.maxbid[ids] = capture["maxbid"]
        state.count_deadlines.critical[ids] = capture["count_critical"]
        state.time_deadlines.critical[ids] = capture["time_critical"]
        state.counts[:] = capture["counts"]
        stored = state.stored[ids]
        membership = state.cls[ids]
        for col in range(len(keywords)):
            lists = state.lists[col]
            lists[INC].adjustment = float(capture["adjust_inc"][col])
            lists[DEC].adjustment = float(capture["adjust_dec"][col])
            for which in (INC, DEC, CONST):
                chosen = membership[:, col] == which
                member_ids = ids[chosen]
                member_stored = stored[chosen][:, col]
                order = np.lexsort((member_ids, member_stored))
                lists[which].ids = member_ids[order]
                lists[which].stored = member_stored[order]
        for advertiser, row in capture.get("paused", {}).items():
            state.paused[int(advertiser)] = {
                key: (np.asarray(value, dtype=float).copy()
                      if isinstance(value, (list, np.ndarray))
                      else value)
                for key, value in row.items()}
        return state

    # -- accessors -----------------------------------------------------------

    def effective_bid(self, advertiser: int, keyword: str) -> float:
        if not self.active[advertiser]:
            raise KeyError(f"advertiser {advertiser} is not active")
        col = self._column(keyword)
        return float(self.stored[advertiser, col]
                     + self._adjustment(col, self.cls[advertiser, col]))

    def bids_for_keyword(self, keyword: str) -> dict[int, float]:
        """Snapshot of every active advertiser's effective bid."""
        col = self._column(keyword)
        effective = self.stored[:, col] + \
            self._adjustment_vector(col)[self.cls[:, col]]
        return {int(advertiser): float(effective[advertiser])
                for advertiser in self.active_ids()}

    def mode_of(self, advertiser: int) -> str:
        """The advertiser's current pacing mode ("inc" or "dec")."""
        return _MODE_NAMES[self.mode[advertiser]]

    def keyword_count(self, keyword: str) -> int:
        return int(self.counts[self._column(keyword)])

    def trigger_stats(self) -> tuple[int, int, int]:
        """(scheduled, fired, pending) trigger counts, for the ablation."""
        banks = (self.count_deadlines, self.time_deadlines)
        return (sum(bank.scheduled_total for bank in banks),
                sum(bank.fired_total for bank in banks),
                sum(bank.pending_total() for bank in banks))

    # -- internals -----------------------------------------------------------

    def _column(self, keyword: str) -> int:
        col = self.kw_index.get(keyword)
        if col is None:
            raise KeyError(f"no bids registered for keyword {keyword!r}")
        return col

    def _adjustment(self, col: int, membership: int) -> float:
        if membership == CONST:
            return 0.0
        return self.lists[col][membership].adjustment

    def _adjustment_vector(self, col: int) -> np.ndarray:
        lists = self.lists[col]
        return np.array([lists[INC].adjustment, lists[DEC].adjustment,
                         0.0])

    def _advance_time(self, time: float) -> None:
        """Flip overspenders whose spending rate decayed past target."""
        due = self.time_deadlines.due_mask(time)
        if not due.any():
            return
        self.time_deadlines.fire(due)
        flipped = np.flatnonzero(due)
        self.mode[flipped] = INC
        self._rebuild_memberships(flipped)

    def _fire_count_triggers(self, col: int) -> None:
        """Pin every bid that saturates at its bound on this auction."""
        due = self.count_deadlines.due_mask(self.counts[col] + 0.5, col)
        if not due.any():
            return
        self.count_deadlines.fire(due, col)
        saturated = np.flatnonzero(due)
        lists = self.lists[col]
        mask = self._member_mask
        mask[saturated] = True
        lists[INC].remove_mask(mask)
        lists[DEC].remove_mask(mask)
        mask[saturated] = False
        bound = np.where(self.cls[saturated, col] == INC,
                         self.maxbid[saturated, col], 0.0)
        lists[CONST].insert_batch(saturated, bound)
        self.cls[saturated, col] = CONST
        self.stored[saturated, col] = bound
        self.physical_moves += 2 * len(saturated)

    def _rebuild_memberships(self, advertisers: np.ndarray) -> None:
        """Re-place some advertisers' bids (after a mode change)."""
        mask = self._member_mask
        mask[advertisers] = True
        for col in range(len(self.keywords)):
            adjustments = self._adjustment_vector(col)
            effective = (self.stored[advertisers, col]
                         + adjustments[self.cls[advertisers, col]])
            for lst in self.lists[col]:
                lst.remove_mask(mask)
            self.count_deadlines.cancel((advertisers, col))
            self.physical_moves += len(advertisers)
            self._place_batch(advertisers, col, effective)
        mask[advertisers] = False

    def _place_batch(self, advertisers: np.ndarray, col: int,
                     effective: np.ndarray) -> None:
        """Insert bids into the lists matching each advertiser's mode,
        scheduling the bound-saturation count triggers (the vectorized
        ``LazyPacerState._place``).  Callers remove the ids first."""
        lists = self.lists[col]
        cap = self.maxbid[advertisers, col]
        bid = np.clip(effective, 0.0, cap)
        incs = self.mode[advertisers] == INC
        sat_high = incs & (bid >= cap)
        sat_low = ~incs & (bid <= 0.0)
        pinned = sat_high | sat_low
        moving_inc = incs & ~sat_high
        moving_dec = ~incs & ~sat_low

        if pinned.any():
            ids = advertisers[pinned]
            value = np.where(sat_high[pinned], cap[pinned], 0.0)
            lists[CONST].insert_batch(ids, value)
            self.cls[ids, col] = CONST
            self.stored[ids, col] = value
            self.count_deadlines.cancel((ids, col))
        for membership, moving, remaining in (
                (INC, moving_inc, cap - bid),
                (DEC, moving_dec, bid)):
            if not moving.any():
                continue
            ids = advertisers[moving]
            value = bid[moving]
            lists[membership].insert_batch(ids, value)
            self.cls[ids, col] = membership
            self.stored[ids, col] = \
                value - lists[membership].adjustment
            steps = np.ceil(remaining[moving] / self.step)
            self.count_deadlines.schedule((ids, col),
                                          self.counts[col] + steps)
        self.physical_moves += len(advertisers)

    def _bid_source(self, keyword: str, col: int) -> KeywordBidSource:
        """Materialize the merged descending walk plus dense mirrors."""
        ids_desc, values_desc = merged_descending(self.lists[col])
        eff, rank = self._eff, self._rank
        eff[ids_desc] = values_desc
        rank[ids_desc] = np.arange(len(ids_desc))
        return KeywordBidSource(keyword=keyword, col=col,
                                ids_desc=ids_desc,
                                values_desc=values_desc,
                                eff=eff, rank=rank)
