"""Delta lists: the logical-update structure of Section IV-B.

A delta list holds bidding programs whose bids all move by the same
amount at the same moments (e.g. every ROI pacer currently decrementing
its bid for keyword "shoe").  Instead of updating every member, the list
keeps a single *adjustment variable*: a member's effective bid is its
stored bid plus the list's adjustment, so decrementing everyone is one
``adjust(-step)`` in O(1).  Sorted order is preserved because all members
move together.

The delta list also serves as a TA :class:`~repro.evaluation.threshold.
RankedSource` (descending iteration and random access are by effective
value), and :class:`MergedDeltaSource` lazily merges several delta lists
into one descending stream — the bid-sorted input TA needs when a
keyword's bidders are spread across increment/decrement/constant lists.
"""

from __future__ import annotations

import heapq
from typing import Iterator, Sequence

from repro.evaluation.sorted_index import SortedIndex


class DeltaList:
    """A sorted set of ids whose values share one adjustment variable."""

    def __init__(self):
        self._stored = SortedIndex()
        self.adjustment = 0.0

    def __len__(self) -> int:
        return len(self._stored)

    def __contains__(self, item: int) -> bool:
        return item in self._stored

    def insert(self, item: int, effective: float) -> None:
        """Add a member at a given *effective* value."""
        self._stored.insert(item, effective - self.adjustment)

    def remove(self, item: int) -> float:
        """Remove a member, returning its effective value."""
        return self._stored.remove(item) + self.adjustment

    def key(self, item: int) -> float:
        """Random access: the member's effective value."""
        return self._stored.key(item) + self.adjustment

    def adjust(self, delta: float) -> None:
        """Logically add ``delta`` to every member in O(1)."""
        self.adjustment += delta

    def descending(self) -> Iterator[tuple[int, float]]:
        """Yield (id, effective value), best first."""
        adjustment = self.adjustment
        for item, stored in self._stored.descending():
            yield item, stored + adjustment

    def max_effective(self) -> float | None:
        """The largest effective value, or None when empty."""
        stored_max = self._stored.max_key()
        if stored_max is None:
            return None
        return stored_max + self.adjustment

    def items(self) -> dict[int, float]:
        """Snapshot of id -> effective value."""
        return {item: stored + self.adjustment
                for item, stored in self._stored.items().items()}


class MergedDeltaSource:
    """A lazy k-way merge of delta lists, by descending effective value.

    Presents several delta lists (increment, decrement, constant) as one
    TA source.  Random access probes the lists in order; ids must live in
    exactly one list at a time (the pacer-state invariant).
    """

    def __init__(self, lists: Sequence[DeltaList]):
        self.lists = list(lists)

    def descending(self) -> Iterator[tuple[int, float]]:
        iterators = [lst.descending() for lst in self.lists]
        heap: list[tuple[float, int, int, int]] = []
        for index, iterator in enumerate(iterators):
            entry = next(iterator, None)
            if entry is not None:
                item, value = entry
                # Negated value for a max-merge via the min-heap; ties
                # break toward the lower id.
                heapq.heappush(heap, (-value, item, index, 0))
        while heap:
            neg_value, item, index, _ = heapq.heappop(heap)
            yield item, -neg_value
            entry = next(iterators[index], None)
            if entry is not None:
                next_item, next_value = entry
                heapq.heappush(heap, (-next_value, next_item, index, 0))

    def key(self, item: int) -> float:
        for lst in self.lists:
            if item in lst:
                return lst.key(item)
        raise KeyError(f"id {item} is in none of the merged lists")

    def __contains__(self, item: int) -> bool:
        return any(item in lst for lst in self.lists)

    def __len__(self) -> int:
        return sum(len(lst) for lst in self.lists)
