"""Delta lists: the logical-update structure of Section IV-B.

A delta list holds bidding programs whose bids all move by the same
amount at the same moments (e.g. every ROI pacer currently decrementing
its bid for keyword "shoe").  Instead of updating every member, the list
keeps a single *adjustment variable*: a member's effective bid is its
stored bid plus the list's adjustment, so decrementing everyone is one
``adjust(-step)`` in O(1).  Sorted order is preserved because all members
move together.

The delta list also serves as a TA :class:`~repro.evaluation.threshold.
RankedSource` (descending iteration and random access are by effective
value), and :class:`MergedDeltaSource` lazily merges several delta lists
into one descending stream — the bid-sorted input TA needs when a
keyword's bidders are spread across increment/decrement/constant lists.
"""

from __future__ import annotations

import heapq
from typing import Iterator, Sequence

import numpy as np

from repro.evaluation.sorted_index import SortedIndex


class DeltaList:
    """A sorted set of ids whose values share one adjustment variable."""

    def __init__(self):
        self._stored = SortedIndex()
        self.adjustment = 0.0

    def __len__(self) -> int:
        return len(self._stored)

    def __contains__(self, item: int) -> bool:
        return item in self._stored

    def insert(self, item: int, effective: float) -> None:
        """Add a member at a given *effective* value."""
        self._stored.insert(item, effective - self.adjustment)

    def remove(self, item: int) -> float:
        """Remove a member, returning its effective value."""
        return self._stored.remove(item) + self.adjustment

    def key(self, item: int) -> float:
        """Random access: the member's effective value."""
        return self._stored.key(item) + self.adjustment

    def adjust(self, delta: float) -> None:
        """Logically add ``delta`` to every member in O(1)."""
        self.adjustment += delta

    def descending(self) -> Iterator[tuple[int, float]]:
        """Yield (id, effective value), best first."""
        adjustment = self.adjustment
        for item, stored in self._stored.descending():
            yield item, stored + adjustment

    def max_effective(self) -> float | None:
        """The largest effective value, or None when empty."""
        stored_max = self._stored.max_key()
        if stored_max is None:
            return None
        return stored_max + self.adjustment

    def items(self) -> dict[int, float]:
        """Snapshot of id -> effective value."""
        return {item: stored + self.adjustment
                for item, stored in self._stored.items().items()}


class MergedDeltaSource:
    """A lazy k-way merge of delta lists, by descending effective value.

    Presents several delta lists (increment, decrement, constant) as one
    TA source.  Random access probes the lists in order; ids must live in
    exactly one list at a time (the pacer-state invariant).
    """

    def __init__(self, lists: Sequence[DeltaList]):
        self.lists = list(lists)

    def descending(self) -> Iterator[tuple[int, float]]:
        iterators = [lst.descending() for lst in self.lists]
        heap: list[tuple[float, int, int, int]] = []
        for index, iterator in enumerate(iterators):
            entry = next(iterator, None)
            if entry is not None:
                item, value = entry
                # Negated value for a max-merge via the min-heap; ties
                # break toward the lower id.
                heapq.heappush(heap, (-value, item, index, 0))
        while heap:
            neg_value, item, index, _ = heapq.heappop(heap)
            yield item, -neg_value
            entry = next(iterators[index], None)
            if entry is not None:
                next_item, next_value = entry
                heapq.heappush(heap, (-next_value, next_item, index, 0))

    def key(self, item: int) -> float:
        for lst in self.lists:
            if item in lst:
                return lst.key(item)
        raise KeyError(f"id {item} is in none of the merged lists")

    def __contains__(self, item: int) -> bool:
        return any(item in lst for lst in self.lists)

    def __len__(self) -> int:
        return sum(len(lst) for lst in self.lists)


class ArrayDeltaList:
    """The delta list as two flat arrays plus the adjustment scalar.

    The vectorized pacer state (:mod:`repro.evaluation.pacer_arrays`)
    keeps each increment/decrement/constant list as ``ids`` and
    ``stored`` arrays in ascending stored order, so a whole auction's
    membership churn (fired count triggers, mode flips) is a handful of
    boolean-mask compressions and batched sorted inserts instead of
    per-member bisects.  Effective value = ``stored + adjustment``,
    exactly as :class:`DeltaList`.

    Ties between equal stored values keep batch insertion order (a
    deterministic function of the run), not the strict ``(key, id)``
    order of :class:`SortedIndex`; the TA kernel only needs *a* fixed
    descending order, and exact value ties occur only at the saturation
    bounds.
    """

    def __init__(self):
        self.ids = np.empty(0, dtype=np.int64)
        self.stored = np.empty(0, dtype=float)
        self.adjustment = 0.0

    def __len__(self) -> int:
        return len(self.ids)

    def adjust(self, delta: float) -> None:
        """Logically add ``delta`` to every member in O(1)."""
        self.adjustment += delta

    def effective(self) -> np.ndarray:
        """Members' effective values, ascending (a fresh array)."""
        return self.stored + self.adjustment

    def insert_batch(self, ids: np.ndarray, effective: np.ndarray) -> None:
        """Add members at the given effective values (one memmove)."""
        if len(ids) == 0:
            return
        stored = np.asarray(effective, dtype=float) - self.adjustment
        ids = np.asarray(ids, dtype=np.int64)
        batch_order = np.lexsort((ids, stored))
        stored = stored[batch_order]
        ids = ids[batch_order]
        positions = np.searchsorted(self.stored, stored, side="left")
        self.stored = np.insert(self.stored, positions, stored)
        self.ids = np.insert(self.ids, positions, ids)

    def remove_mask(self, member_mask: np.ndarray) -> None:
        """Drop every member whose id is flagged in ``member_mask``.

        ``member_mask`` is indexed by id (length = id universe), so the
        removal is a single boolean compression.
        """
        if len(self.ids) == 0:
            return
        keep = ~member_mask[self.ids]
        if keep.all():
            return
        self.ids = self.ids[keep]
        self.stored = self.stored[keep]

    def remove_id(self, item: int) -> float:
        """Remove one member, returning its effective value."""
        positions = np.nonzero(self.ids == item)[0]
        if len(positions) == 0:
            raise KeyError(f"id {item} not in this list")
        position = int(positions[0])
        effective = float(self.stored[position]) + self.adjustment
        self.ids = np.delete(self.ids, position)
        self.stored = np.delete(self.stored, position)
        return effective

    def items(self) -> dict[int, float]:
        """Snapshot of id -> effective value (test/debug accessor)."""
        return {int(item): float(stored) + self.adjustment
                for item, stored in zip(self.ids, self.stored)}


def merged_descending(lists: Sequence[ArrayDeltaList]
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Merge array delta lists into one descending (ids, values) pair.

    The vectorized counterpart of :class:`MergedDeltaSource`: each
    list's ascending stored order survives its constant adjustment, so
    the merge is pairwise ``np.searchsorted`` position arithmetic —
    O(total) with no per-item Python.  In the returned *descending*
    walk, equal values surface later lists before earlier ones (the
    ascending merge places earlier lists first and the reversal flips
    it) — a fixed, documented order; the TA kernel needs determinism,
    not a particular tie rule.
    """
    pairs = [(lst.ids, lst.effective()) for lst in lists if len(lst)]
    if not pairs:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=float))
    ids, values = pairs[0]
    for other_ids, other_values in pairs[1:]:
        positions_left = (np.arange(len(values))
                          + np.searchsorted(other_values, values,
                                            side="left"))
        positions_right = (np.arange(len(other_values))
                           + np.searchsorted(values, other_values,
                                             side="right"))
        merged_ids = np.empty(len(values) + len(other_values),
                              dtype=np.int64)
        merged_values = np.empty(len(merged_ids), dtype=float)
        merged_ids[positions_left] = ids
        merged_values[positions_left] = values
        merged_ids[positions_right] = other_ids
        merged_values[positions_right] = other_values
        ids, values = merged_ids, merged_values
    return ids[::-1], values[::-1]
