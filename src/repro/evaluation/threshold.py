"""Fagin's threshold algorithm for top-k selection (Section IV-A).

Given m lists of advertiser ids, each sorted descending by one input
attribute, and a *monotone* aggregation function f over the attributes,
TA finds the k ids with the highest f-scores while touching only a
prefix of each list:

1. sorted access round-robin over the lists; for every newly seen id,
   random-access its remaining attributes and compute its exact score;
2. maintain the best k scores seen;
3. stop as soon as the k-th best score is at least the *threshold*
   f(last sorted-access value of each list) — no unseen id can beat it.

TA is instance optimal over algorithms that avoid "wild guesses"
(Fagin, Lotem & Naor, PODS'01), which is the guarantee the paper invokes.
Access counts are reported for the ablation bench.

The list abstraction is :class:`RankedSource` — anything that can stream
(id, attribute) pairs descending and answer random accesses — so both a
plain :class:`~repro.evaluation.sorted_index.SortedIndex` and the merged
view over logical-update delta lists can serve as TA inputs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterator, Protocol, Sequence

from repro.evaluation.sorted_index import SortedIndex


class RankedSource(Protocol):
    """A TA input list: descending stream plus random access."""

    def descending(self) -> Iterator[tuple[int, float]]:
        """Yield (id, attribute) pairs, best first."""
        ...

    def key(self, item: int) -> float:
        """Random access to one id's attribute."""
        ...


@dataclass(frozen=True)
class TopKResult:
    """TA output: the winning ids with scores, plus access accounting."""

    items: tuple[tuple[int, float], ...]  # (id, score), descending score
    sequential_accesses: int
    random_accesses: int
    threshold_at_stop: float

    def ids(self) -> list[int]:
        return [item for item, _ in self.items]


def threshold_top_k(sources: Sequence[RankedSource],
                    aggregate: Callable[[Sequence[float]], float],
                    k: int) -> TopKResult:
    """Run TA over ``sources`` with monotone ``aggregate``; return top-k.

    Ties in score break toward the lower id.  Ids appearing in one source
    must appear in all (they are attributes of the same objects).
    """
    if k <= 0:
        return TopKResult((), 0, 0, float("-inf"))
    if not sources:
        raise ValueError("threshold_top_k needs at least one source")

    cursors = [source.descending() for source in sources]
    exhausted = [False] * len(sources)
    last_seen: list[float | None] = [None] * len(sources)
    seen: set[int] = set()
    # Min-heap of (score, -id): the root is the current k-th best; at
    # equal scores the higher id is evicted first, so lower ids win ties.
    heap: list[tuple[float, int]] = []
    sequential = 0
    random = 0
    threshold = float("inf")

    while not all(exhausted):
        for index, cursor in enumerate(cursors):
            if exhausted[index]:
                continue
            try:
                item, attribute = next(cursor)
            except StopIteration:
                exhausted[index] = True
                continue
            sequential += 1
            last_seen[index] = attribute
            if item not in seen:
                seen.add(item)
                attributes = []
                for other_index, source in enumerate(sources):
                    if other_index == index:
                        attributes.append(attribute)
                    else:
                        attributes.append(source.key(item))
                        random += 1
                score = aggregate(attributes)
                entry = (score, -item)
                if len(heap) < k:
                    heapq.heappush(heap, entry)
                elif entry > heap[0]:
                    heapq.heapreplace(heap, entry)
        if any(value is None for value in last_seen):
            continue  # threshold undefined until every list was accessed
        threshold = aggregate([value for value in last_seen])  # type: ignore[misc]
        if len(heap) >= k and heap[0][0] >= threshold:
            break

    items = tuple((-neg, score)
                  for score, neg in sorted(heap, reverse=True))
    return TopKResult(items=items, sequential_accesses=sequential,
                      random_accesses=random,
                      threshold_at_stop=threshold)


def full_scan_top_k(sources: Sequence[RankedSource],
                    aggregate: Callable[[Sequence[float]], float],
                    k: int,
                    universe: Sequence[int]) -> TopKResult:
    """The naive baseline: score every id, keep the best k.

    Used by tests (TA must return an equally-scored set) and by the
    access-count ablation as the "no index" reference point.
    """
    heap: list[tuple[float, int]] = []
    random = 0
    for item in universe:
        attributes = [source.key(item) for source in sources]
        random += len(sources)
        entry = (aggregate(attributes), -item)
        if len(heap) < k:
            heapq.heappush(heap, entry)
        elif entry > heap[0]:
            heapq.heapreplace(heap, entry)
    items = tuple((-neg, score)
                  for score, neg in sorted(heap, reverse=True))
    return TopKResult(items=items, sequential_accesses=0,
                      random_accesses=random,
                      threshold_at_stop=float("-inf"))


def product_aggregate(attributes: Sequence[float]) -> float:
    """The paper's benchmark scoring: w_ij x bid (both non-negative)."""
    result = 1.0
    for value in attributes:
        result *= value
    return result


def make_index(items: dict[int, float]) -> SortedIndex:
    """Convenience: build a SortedIndex source from an id -> value map."""
    return SortedIndex(items)
