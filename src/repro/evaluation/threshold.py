"""Fagin's threshold algorithm for top-k selection (Section IV-A).

Given m lists of advertiser ids, each sorted descending by one input
attribute, and a *monotone* aggregation function f over the attributes,
TA finds the k ids with the highest f-scores while touching only a
prefix of each list:

1. sorted access round-robin over the lists; for every newly seen id,
   random-access its remaining attributes and compute its exact score;
2. maintain the best k scores seen;
3. stop as soon as the k-th best score is at least the *threshold*
   f(last sorted-access value of each list) — no unseen id can beat it.

TA is instance optimal over algorithms that avoid "wild guesses"
(Fagin, Lotem & Naor, PODS'01), which is the guarantee the paper invokes.
Access counts are reported for the ablation bench.

The list abstraction is :class:`RankedSource` — anything that can stream
(id, attribute) pairs descending and answer random accesses — so both a
plain :class:`~repro.evaluation.sorted_index.SortedIndex` and the merged
view over logical-update delta lists can serve as TA inputs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterator, Protocol, Sequence

import numpy as np

from repro.evaluation.sorted_index import ColumnArgsortIndex, SortedIndex


class RankedSource(Protocol):
    """A TA input list: descending stream plus random access."""

    def descending(self) -> Iterator[tuple[int, float]]:
        """Yield (id, attribute) pairs, best first."""
        ...

    def key(self, item: int) -> float:
        """Random access to one id's attribute."""
        ...


@dataclass(frozen=True)
class TopKResult:
    """TA output: the winning ids with scores, plus access accounting."""

    items: tuple[tuple[int, float], ...]  # (id, score), descending score
    sequential_accesses: int
    random_accesses: int
    threshold_at_stop: float

    def ids(self) -> list[int]:
        return [item for item, _ in self.items]


def threshold_top_k(sources: Sequence[RankedSource],
                    aggregate: Callable[[Sequence[float]], float],
                    k: int) -> TopKResult:
    """Run TA over ``sources`` with monotone ``aggregate``; return top-k.

    Ties in score break toward the lower id.  Ids appearing in one source
    must appear in all (they are attributes of the same objects).
    """
    if k <= 0:
        return TopKResult((), 0, 0, float("-inf"))
    if not sources:
        raise ValueError("threshold_top_k needs at least one source")

    cursors = [source.descending() for source in sources]
    exhausted = [False] * len(sources)
    last_seen: list[float | None] = [None] * len(sources)
    seen: set[int] = set()
    # Min-heap of (score, -id): the root is the current k-th best; at
    # equal scores the higher id is evicted first, so lower ids win ties.
    heap: list[tuple[float, int]] = []
    sequential = 0
    random = 0
    threshold = float("inf")

    while not all(exhausted):
        for index, cursor in enumerate(cursors):
            if exhausted[index]:
                continue
            try:
                item, attribute = next(cursor)
            except StopIteration:
                exhausted[index] = True
                continue
            sequential += 1
            last_seen[index] = attribute
            if item not in seen:
                seen.add(item)
                attributes = []
                for other_index, source in enumerate(sources):
                    if other_index == index:
                        attributes.append(attribute)
                    else:
                        attributes.append(source.key(item))
                        random += 1
                score = aggregate(attributes)
                entry = (score, -item)
                if len(heap) < k:
                    heapq.heappush(heap, entry)
                elif entry > heap[0]:
                    heapq.heapreplace(heap, entry)
        if any(value is None for value in last_seen):
            continue  # threshold undefined until every list was accessed
        threshold = aggregate([value for value in last_seen])  # type: ignore[misc]
        if len(heap) >= k and heap[0][0] >= threshold:
            break

    items = tuple((-neg, score)
                  for score, neg in sorted(heap, reverse=True))
    return TopKResult(items=items, sequential_accesses=sequential,
                      random_accesses=random,
                      threshold_at_stop=threshold)


def full_scan_top_k(sources: Sequence[RankedSource],
                    aggregate: Callable[[Sequence[float]], float],
                    k: int,
                    universe: Sequence[int]) -> TopKResult:
    """The naive baseline: score every id, keep the best k.

    Used by tests (TA must return an equally-scored set) and by the
    access-count ablation as the "no index" reference point.
    """
    heap: list[tuple[float, int]] = []
    random = 0
    for item in universe:
        attributes = [source.key(item) for source in sources]
        random += len(sources)
        entry = (aggregate(attributes), -item)
        if len(heap) < k:
            heapq.heappush(heap, entry)
        elif entry > heap[0]:
            heapq.heapreplace(heap, entry)
    items = tuple((-neg, score)
                  for score, neg in sorted(heap, reverse=True))
    return TopKResult(items=items, sequential_accesses=0,
                      random_accesses=random,
                      threshold_at_stop=float("-inf"))


def product_aggregate(attributes: Sequence[float]) -> float:
    """The paper's benchmark scoring: w_ij x bid (both non-negative)."""
    result = 1.0
    for value in attributes:
        result *= value
    return result


@dataclass(frozen=True)
class SlotTopKResult:
    """Fused-kernel output: per-slot winners plus access accounting."""

    slot_ids: list  # per slot, an int array of the top-k ids
    stop_depth: np.ndarray  # rounds of sorted access walked per slot
    sequential_count: int
    random_count: int


def product_top_k_all_slots(click_index: ColumnArgsortIndex,
                            bid_ids: np.ndarray,
                            bid_values: np.ndarray,
                            bid_rank: np.ndarray,
                            effective_bids: np.ndarray,
                            k: int,
                            block: int = 64,
                            a_scores: np.ndarray | None = None,
                            b_scores: np.ndarray | None = None
                            ) -> SlotTopKResult:
    """TA over (click index, bid list) for *every* slot in one sweep.

    The vectorized replacement for k per-slot :func:`threshold_top_k`
    calls on the product aggregate.  Each slot's two sources are flat
    arrays — a column view of the shared argsorted click matrix, and
    the keyword's merged descending bid walk (shared by all slots) —
    and the kernel advances every still-live slot ``block`` sorted-
    access rounds at a time: gather the block's ids, score them against
    the dense random-access mirrors (``effective_bids`` for ids
    surfaced by the click walk, the click matrix for ids surfaced by
    the bid walk), fold them into each slot's running top-k, and retire
    slots whose k-th best score has reached the TA threshold.

    Semantics: identical to per-round TA except that the stop rule is
    checked every ``block`` rounds, so a slot may walk up to
    ``block - 1`` rounds past its exact stopping point.  By TA's
    guarantee the extra rounds cannot change the top-k *scores*; among
    equal scores the kernel resolves ties toward the lower id (the
    full-scan convention).  Access counts report the pulls actually
    performed — sequential accesses at block granularity, one random
    access per distinct id scored — so the ablation's sublinearity
    measurements stay honest.

    ``bid_rank`` is the bid walk's inverse permutation
    (``bid_rank[bid_ids[r]] == r``); together with the click index's
    ``rank`` it lets the kernel keep exactly one running copy of an id
    that both walks surface, whichever block each copy arrives in.
    ``a_scores`` / ``b_scores`` are optional caller-owned ``(n, k)``
    score-history buffers (the evaluator preallocates them once and
    reuses them every auction).
    """
    num_ids, num_slots = click_index.order.shape
    if len(bid_ids) != num_ids:
        raise ValueError(
            f"bid walk covers {len(bid_ids)} ids, click index {num_ids}; "
            "the threshold algorithm needs every id in every source")
    if k <= 0:
        return SlotTopKResult([np.empty(0, dtype=np.int64)] * num_slots,
                              np.zeros(num_slots, dtype=np.int64), 0, 0)
    depth = min(k, num_ids)
    block = max(block, depth)
    if a_scores is None:
        a_scores = np.empty((num_ids, num_slots))
    if b_scores is None:
        b_scores = np.empty((num_ids, num_slots))

    matrix = click_index.matrix
    order = click_index.order
    sorted_values = click_index.sorted_values
    click_rank = click_index.rank

    live = np.ones(num_slots, dtype=bool)
    stop_depth = np.full(num_slots, num_ids, dtype=np.int64)
    running = np.full((depth, num_slots), -np.inf)
    rounds = 0
    while rounds < num_ids and live.any():
        upto = min(rounds + block, num_ids)
        cols = np.flatnonzero(live)
        a_ids = order[rounds:upto][:, cols]
        a_block = sorted_values[rounds:upto][:, cols] \
            * effective_bids[a_ids]
        b_ids = bid_ids[rounds:upto]
        b_block = bid_values[rounds:upto, None] \
            * matrix[np.ix_(b_ids, cols)]
        a_scores[rounds:upto, cols] = a_block
        b_scores[rounds:upto, cols] = b_block
        # Ids surfaced by both walks must occupy exactly one running
        # slot — a duplicated high score would inflate the k-th best
        # and fire the stop check *early*, dropping a qualifying
        # unseen id.  Keep the click-walk copy unless the bid walk
        # already delivered the id in an earlier block, and suppress
        # the bid-walk copy whenever the click walk covers the id
        # within this prefix.
        a_duplicate = bid_rank[a_ids] < rounds
        b_duplicate = click_rank[b_ids][:, cols] < upto
        stacked = np.concatenate(
            [running[:, cols],
             np.where(a_duplicate, -np.inf, a_block),
             np.where(b_duplicate, -np.inf, b_block)], axis=0)
        running[:, cols] = np.partition(stacked, -depth, axis=0)[-depth:]
        rounds = upto
        thresholds = sorted_values[rounds - 1, cols] \
            * bid_values[rounds - 1]
        done = running[0, cols] >= thresholds
        if done.any():
            stop_depth[cols[done]] = rounds
            live[cols[done]] = False

    # Final selection, vectorized across slots that stopped at the same
    # depth (the block-granular stop rule quantizes depths, so most
    # slots share one): stack each group's click-walk and bid-walk
    # prefixes, mask bid-walk duplicates to -inf, and take every
    # column's top ids with one lexsort over (score desc, id asc).
    slot_ids: list[np.ndarray | None] = [None] * num_slots
    sequential_count = 0
    random_count = 0
    for walked in np.unique(stop_depth):
        walked = int(walked)
        cols = np.flatnonzero(stop_depth == walked)
        b_prefix = bid_ids[:walked]
        fresh = click_rank[b_prefix][:, cols] >= walked
        ids_all = np.concatenate(
            [order[:walked, :][:, cols],
             np.broadcast_to(b_prefix[:, None],
                             (walked, len(cols)))], axis=0)
        scores_all = np.concatenate(
            [a_scores[:walked, :][:, cols],
             np.where(fresh, b_scores[:walked, :][:, cols], -np.inf)],
            axis=0)
        best = np.lexsort((ids_all, -scores_all), axis=0)[:depth]
        winners = np.take_along_axis(ids_all, best, axis=0)
        # Duplicates were masked to -inf; with fewer than ``depth``
        # distinct positive-or-zero scores they can still surface, so
        # trim them per column (rare: only when walked < depth).
        kept = np.take_along_axis(scores_all, best, axis=0) > -np.inf
        for slot, col in enumerate(cols):
            slot_ids[col] = winners[kept[:, slot], slot]
        sequential_count += 2 * walked * len(cols)
        random_count += walked * len(cols) + int(np.count_nonzero(fresh))
    return SlotTopKResult(slot_ids=slot_ids, stop_depth=stop_depth,
                          sequential_count=sequential_count,
                          random_count=random_count)


def make_index(items: dict[int, float]) -> SortedIndex:
    """Convenience: build a SortedIndex source from an id -> value map."""
    return SortedIndex(items)
