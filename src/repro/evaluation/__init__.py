"""Reduced program evaluation (Section IV): TA + logical updates.

The sorted per-parameter indexes and the threshold algorithm of
Section IV-A; the delta lists, adjustment variables, and trigger queues
of Section IV-B; and the RHTALU evaluator that combines them with the
reduced Hungarian matching.
"""

from repro.evaluation.delta_list import DeltaList, MergedDeltaSource
from repro.evaluation.evaluator import RhtaluAuctionResult, RhtaluEvaluator
from repro.evaluation.pacer_state import LazyPacerState
from repro.evaluation.sorted_index import SortedIndex
from repro.evaluation.threshold import (
    TopKResult,
    full_scan_top_k,
    make_index,
    product_aggregate,
    threshold_top_k,
)
from repro.evaluation.trigger_queue import TriggerQueue

__all__ = [
    "DeltaList",
    "LazyPacerState",
    "MergedDeltaSource",
    "RhtaluAuctionResult",
    "RhtaluEvaluator",
    "SortedIndex",
    "TopKResult",
    "TriggerQueue",
    "full_scan_top_k",
    "make_index",
    "product_aggregate",
    "threshold_top_k",
]
