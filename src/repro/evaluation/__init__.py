"""Reduced program evaluation (Section IV): TA + logical updates.

The sorted per-parameter indexes and the threshold algorithm of
Section IV-A; the delta lists, adjustment variables, and trigger queues
of Section IV-B; and the RHTALU evaluator that combines them with the
reduced Hungarian matching.  Each structure exists twice: a dict-backed
reference implementation (the semantic spec, unit-tested on its own)
and the array-backed kernels the vectorized evaluator actually runs —
``ColumnArgsortIndex``, ``ArrayDeltaList``, ``DeadlineArray``,
``LazyPacerArrays``, and the fused ``product_top_k_all_slots``.

The evaluator's auction splits into a shardable TA scan
(:meth:`~repro.evaluation.evaluator.RhtaluEvaluator.scan_auction`,
returning a :class:`~repro.evaluation.evaluator.RhtaluScanResult`) and
the reduced matching; the multi-process runtime runs one scan per
advertiser shard and merges at its coordinator.
"""

from repro.evaluation.delta_list import (
    ArrayDeltaList,
    DeltaList,
    MergedDeltaSource,
    merged_descending,
)
from repro.evaluation.evaluator import (
    RhtaluAuctionResult,
    RhtaluEvaluator,
    RhtaluScanResult,
)
from repro.evaluation.pacer_arrays import KeywordBidSource, LazyPacerArrays
from repro.evaluation.pacer_state import LazyPacerState
from repro.evaluation.sorted_index import ColumnArgsortIndex, SortedIndex
from repro.evaluation.threshold import (
    SlotTopKResult,
    TopKResult,
    full_scan_top_k,
    make_index,
    product_aggregate,
    product_top_k_all_slots,
    threshold_top_k,
)
from repro.evaluation.trigger_queue import DeadlineArray, TriggerQueue

__all__ = [
    "ArrayDeltaList",
    "ColumnArgsortIndex",
    "DeadlineArray",
    "DeltaList",
    "KeywordBidSource",
    "LazyPacerArrays",
    "LazyPacerState",
    "MergedDeltaSource",
    "RhtaluAuctionResult",
    "RhtaluEvaluator",
    "RhtaluScanResult",
    "SlotTopKResult",
    "SortedIndex",
    "TopKResult",
    "TriggerQueue",
    "full_scan_top_k",
    "make_index",
    "merged_descending",
    "product_aggregate",
    "product_top_k_all_slots",
    "threshold_top_k",
]
