"""Trigger queues on shared monotonic variables (Section IV-B).

Mode changes of lazily-maintained programs ("stop decrementing when the
spending rate drops below target", "the bid reaches zero after 7 more
auctions for this keyword") reduce to waiting for a shared monotonic
variable — time, or a keyword's auction counter — to reach a critical
value.  A :class:`TriggerQueue` keeps pending triggers in a heap per
variable, sorted by critical value, and releases exactly the due ones as
the variable advances.

Because eager events (an advertiser winning) can invalidate scheduled
triggers, every trigger carries an opaque ``token``; the consumer is
expected to check the token's liveness (generation counters in
:mod:`repro.evaluation.pacer_state`) and drop stale firings.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Generic, Hashable, TypeVar

Payload = TypeVar("Payload")


@dataclass(order=True)
class _Entry(Generic[Payload]):
    critical: float
    sequence: int
    payload: Payload = field(compare=False)


class TriggerQueue(Generic[Payload]):
    """Min-heaps of pending triggers, one per named monotonic variable."""

    def __init__(self):
        self._heaps: dict[Hashable, list[_Entry[Payload]]] = {}
        self._sequence = 0
        self.scheduled_total = 0
        self.fired_total = 0

    def schedule(self, variable: Hashable, critical: float,
                 payload: Payload) -> None:
        """Fire ``payload`` once ``variable`` exceeds ``critical``."""
        heap = self._heaps.setdefault(variable, [])
        self._sequence += 1
        self.scheduled_total += 1
        heapq.heappush(heap, _Entry(critical, self._sequence, payload))

    def advance(self, variable: Hashable,
                value: float) -> list[Payload]:
        """Release all triggers with ``critical < value`` (strict).

        Strict comparison matches the pacing semantics: at the exact
        crossing point the spending rate equals the target and the
        heuristic holds still, so the flip happens at the first moment
        strictly past the critical value.
        """
        heap = self._heaps.get(variable)
        if not heap:
            return []
        due = []
        while heap and heap[0].critical < value:
            due.append(heapq.heappop(heap).payload)
            self.fired_total += 1
        return due

    def pending(self, variable: Hashable) -> int:
        """Number of triggers still scheduled on a variable."""
        return len(self._heaps.get(variable, []))

    def pending_total(self) -> int:
        """Number of triggers still scheduled across all variables."""
        return sum(len(heap) for heap in self._heaps.values())
