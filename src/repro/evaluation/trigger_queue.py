"""Trigger queues on shared monotonic variables (Section IV-B).

Mode changes of lazily-maintained programs ("stop decrementing when the
spending rate drops below target", "the bid reaches zero after 7 more
auctions for this keyword") reduce to waiting for a shared monotonic
variable — time, or a keyword's auction counter — to reach a critical
value.  A :class:`TriggerQueue` keeps pending triggers in a heap per
variable, sorted by critical value, and releases exactly the due ones as
the variable advances.

Because eager events (an advertiser winning) can invalidate scheduled
triggers, every trigger carries an opaque ``token``; the consumer is
expected to check the token's liveness (generation counters in
:mod:`repro.evaluation.pacer_state`) and drop stale firings.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Generic, Hashable, TypeVar

import numpy as np

Payload = TypeVar("Payload")


@dataclass(order=True)
class _Entry(Generic[Payload]):
    critical: float
    sequence: int
    payload: Payload = field(compare=False)


class TriggerQueue(Generic[Payload]):
    """Min-heaps of pending triggers, one per named monotonic variable."""

    def __init__(self):
        self._heaps: dict[Hashable, list[_Entry[Payload]]] = {}
        self._sequence = 0
        self.scheduled_total = 0
        self.fired_total = 0

    def schedule(self, variable: Hashable, critical: float,
                 payload: Payload) -> None:
        """Fire ``payload`` once ``variable`` exceeds ``critical``."""
        heap = self._heaps.setdefault(variable, [])
        self._sequence += 1
        self.scheduled_total += 1
        heapq.heappush(heap, _Entry(critical, self._sequence, payload))

    def advance(self, variable: Hashable,
                value: float) -> list[Payload]:
        """Release all triggers with ``critical < value`` (strict).

        Strict comparison matches the pacing semantics: at the exact
        crossing point the spending rate equals the target and the
        heuristic holds still, so the flip happens at the first moment
        strictly past the critical value.
        """
        heap = self._heaps.get(variable)
        if not heap:
            return []
        due = []
        while heap and heap[0].critical < value:
            due.append(heapq.heappop(heap).payload)
            self.fired_total += 1
        return due

    def pending(self, variable: Hashable) -> int:
        """Number of triggers still scheduled on a variable."""
        return len(self._heaps.get(variable, []))

    def pending_total(self) -> int:
        """Number of triggers still scheduled across all variables."""
        return sum(len(heap) for heap in self._heaps.values())


class DeadlineArray:
    """A vectorized trigger bank: at most one pending trigger per slot.

    The array-backed pacer state stores each program's next critical
    value directly in a dense array (one cell per advertiser, or per
    advertiser x keyword), so "release all due triggers" is a single
    boolean mask instead of heap pops.  Rescheduling a slot simply
    overwrites its critical value — the array cell *is* the latest
    generation, which subsumes the ``TriggerQueue`` staleness protocol
    for states (like the ROI pacers') that keep one live trigger per
    slot.

    ``critical < value`` is strict, matching :meth:`TriggerQueue
    .advance`: at the exact crossing point the heuristic holds still.
    """

    _NEVER = np.inf

    def __init__(self, shape: int | tuple[int, ...]):
        self.critical = np.full(shape, self._NEVER)
        self.scheduled_total = 0
        self.fired_total = 0

    def schedule(self, index, critical) -> None:
        """(Re)schedule the given cells at the given critical values."""
        self.critical[index] = critical
        self.scheduled_total += int(np.size(self.critical[index]))

    def cancel(self, index) -> None:
        """Clear any pending trigger in the given cells."""
        self.critical[index] = self._NEVER

    def due_mask(self, value: float, column=None) -> np.ndarray:
        """Boolean mask of cells whose trigger fires strictly below
        ``value``; ``column`` restricts a 2-D bank to one column."""
        cells = self.critical if column is None \
            else self.critical[:, column]
        return cells < value

    def fire(self, mask: np.ndarray, column=None) -> None:
        """Consume the triggers flagged by ``mask`` (from due_mask)."""
        fired = int(np.count_nonzero(mask))
        if not fired:
            return
        if column is None:
            self.critical[mask] = self._NEVER
        else:
            self.critical[mask, column] = self._NEVER
        self.fired_total += fired

    def pending_total(self) -> int:
        """Number of cells with a live trigger."""
        return int(np.count_nonzero(np.isfinite(self.critical)))
