"""Method RHTALU: the full Section IV per-auction pipeline.

Per auction, instead of running all n bidding programs and scanning all
n·k expected revenues (method RH), RHTALU:

1. advances the lazily-maintained program state
   (:class:`~repro.evaluation.pacer_state.LazyPacerState`) — O(1) logical
   updates plus eager work only for due triggers and past winners;
2. finds each slot's top-k bidders with the threshold algorithm over two
   sorted sources — the slot's static click-probability index and the
   keyword's merged bid lists — touching only a prefix of each;
3. runs the Hungarian algorithm on the union of the per-slot top-k lists
   (the same reduced matching RH uses).

The result is equivalent to RH on eagerly-evaluated programs (same
expected revenue; tests verify), at a per-auction cost that barely grows
with n — the Figure 13 effect.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.winner_determination import allocation_from_matching
from repro.evaluation.pacer_state import LazyPacerState
from repro.evaluation.sorted_index import SortedIndex
from repro.evaluation.threshold import product_aggregate, threshold_top_k
from repro.lang.outcome import Allocation
from repro.matching.hungarian import max_weight_matching
from repro.matching.types import MatchingResult


@dataclass(frozen=True)
class RhtaluAuctionResult:
    """One auction's outcome under RHTALU, with work accounting."""

    allocation: Allocation
    matching: MatchingResult  # pairs are (advertiser, slot_col)
    expected_revenue: float
    candidates: tuple[int, ...]
    sequential_accesses: int
    random_accesses: int


class RhtaluEvaluator:
    """Drives RHTALU auctions for the single-value-Click-bid workload.

    Parameters
    ----------
    click_matrix:
        The (n x k) click-probability matrix; column j becomes the static
        sorted index for slot j+1.
    state:
        The lazily-maintained pacing programs.  Callers must register
        every advertiser and keyword bid before the first auction.
    """

    def __init__(self, click_matrix: np.ndarray, state: LazyPacerState,
                 top_depth: int | None = None):
        matrix = np.asarray(click_matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(
                f"click matrix must be 2-D, got shape {matrix.shape}")
        self.click_matrix = matrix
        self.num_advertisers, self.num_slots = matrix.shape
        self.state = state
        # Depth k is what matching correctness needs; k+1 (the default)
        # additionally guarantees every slot's price-setting runner-up is
        # among the candidates, so GSP quotes match the eager methods'.
        self.top_depth = (self.num_slots + 1 if top_depth is None
                          else top_depth)
        self.slot_indexes = [
            SortedIndex({i: float(matrix[i, j])
                         for i in range(self.num_advertisers)})
            for j in range(self.num_slots)
        ]

    def run_auction(self, keyword: str, time: float) -> RhtaluAuctionResult:
        """Advance state, select candidates by TA, and match."""
        bid_source = self.state.begin_auction(keyword, time)
        candidates: set[int] = set()
        sequential = 0
        random = 0
        for slot_index in self.slot_indexes:
            result = threshold_top_k([slot_index, bid_source],
                                     product_aggregate, self.top_depth)
            sequential += result.sequential_accesses
            random += result.random_accesses
            candidates.update(result.ids())

        ordered = sorted(candidates)
        weights = np.empty((len(ordered), self.num_slots))
        for row, advertiser in enumerate(ordered):
            bid = bid_source.key(advertiser)
            weights[row, :] = self.click_matrix[advertiser, :] * bid
        matching = max_weight_matching(weights, allow_unmatched=True,
                                       backend="auto")
        pairs = tuple(sorted((ordered[row], col)
                             for row, col in matching.pairs))
        global_matching = MatchingResult(pairs=pairs,
                                         total_weight=matching.total_weight)
        allocation = allocation_from_matching(global_matching,
                                              self.num_slots)
        return RhtaluAuctionResult(
            allocation=allocation,
            matching=global_matching,
            expected_revenue=matching.total_weight,
            candidates=tuple(ordered),
            sequential_accesses=sequential,
            random_accesses=random,
        )

    def record_win(self, advertiser: int, price: float,
                   time: float) -> None:
        """Forward a winner's charge to the lazy state."""
        self.state.record_win(advertiser, price, time)
