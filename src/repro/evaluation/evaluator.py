"""Method RHTALU: the full Section IV per-auction pipeline, vectorized.

Per auction, instead of running all n bidding programs and scanning all
n·k expected revenues (method RH), RHTALU:

1. advances the lazily-maintained program state
   (:class:`~repro.evaluation.pacer_arrays.LazyPacerArrays`, the array
   mirror of the dict-backed reference state) — O(1) logical updates
   plus masked kernels only for due triggers and past winners;
2. finds each slot's top-k bidders with the threshold algorithm over two
   sorted sources — a column of the shared argsorted click matrix
   (:class:`~repro.evaluation.sorted_index.ColumnArgsortIndex`) and the
   keyword's merged bid walk — touching only a prefix of each, all
   slots fused into one block kernel
   (:func:`~repro.evaluation.threshold.product_top_k_all_slots`);
3. runs the Hungarian algorithm on the union of the per-slot top-k
   lists (the same reduced matching RH uses), refilling preallocated
   weight and solver buffers in place.

The result is equivalent to RH on eagerly-evaluated programs (same
expected revenue; tests verify), at a per-auction cost that barely grows
with n — the Figure 13 effect, now with the constant factor of array
kernels instead of per-item Python.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.winner_determination import allocation_from_matching
from repro.evaluation.pacer_arrays import LazyPacerArrays
from repro.evaluation.pacer_state import LazyPacerState
from repro.evaluation.sorted_index import ColumnArgsortIndex
from repro.evaluation.threshold import product_top_k_all_slots
from repro.lang.outcome import Allocation
from repro.matching.hungarian import HungarianScratch, max_weight_matching
from repro.matching.types import MatchingResult


@dataclass(frozen=True)
class RhtaluScanResult:
    """The candidate-selection half of an RHTALU auction.

    What the threshold algorithm alone determines: the per-slot top
    lists, the candidate union with its effective bids, and the access
    accounting — *before* any matching is solved.  This is the unit of
    work a shard worker performs in the multi-process runtime
    (:mod:`repro.runtime`): shards scan, the coordinator merges slot
    lists and matches.  ``candidate_bids`` aliases an evaluator-owned
    buffer valid until the next scan.
    """

    keyword: str
    time: float
    slot_ids: tuple[np.ndarray, ...]
    """Per slot, the top-``top_depth`` advertiser ids by bid x click
    score (ties toward the lower id)."""
    candidates: np.ndarray
    """Ascending union of the per-slot lists."""
    candidate_bids: np.ndarray
    sequential_count: int
    random_count: int


@dataclass(frozen=True)
class RhtaluAuctionResult:
    """One auction's outcome under RHTALU, with work accounting.

    ``candidate_bids`` / ``candidate_clicks`` / ``weights`` are the
    candidate-aligned arrays the reduced matching was solved on (rows
    follow ``candidates``); they alias evaluator-owned buffers and are
    valid until the next ``run_auction`` call — callers that need them
    longer must copy.
    """

    allocation: Allocation
    matching: MatchingResult  # pairs are (advertiser, slot_col)
    expected_revenue: float
    candidates: tuple[int, ...]
    sequential_count: int
    random_count: int
    candidate_bids: np.ndarray
    candidate_clicks: np.ndarray
    weights: np.ndarray


class RhtaluEvaluator:
    """Drives RHTALU auctions for the single-value-Click-bid workload.

    Parameters
    ----------
    click_matrix:
        The (n x k) click-probability matrix; its shared argsort becomes
        every slot's static sorted index.
    state:
        The lazily-maintained pacing programs.  A dict-backed
        :class:`LazyPacerState` is mirrored into arrays at construction
        (register every advertiser and keyword bid *before* building the
        evaluator); a prebuilt :class:`LazyPacerArrays` is used as-is.
    top_depth:
        Per-slot candidate depth.  k is what matching correctness
        needs; k+1 (the default) additionally guarantees every slot's
        price-setting runner-up is among the candidates, so GSP quotes
        match the eager methods'.
    block_size:
        Sorted-access rounds per kernel step (see
        :func:`~repro.evaluation.threshold.product_top_k_all_slots`).
    """

    def __init__(self, click_matrix: np.ndarray,
                 state: LazyPacerState | LazyPacerArrays,
                 top_depth: int | None = None,
                 block_size: int = 96):
        matrix = np.asarray(click_matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(
                f"click matrix must be 2-D, got shape {matrix.shape}")
        self.click_matrix = matrix
        self.num_advertisers, self.num_slots = matrix.shape
        if isinstance(state, LazyPacerState):
            state = LazyPacerArrays.from_state(state,
                                               self.num_advertisers)
        if state.num_advertisers != self.num_advertisers:
            raise ValueError(
                f"state covers {state.num_advertisers} advertisers, "
                f"click matrix {self.num_advertisers}")
        self.state = state
        self.top_depth = (self.num_slots + 1 if top_depth is None
                          else top_depth)
        self.block_size = block_size
        # The sorted index covers exactly the advertisers registered in
        # the pacer state (for the classic fixed-population build that
        # is every row).  Under live churn (:mod:`repro.stream`) the
        # two stay in lockstep through apply_join / apply_leave.
        self.slot_index = ColumnArgsortIndex(matrix,
                                             members=state.active_ids())
        # Preallocated per-auction buffers: TA score histories, the
        # candidate mask, and the candidate-aligned matching inputs.
        n, k = matrix.shape
        capacity = max(1, min(n, k * self.top_depth))
        self._a_scores = np.empty((n, k))
        self._b_scores = np.empty((n, k))
        self._candidate_mask = np.zeros(n, dtype=bool)
        self._clicks = np.empty((capacity, k))
        self._bids = np.empty(capacity)
        self._weights = np.empty((capacity, k))
        self._scratch = HungarianScratch(min(capacity, k),
                                         max(capacity, k))

    def scan_auction(self, keyword: str, time: float) -> RhtaluScanResult:
        """Advance state and select candidates by TA (no matching).

        The shardable half of :meth:`run_auction`: everything that
        depends only on this evaluator's advertiser population.  The
        sharded runtime runs one of these per shard per auction and
        merges the slot lists at the coordinator; :meth:`run_auction`
        composes it with the reduced matching for the single-process
        path.
        """
        source = self.state.begin_auction(keyword, time)
        selection = product_top_k_all_slots(
            self.slot_index, source.ids_desc, source.values_desc,
            source.rank, source.eff, self.top_depth, self.block_size,
            self._a_scores, self._b_scores)

        mask = self._candidate_mask
        for slot_winners in selection.slot_ids:
            mask[slot_winners] = True
        ordered = np.flatnonzero(mask)
        mask[ordered] = False

        bids = self._bids[:len(ordered)]
        np.take(source.eff, ordered, out=bids)
        return RhtaluScanResult(
            keyword=keyword,
            time=time,
            slot_ids=tuple(selection.slot_ids),
            candidates=ordered,
            candidate_bids=bids,
            sequential_count=selection.sequential_count,
            random_count=selection.random_count,
        )

    def run_auction(self, keyword: str, time: float) -> RhtaluAuctionResult:
        """Advance state, select candidates by TA, and match."""
        scan = self.scan_auction(keyword, time)
        ordered = scan.candidates
        count = len(ordered)

        clicks = self._clicks[:count]
        np.take(self.click_matrix, ordered, axis=0, out=clicks)
        bids = scan.candidate_bids
        weights = self._weights[:count]
        np.multiply(clicks, bids[:, None], out=weights)

        matching = max_weight_matching(weights, allow_unmatched=True,
                                       backend="auto",
                                       scratch=self._scratch)
        pairs = tuple(sorted((int(ordered[row]), col)
                             for row, col in matching.pairs))
        global_matching = MatchingResult(pairs=pairs,
                                         total_weight=matching.total_weight)
        allocation = allocation_from_matching(global_matching,
                                              self.num_slots)
        return RhtaluAuctionResult(
            allocation=allocation,
            matching=global_matching,
            expected_revenue=matching.total_weight,
            candidates=tuple(int(advertiser) for advertiser in ordered),
            sequential_count=scan.sequential_count,
            random_count=scan.random_count,
            candidate_bids=bids,
            candidate_clicks=clicks,
            weights=weights,
        )

    def record_win(self, advertiser: int, price: float,
                   time: float) -> None:
        """Forward a winner's charge to the lazy state."""
        self.state.record_win(advertiser, price, time)

    # -- live advertiser churn (the online serving layer) ---------------

    def apply_join(self, advertiser: int, target: float,
                   bids: np.ndarray, maxbids: np.ndarray) -> None:
        """Admit an advertiser mid-stream: pacer state + sorted index.

        The pacer placement and the argsort-index splice are the two
        incremental maintenance steps; both cost O(members) memmoves
        instead of the O(m log m) re-sorts a rebuild pays.
        """
        self.state.join(advertiser, target, bids, maxbids)
        self.slot_index.insert(advertiser)

    def apply_leave(self, advertiser: int) -> None:
        """Retire an advertiser from the pacer state and the index.

        A budget-paused advertiser left the index when it was paused;
        its departure only discards the retained pacer capture.
        """
        paused = advertiser in self.state.paused
        self.state.leave(advertiser)
        if not paused:
            self.slot_index.remove(advertiser)

    def apply_update(self, advertiser: int, keyword: str, bid: float,
                     maxbid: float) -> None:
        """Edit one keyword bid (the click index is bid-independent)."""
        self.state.update_bid(advertiser, keyword, bid, maxbid)

    def apply_pause(self, advertiser: int) -> None:
        """Budget exhaustion: retire from pacer state + index, but
        retain the pacer row's frozen capture for re-admission."""
        self.state.pause(advertiser)
        self.slot_index.remove(advertiser)

    def apply_resume(self, advertiser: int) -> None:
        """Budget top-up past zero: re-admit a paused advertiser."""
        self.state.resume(advertiser)
        self.slot_index.insert(advertiser)

    def rebuilt(self) -> "RhtaluEvaluator":
        """A from-scratch evaluator over the current primary state.

        Captures the pacer state's primary scalars and re-derives every
        sorted structure — delta-list orders, the argsort index, the
        preallocated TA and matching buffers.  The online service's
        ``rebuild`` maintenance strategy calls this after every control
        event; the incremental strategy must match its auction outcomes
        bit for bit (the stream test suite's oracle).
        """
        state = LazyPacerArrays.from_capture(self.state.capture())
        return RhtaluEvaluator(self.click_matrix, state,
                               top_depth=self.top_depth,
                               block_size=self.block_size)
