"""Probability that a bid formula holds, conditioned on an assignment.

This is the computational heart of Theorem 2's proof: for a 1-dependent
formula bid by advertiser *i*, once we fix the slot *j* assigned to *i*
(or fix that *i* is unassigned), every ``Slot`` atom becomes a constant
and only the ``Click``/``Purchase`` atoms remain random.  Their joint
distribution is given by the click and purchase models::

    P(Click)                 = w_ij
    P(Purchase | Click)      = q_ij
    P(Purchase | no Click)   = r_ij      (0 by default)

so the formula probability is a sum over at most four joint branches.
The expected value of a whole Bids table entry for cell (i, j) — used to
fill the winner-determination revenue matrix — is ``value x P(formula)``.

The heavyweight variants additionally condition on the page's heavyweight
layout (Section III-F): ``HeavyInSlot`` atoms become constants of the
layout and the click model may itself depend on the layout.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.lang.bids import BidsTable
from repro.lang.dependence import analyze_formula
from repro.lang.formula import FALSE, TRUE, Formula
from repro.lang.predicates import (
    AdvertiserId,
    ClickPredicate,
    HeavyInSlotPredicate,
    Predicate,
    PurchasePredicate,
    SlotPredicate,
)
from repro.probability.click_models import ClickModel
from repro.probability.purchase_models import PurchaseModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.probability.heavyweight import HeavyweightClickModel


class NotSupportedFormulaError(ValueError):
    """The formula falls outside what the probability model can price.

    Raised for formulas that mention other advertisers (2-dependent; see
    Theorem 3) or that mention the heavyweight layout when a plain
    (non-layout) model is in use.
    """


def formula_probability(formula: Formula,
                        owner: AdvertiserId,
                        slot_index: int | None,
                        click_model: ClickModel,
                        purchase_model: PurchaseModel) -> float:
    """``P(formula | advertiser `owner` holds `slot_index`)``.

    ``slot_index=None`` conditions on the owner being unassigned, in which
    case clicks and purchases are impossible and only the slot atoms'
    (all-false) truth matters — this prices the Theorem 2 proof's
    ``E ∧ ⋀_j ¬Slot_j`` rows.
    """
    profile = analyze_formula(formula, owner)
    if profile.uses_heavy_layout:
        raise NotSupportedFormulaError(
            f"formula {formula} mentions the heavyweight layout; use "
            "heavy_formula_probability with a HeavyweightClickModel")
    if profile.advertisers - {owner}:
        raise NotSupportedFormulaError(
            f"formula {formula} depends on advertisers "
            f"{sorted(profile.advertisers - {owner})}; only 1-dependent "
            "bids can be priced (Theorem 3)")

    resolved = formula.resolve(owner)
    fixed = _fix_slot_atoms(resolved, owner, slot_index)
    if fixed is TRUE:
        return 1.0
    if fixed is FALSE:
        return 0.0

    w = click_model.p_click(owner, slot_index)
    q = purchase_model.p_purchase_given_click(owner, slot_index)
    r = purchase_model.p_purchase_given_no_click(owner, slot_index)
    return _marginalise_user_atoms(fixed, owner, w, q, r)


def heavy_formula_probability(formula: Formula,
                              owner: AdvertiserId,
                              slot_index: int | None,
                              heavy_slots: frozenset[int],
                              click_model: "HeavyweightClickModel",
                              purchase_model: PurchaseModel) -> float:
    """``P(formula | owner holds slot, heavyweight layout heavy_slots)``.

    ``heavy_slots`` is the set of slots occupied by heavyweight
    advertisers in the layout under consideration (the Section III-F
    enumeration variable).
    """
    profile = analyze_formula(formula, owner)
    if profile.advertisers - {owner}:
        raise NotSupportedFormulaError(
            f"formula {formula} depends on advertisers "
            f"{sorted(profile.advertisers - {owner})}; only 1-dependent "
            "bids can be priced (Theorem 3)")

    resolved = formula.resolve(owner)
    layout_fixed = resolved.substitute({
        atom: atom.slot in heavy_slots
        for atom in resolved.atoms()
        if isinstance(atom, HeavyInSlotPredicate)
    })
    fixed = _fix_slot_atoms(layout_fixed, owner, slot_index)
    if fixed is TRUE:
        return 1.0
    if fixed is FALSE:
        return 0.0

    w = click_model.p_click(owner, slot_index, heavy_slots)
    q = purchase_model.p_purchase_given_click(owner, slot_index)
    r = purchase_model.p_purchase_given_no_click(owner, slot_index)
    return _marginalise_user_atoms(fixed, owner, w, q, r)


def expected_table_value(table: BidsTable,
                         owner: AdvertiserId,
                         slot_index: int | None,
                         click_model: ClickModel,
                         purchase_model: PurchaseModel) -> float:
    """Expected payment of ``owner`` in ``slot_index``, summed over rows.

    Assumes advertisers pay what they bid (the winner-determination
    objective); OR-bid semantics make the expectation a plain sum of
    per-row expectations by linearity.
    """
    return sum(
        row.value * formula_probability(row.formula, owner, slot_index,
                                        click_model, purchase_model)
        for row in table)


def heavy_expected_table_value(table: BidsTable,
                               owner: AdvertiserId,
                               slot_index: int | None,
                               heavy_slots: frozenset[int],
                               click_model: "HeavyweightClickModel",
                               purchase_model: PurchaseModel) -> float:
    """Layout-conditioned expected payment (Section III-F)."""
    return sum(
        row.value * heavy_formula_probability(row.formula, owner,
                                              slot_index, heavy_slots,
                                              click_model, purchase_model)
        for row in table)


def _fix_slot_atoms(formula: Formula, owner: AdvertiserId,
                    slot_index: int | None) -> Formula:
    """Substitute the owner's ``Slot`` atoms given his assignment."""
    substitution: dict[Predicate, bool] = {}
    for atom in formula.atoms():
        if isinstance(atom, SlotPredicate):
            substitution[atom] = (atom.slot == slot_index)
    return formula.substitute(substitution)


def _marginalise_user_atoms(formula: Formula, owner: AdvertiserId,
                            w: float, q: float, r: float) -> float:
    """Sum P(click, purchase branches) over branches satisfying formula."""
    atoms = sorted(formula.atoms(), key=str)
    for atom in atoms:
        if not isinstance(atom, (ClickPredicate, PurchasePredicate)):
            raise AssertionError(
                f"unexpected residual atom {atom} after slot substitution")

    total = 0.0
    click_atom = ClickPredicate(advertiser=owner)
    purchase_atom = PurchasePredicate(advertiser=owner)
    for clicked in (False, True):
        p_click_branch = w if clicked else 1.0 - w
        if p_click_branch == 0.0:
            continue
        p_purchase = q if clicked else r
        for purchased in (False, True):
            p_branch = p_click_branch * (p_purchase if purchased
                                         else 1.0 - p_purchase)
            if p_branch == 0.0:
                continue
            value = formula.substitute({click_atom: clicked,
                                        purchase_atom: purchased})
            if value is TRUE:
                total += p_branch
            elif value is not FALSE:
                raise AssertionError(
                    f"formula {formula} did not reduce to a constant; "
                    f"residual atoms {sorted(map(str, value.atoms()))}")
    return total
