"""Purchase-probability models (Section III-A).

The paper assumes "the probability that he gets a purchase depends only on
whether he got a click and on the slot allocated to him".  A
:class:`PurchaseModel` therefore exposes two conditionals:

* ``p_purchase_given_click(i, j)``   — purchase probability after a click;
* ``p_purchase_given_no_click(i, j)`` — purchase probability without one.

The no-click conditional defaults to 0 everywhere (a purchase "via a link
from the advertiser's ad" requires following the link), but the interface
keeps it explicit because the paper's model formally allows it and the
formula-probability computation must marginalise over both branches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lang.predicates import AdvertiserId


class PurchaseModelError(ValueError):
    """Raised for malformed purchase-probability inputs."""


class PurchaseModel:
    """Interface: purchase probability conditioned on click and slot."""

    num_advertisers: int
    num_slots: int

    def p_purchase_given_click(self, advertiser: AdvertiserId,
                               slot_index: int | None) -> float:
        """``P(Purchase | Click, slot)``; 0 when unassigned."""
        raise NotImplementedError

    def p_purchase_given_no_click(self, advertiser: AdvertiserId,
                                  slot_index: int | None) -> float:
        """``P(Purchase | no Click, slot)``; 0 when unassigned."""
        raise NotImplementedError


@dataclass
class TabularPurchaseModel(PurchaseModel):
    """Purchase conditionals from explicit n-by-k matrices.

    ``given_click[i, j-1]`` is ``P(Purchase | Click, advertiser i, slot j)``.
    ``given_no_click`` may be ``None`` for the default all-zeros model.
    """

    given_click: np.ndarray
    given_no_click: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.given_click = _validated("given_click", self.given_click)
        self.num_advertisers, self.num_slots = self.given_click.shape
        if self.given_no_click is None:
            self.given_no_click = np.zeros_like(self.given_click)
        else:
            self.given_no_click = _validated("given_no_click",
                                             self.given_no_click)
            if self.given_no_click.shape != self.given_click.shape:
                raise PurchaseModelError(
                    "given_click and given_no_click shapes differ: "
                    f"{self.given_click.shape} vs {self.given_no_click.shape}")

    def p_purchase_given_click(self, advertiser: AdvertiserId,
                               slot_index: int | None) -> float:
        if slot_index is None:
            return 0.0
        return float(self.given_click[advertiser, slot_index - 1])

    def p_purchase_given_no_click(self, advertiser: AdvertiserId,
                                  slot_index: int | None) -> float:
        if slot_index is None:
            return 0.0
        return float(self.given_no_click[advertiser, slot_index - 1])


@dataclass
class ConstantRatePurchaseModel(PurchaseModel):
    """A single conversion rate shared by all advertisers and slots.

    Handy for workloads where purchases matter but per-cell estimates do
    not (e.g. the quickstart example).
    """

    num_advertisers: int
    num_slots: int
    rate_given_click: float = 0.1
    rate_given_no_click: float = 0.0

    def __post_init__(self) -> None:
        for name in ("rate_given_click", "rate_given_no_click"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise PurchaseModelError(
                    f"{name} must lie in [0, 1], got {rate}")

    def p_purchase_given_click(self, advertiser: AdvertiserId,
                               slot_index: int | None) -> float:
        return 0.0 if slot_index is None else self.rate_given_click

    def p_purchase_given_no_click(self, advertiser: AdvertiserId,
                                  slot_index: int | None) -> float:
        return 0.0 if slot_index is None else self.rate_given_no_click


def no_purchases(num_advertisers: int, num_slots: int) -> PurchaseModel:
    """The trivial model where purchases never happen.

    This matches the Section V experiments, which exercise click bids
    only.
    """
    return ConstantRatePurchaseModel(num_advertisers, num_slots,
                                     rate_given_click=0.0)


def _validated(name: str, matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise PurchaseModelError(
            f"{name} must be 2-D, got shape {matrix.shape}")
    if np.any(~np.isfinite(matrix)):
        raise PurchaseModelError(f"{name} contains non-finite entries")
    if np.any((matrix < 0) | (matrix > 1)):
        raise PurchaseModelError(f"{name} entries must lie in [0, 1]")
    return matrix
