"""Separability detection and factorization (Section III-C, Figures 7-8).

A click-probability matrix is *separable* when it factors into the outer
product of an advertiser-specific vector and a slot-specific vector —
equivalently, when it has (numerical) rank at most 1.  The incumbent
allocators rely on this; the paper's point is that separability is a much
stronger assumption than 1-dependence, and their algorithm drops it.

:func:`factorize` recovers factors from a separable matrix (the
factorization is unique only up to a scalar; we normalise so the largest
slot factor equals the matrix's largest column maximum pattern used in the
paper's example, i.e. slot factors carry the scale of the first non-zero
row).  :func:`is_separable` is the predicate; both tolerate zero rows and
columns, which arise naturally when an advertiser is irrelevant to a query.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Factorization:
    """Result of factorising a separable click matrix."""

    advertiser_factors: np.ndarray
    slot_factors: np.ndarray

    def reconstruct(self) -> np.ndarray:
        """The rank-1 matrix these factors generate."""
        return np.outer(self.advertiser_factors, self.slot_factors)


class NotSeparableError(ValueError):
    """Raised by :func:`factorize` on a non-separable matrix."""


def is_separable(matrix: np.ndarray, tol: float = 1e-9) -> bool:
    """Whether ``matrix`` is an outer product of two non-negative vectors.

    Uses cross-ratio checks rather than an SVD so the tolerance has a
    direct elementwise meaning: every 2x2 minor must vanish to within
    ``tol``.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
    rows, cols = matrix.shape
    if rows <= 1 or cols <= 1:
        return True
    # All 2x2 minors of a rank-<=1 matrix are zero:
    # m[a,c]*m[b,d] == m[a,d]*m[b,c].  Vectorised via broadcasting against
    # a reference row/column through the matrix's largest entry, then a
    # full minor check against the reconstruction.
    try:
        factors = factorize(matrix, tol=tol)
    except NotSeparableError:
        return False
    return bool(np.allclose(matrix, factors.reconstruct(), atol=tol,
                            rtol=0.0))


def factorize(matrix: np.ndarray, tol: float = 1e-9) -> Factorization:
    """Recover (advertiser, slot) factors from a separable matrix.

    Raises :class:`NotSeparableError` when no rank-1 factorization exists
    within ``tol``.  Zero rows/columns yield zero factors.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
    rows, cols = matrix.shape
    if rows == 0 or cols == 0:
        return Factorization(np.zeros(rows), np.zeros(cols))

    # Anchor on the largest entry for numerical stability.
    anchor_row, anchor_col = np.unravel_index(np.argmax(np.abs(matrix)),
                                              matrix.shape)
    pivot = matrix[anchor_row, anchor_col]
    if abs(pivot) <= tol:
        # Entire matrix is (numerically) zero.
        return Factorization(np.zeros(rows), np.zeros(cols))

    slot_factors = matrix[anchor_row, :].copy()
    advertiser_factors = matrix[:, anchor_col] / pivot
    reconstruction = np.outer(advertiser_factors, slot_factors)
    if not np.allclose(matrix, reconstruction, atol=tol, rtol=0.0):
        worst = float(np.max(np.abs(matrix - reconstruction)))
        raise NotSeparableError(
            f"matrix is not rank-1 within tol={tol} "
            f"(max reconstruction error {worst:.3g})")
    return Factorization(advertiser_factors, slot_factors)


def separability_gap(matrix: np.ndarray) -> float:
    """How far a matrix is from separable: its second singular value.

    0 for exactly separable matrices; used by workload generators and
    diagnostics to quantify how strongly an instance violates the
    incumbent allocators' assumption.
    """
    matrix = np.asarray(matrix, dtype=float)
    if min(matrix.shape) < 2:
        return 0.0
    singular_values = np.linalg.svd(matrix, compute_uv=False)
    return float(singular_values[1])
