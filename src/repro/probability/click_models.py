"""Click-probability models (Section III-A).

The paper's first-order approximation: the probability that advertiser *i*
receives a click depends only on the slot assigned to *i*.  The provider
estimates these probabilities from its logs; here they are represented by
a :class:`ClickModel`, of which two concrete families matter:

* :class:`TabularClickModel` — an arbitrary n-by-k matrix
  ``P(click | advertiser i in slot j)`` (the general, possibly
  *non-separable* case of Figure 7);
* :class:`SeparableClickModel` — the restricted case assumed by the
  existing Google/Yahoo allocators (Section III-C, Figure 8), where the
  matrix is a rank-1 product of an advertiser factor and a slot factor.

An advertiser who receives no slot receives no click: every model returns
0 for ``slot_index=None``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lang.predicates import AdvertiserId


class ClickModelError(ValueError):
    """Raised for malformed click-probability inputs."""


class ClickModel:
    """Interface: click probability conditioned on the advertiser's slot."""

    num_advertisers: int
    num_slots: int

    def p_click(self, advertiser: AdvertiserId,
                slot_index: int | None) -> float:
        """``P(Click_i | advertiser i holds slot_index)``.

        ``slot_index`` is 1-based; ``None`` means unassigned and always
        yields 0.
        """
        raise NotImplementedError

    def as_matrix(self) -> np.ndarray:
        """Dense ``(num_advertisers, num_slots)`` matrix view."""
        matrix = np.empty((self.num_advertisers, self.num_slots))
        for i in range(self.num_advertisers):
            for j in range(1, self.num_slots + 1):
                matrix[i, j - 1] = self.p_click(i, j)
        return matrix

    def _check_advertiser(self, advertiser: AdvertiserId) -> None:
        if not 0 <= advertiser < self.num_advertisers:
            raise ClickModelError(
                f"advertiser {advertiser} outside 0..{self.num_advertisers - 1}")

    def _check_slot(self, slot_index: int) -> None:
        if not 1 <= slot_index <= self.num_slots:
            raise ClickModelError(
                f"slot {slot_index} outside 1..{self.num_slots}")


@dataclass
class TabularClickModel(ClickModel):
    """Click probabilities from an explicit n-by-k matrix.

    ``matrix[i, j-1]`` is ``P(click | advertiser i in slot j)``.
    """

    matrix: np.ndarray

    def __post_init__(self) -> None:
        self.matrix = np.asarray(self.matrix, dtype=float)
        if self.matrix.ndim != 2:
            raise ClickModelError(
                f"click matrix must be 2-D, got shape {self.matrix.shape}")
        if np.any(~np.isfinite(self.matrix)):
            raise ClickModelError("click matrix contains non-finite entries")
        if np.any((self.matrix < 0) | (self.matrix > 1)):
            raise ClickModelError(
                "click probabilities must lie in [0, 1]")
        self.num_advertisers, self.num_slots = self.matrix.shape

    def p_click(self, advertiser: AdvertiserId,
                slot_index: int | None) -> float:
        if slot_index is None:
            return 0.0
        self._check_advertiser(advertiser)
        self._check_slot(slot_index)
        return float(self.matrix[advertiser, slot_index - 1])

    def as_matrix(self) -> np.ndarray:
        return self.matrix


@dataclass
class SeparableClickModel(ClickModel):
    """Rank-1 click probabilities: ``P = advertiser_factor x slot_factor``.

    This is the separability assumption of the incumbent allocators
    (Section III-C): the ratio of two advertisers' click rates is the same
    in every slot.  Products must land in [0, 1].
    """

    advertiser_factors: np.ndarray
    slot_factors: np.ndarray

    def __post_init__(self) -> None:
        self.advertiser_factors = np.asarray(self.advertiser_factors,
                                             dtype=float)
        self.slot_factors = np.asarray(self.slot_factors, dtype=float)
        if self.advertiser_factors.ndim != 1 or self.slot_factors.ndim != 1:
            raise ClickModelError("factors must be 1-D arrays")
        if (np.any(self.advertiser_factors < 0)
                or np.any(self.slot_factors < 0)):
            raise ClickModelError("factors must be non-negative")
        products = np.outer(self.advertiser_factors, self.slot_factors)
        if np.any(products > 1.0 + 1e-12):
            raise ClickModelError(
                "factor products exceed 1; not a probability model")
        self.num_advertisers = len(self.advertiser_factors)
        self.num_slots = len(self.slot_factors)

    def p_click(self, advertiser: AdvertiserId,
                slot_index: int | None) -> float:
        if slot_index is None:
            return 0.0
        self._check_advertiser(advertiser)
        self._check_slot(slot_index)
        return float(self.advertiser_factors[advertiser]
                     * self.slot_factors[slot_index - 1])

    def as_matrix(self) -> np.ndarray:
        return np.outer(self.advertiser_factors, self.slot_factors)


def figure7_model() -> TabularClickModel:
    """The non-separable example of Figure 7 (Nike/Adidas, 2 slots)."""
    return TabularClickModel(np.array([[0.7, 0.4],
                                       [0.6, 0.3]]))


def figure8_model() -> TabularClickModel:
    """The separable example of Figure 8 (factors 4, 3 x 0.2, 0.1)."""
    return TabularClickModel(np.array([[0.8, 0.4],
                                       [0.6, 0.3]]))
