"""Heavyweight/lightweight click models (Section III-F).

Beyond 1-dependence, the paper lets an advertiser's click probability
depend on his own slot *and* on which slots hold heavyweight (famous)
advertisers — e.g. an ad just below a famous competitor loses clicks.  A
full distribution over entire assignments would cost O(k n^k); the
heavyweight taxonomy compresses it to O(k 2^(k-1)) per advertiser: one
probability per (own slot, heavyweight layout of the other slots).

:class:`HeavyweightClickModel` is the interface (slot + layout →
probability); :class:`TabularHeavyweightClickModel` stores the compressed
table explicitly; :class:`PenaltyHeavyweightClickModel` is a structured
generator-friendly family where heavyweights above an ad multiplicatively
depress its click rate — useful for synthetic workloads and for tests,
since its behaviour is predictable.

``AdvertiserClassifier`` implements the paper's suggested taxonomy rule:
"select those advertisers with the most clicks so far".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lang.predicates import AdvertiserId
from repro.probability.click_models import ClickModel, ClickModelError


def layout_key(heavy_slots: frozenset[int]) -> int:
    """Encode a heavyweight layout as a bitmask (slot j → bit j-1)."""
    mask = 0
    for slot_index in heavy_slots:
        mask |= 1 << (slot_index - 1)
    return mask


def layout_from_key(mask: int, num_slots: int) -> frozenset[int]:
    """Decode a bitmask back into a set of heavyweight slots."""
    return frozenset(j for j in range(1, num_slots + 1)
                     if mask & (1 << (j - 1)))


def all_layouts(num_slots: int):
    """Iterate over all 2^k heavyweight layouts (as frozensets)."""
    for mask in range(1 << num_slots):
        yield layout_from_key(mask, num_slots)


class HeavyweightClickModel:
    """Click probability conditioned on own slot and heavyweight layout."""

    num_advertisers: int
    num_slots: int

    def p_click(self, advertiser: AdvertiserId, slot_index: int | None,
                heavy_slots: frozenset[int]) -> float:
        """``P(Click | advertiser in slot, layout heavy_slots)``."""
        raise NotImplementedError


@dataclass
class TabularHeavyweightClickModel(HeavyweightClickModel):
    """Explicit table: ``probs[advertiser][(slot, layout_mask)]``.

    Missing (slot, layout) cells fall back to ``base`` — a plain
    :class:`ClickModel` giving the layout-independent probability — so
    sparse tables (only the layouts an advertiser cares about) stay small,
    mirroring the paper's advice to store only probabilities that bidding
    programs actually mention.
    """

    base: ClickModel
    probs: dict[AdvertiserId, dict[tuple[int, int], float]] = field(
        default_factory=dict)

    def __post_init__(self) -> None:
        self.num_advertisers = self.base.num_advertisers
        self.num_slots = self.base.num_slots
        for advertiser, table in self.probs.items():
            for (slot_index, mask), prob in table.items():
                if not 1 <= slot_index <= self.num_slots:
                    raise ClickModelError(
                        f"slot {slot_index} outside 1..{self.num_slots}")
                if not 0 <= mask < (1 << self.num_slots):
                    raise ClickModelError(f"layout mask {mask} out of range")
                if not 0.0 <= prob <= 1.0:
                    raise ClickModelError(
                        f"probability {prob} for advertiser {advertiser} "
                        "outside [0, 1]")

    def p_click(self, advertiser: AdvertiserId, slot_index: int | None,
                heavy_slots: frozenset[int]) -> float:
        if slot_index is None:
            return 0.0
        overrides = self.probs.get(advertiser)
        if overrides is not None:
            key = (slot_index, layout_key(heavy_slots))
            if key in overrides:
                return overrides[key]
        return self.base.p_click(advertiser, slot_index)

    def set_probability(self, advertiser: AdvertiserId, slot_index: int,
                        heavy_slots: frozenset[int], prob: float) -> None:
        """Record a layout-specific probability override."""
        if not 0.0 <= prob <= 1.0:
            raise ClickModelError(f"probability {prob} outside [0, 1]")
        self.probs.setdefault(advertiser, {})[
            (slot_index, layout_key(heavy_slots))] = prob


@dataclass
class PenaltyHeavyweightClickModel(HeavyweightClickModel):
    """Structured layout dependence: heavyweights above steal clicks.

    The click probability of advertiser *i* in slot *j* is::

        base.p_click(i, j) x penalty^(# heavyweight slots above j)

    (slots above = numerically smaller).  ``penalty`` in (0, 1] — 1 means
    no layout effect, recovering the plain model.  Lightweight ads are
    hurt; heavyweight advertisers themselves can be exempted via
    ``exempt``, reflecting that a famous brand is not scared of another
    famous brand.
    """

    base: ClickModel
    penalty: float = 0.8
    exempt: frozenset[AdvertiserId] = frozenset()

    def __post_init__(self) -> None:
        if not 0.0 < self.penalty <= 1.0:
            raise ClickModelError(
                f"penalty must lie in (0, 1], got {self.penalty}")
        self.num_advertisers = self.base.num_advertisers
        self.num_slots = self.base.num_slots

    def p_click(self, advertiser: AdvertiserId, slot_index: int | None,
                heavy_slots: frozenset[int]) -> float:
        if slot_index is None:
            return 0.0
        base = self.base.p_click(advertiser, slot_index)
        if advertiser in self.exempt:
            return base
        heavies_above = sum(1 for s in heavy_slots if s < slot_index)
        return base * self.penalty ** heavies_above


@dataclass(frozen=True)
class AdvertiserClassifier:
    """Split advertisers into heavyweights and lightweights.

    Implements the paper's footnote rule: the advertisers with the most
    clicks so far are the heavyweights.  ``click_counts[i]`` is the
    historical click total of advertiser *i*.
    """

    click_counts: tuple[int, ...]
    num_heavyweights: int

    def __post_init__(self) -> None:
        if self.num_heavyweights < 0:
            raise ValueError("num_heavyweights must be >= 0")
        if self.num_heavyweights > len(self.click_counts):
            raise ValueError(
                f"cannot pick {self.num_heavyweights} heavyweights from "
                f"{len(self.click_counts)} advertisers")

    def heavyweights(self) -> frozenset[AdvertiserId]:
        """The ids of the top-``num_heavyweights`` advertisers by clicks.

        Ties break toward the lower advertiser id, deterministically.
        """
        order = sorted(range(len(self.click_counts)),
                       key=lambda i: (-self.click_counts[i], i))
        return frozenset(order[:self.num_heavyweights])

    def lightweights(self) -> frozenset[AdvertiserId]:
        """Everyone who is not a heavyweight."""
        heavy = self.heavyweights()
        return frozenset(i for i in range(len(self.click_counts))
                         if i not in heavy)


def random_heavyweight_model(base: ClickModel,
                             rng: np.random.Generator,
                             spread: float = 0.5
                             ) -> TabularHeavyweightClickModel:
    """A dense random layout-dependent model for tests and ablations.

    Every (advertiser, slot, layout) cell is the base probability scaled
    by a factor drawn uniformly from ``[1 - spread, 1]`` — layouts only
    ever *reduce* click-through, keeping probabilities valid.
    """
    if not 0.0 <= spread < 1.0:
        raise ClickModelError(f"spread must lie in [0, 1), got {spread}")
    model = TabularHeavyweightClickModel(base=base)
    for advertiser in range(base.num_advertisers):
        for slot_index in range(1, base.num_slots + 1):
            base_prob = base.p_click(advertiser, slot_index)
            for mask in range(1 << base.num_slots):
                scale = 1.0 - spread * rng.random()
                model.probs.setdefault(advertiser, {})[
                    (slot_index, mask)] = base_prob * scale
    return model
