"""Estimating click/purchase probabilities from auction history.

Section III-A assumes the search provider "has (or can estimate, using
data it has collected)" the per-(advertiser, slot) click and purchase
probabilities.  This module is that estimator: it consumes impression /
click / purchase counts — the by-product of running the auction engine —
and produces tabular models with additive (Laplace) smoothing so unseen
cells get sensible priors instead of zeros.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lang.predicates import AdvertiserId
from repro.probability.click_models import TabularClickModel
from repro.probability.purchase_models import TabularPurchaseModel


@dataclass
class InteractionLog:
    """Per-(advertiser, slot) impression, click, and purchase counters."""

    num_advertisers: int
    num_slots: int
    impressions: np.ndarray = field(init=False)
    clicks: np.ndarray = field(init=False)
    purchases: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        shape = (self.num_advertisers, self.num_slots)
        self.impressions = np.zeros(shape, dtype=np.int64)
        self.clicks = np.zeros(shape, dtype=np.int64)
        self.purchases = np.zeros(shape, dtype=np.int64)

    def record(self, advertiser: AdvertiserId, slot_index: int,
               clicked: bool, purchased: bool) -> None:
        """Record one impression and its user actions.

        Purchases without clicks are rejected, matching the outcome
        model's invariant.
        """
        if purchased and not clicked:
            raise ValueError("a purchase requires a click-through")
        row, col = advertiser, slot_index - 1
        self.impressions[row, col] += 1
        if clicked:
            self.clicks[row, col] += 1
        if purchased:
            self.purchases[row, col] += 1

    def record_outcome(self, outcome) -> None:
        """Record every impression of an :class:`~repro.lang.Outcome`."""
        for advertiser, slot_index in outcome.allocation.slot_of.items():
            self.record(advertiser, slot_index,
                        clicked=advertiser in outcome.clicked,
                        purchased=advertiser in outcome.purchased)

    def merge(self, other: "InteractionLog") -> None:
        """Fold another log's counters into this one (e.g. per-shard logs
        from the paper's distributed program evaluation)."""
        if (other.num_advertisers != self.num_advertisers
                or other.num_slots != self.num_slots):
            raise ValueError("cannot merge logs of different shapes")
        self.impressions += other.impressions
        self.clicks += other.clicks
        self.purchases += other.purchases


@dataclass(frozen=True)
class SmoothingPrior:
    """Additive smoothing pseudo-counts for estimation.

    ``click_alpha`` successes and ``click_beta`` failures are added to
    every click cell (and analogously for purchases given clicks).  The
    defaults encode a weak prior centred on low click-through rates.
    """

    click_alpha: float = 1.0
    click_beta: float = 9.0
    purchase_alpha: float = 1.0
    purchase_beta: float = 9.0

    def __post_init__(self) -> None:
        for name in ("click_alpha", "click_beta",
                     "purchase_alpha", "purchase_beta"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


def estimate_click_model(log: InteractionLog,
                         prior: SmoothingPrior = SmoothingPrior()
                         ) -> TabularClickModel:
    """Smoothed MAP estimate of ``P(click | advertiser, slot)``."""
    numerator = log.clicks + prior.click_alpha
    denominator = log.impressions + prior.click_alpha + prior.click_beta
    with np.errstate(invalid="ignore"):
        matrix = np.where(denominator > 0, numerator / denominator, 0.0)
    return TabularClickModel(np.clip(matrix, 0.0, 1.0))


def estimate_purchase_model(log: InteractionLog,
                            prior: SmoothingPrior = SmoothingPrior()
                            ) -> TabularPurchaseModel:
    """Smoothed MAP estimate of ``P(purchase | click, advertiser, slot)``."""
    numerator = log.purchases + prior.purchase_alpha
    denominator = log.clicks + prior.purchase_alpha + prior.purchase_beta
    with np.errstate(invalid="ignore"):
        matrix = np.where(denominator > 0, numerator / denominator, 0.0)
    return TabularPurchaseModel(np.clip(matrix, 0.0, 1.0))


def estimation_error(estimated: TabularClickModel,
                     truth: TabularClickModel) -> float:
    """Max absolute cellwise error between two click models.

    Used by tests to check the estimator converges to the generating
    model as the log grows.
    """
    return float(np.max(np.abs(estimated.matrix - truth.matrix)))
