"""Probability substrate: click/purchase models and formula pricing.

Implements Section III-A's outcome-distribution assumptions (clicks depend
only on the advertiser's own slot; purchases depend on the click and the
slot), the separability analysis of Section III-C, the heavyweight layout
models of Section III-F, and the estimation pipeline the provider would
run over its logs.
"""

from repro.probability.click_models import (
    ClickModel,
    ClickModelError,
    SeparableClickModel,
    TabularClickModel,
    figure7_model,
    figure8_model,
)
from repro.probability.estimation import (
    InteractionLog,
    SmoothingPrior,
    estimate_click_model,
    estimate_purchase_model,
    estimation_error,
)
from repro.probability.formula_prob import (
    NotSupportedFormulaError,
    expected_table_value,
    formula_probability,
    heavy_expected_table_value,
    heavy_formula_probability,
)
from repro.probability.heavyweight import (
    AdvertiserClassifier,
    HeavyweightClickModel,
    PenaltyHeavyweightClickModel,
    TabularHeavyweightClickModel,
    all_layouts,
    layout_from_key,
    layout_key,
    random_heavyweight_model,
)
from repro.probability.purchase_models import (
    ConstantRatePurchaseModel,
    PurchaseModel,
    PurchaseModelError,
    TabularPurchaseModel,
    no_purchases,
)
from repro.probability.separable import (
    Factorization,
    NotSeparableError,
    factorize,
    is_separable,
    separability_gap,
)

__all__ = [
    "AdvertiserClassifier",
    "ClickModel",
    "ClickModelError",
    "ConstantRatePurchaseModel",
    "Factorization",
    "HeavyweightClickModel",
    "InteractionLog",
    "NotSeparableError",
    "NotSupportedFormulaError",
    "PenaltyHeavyweightClickModel",
    "PurchaseModel",
    "PurchaseModelError",
    "SeparableClickModel",
    "SmoothingPrior",
    "TabularClickModel",
    "TabularHeavyweightClickModel",
    "TabularPurchaseModel",
    "all_layouts",
    "estimate_click_model",
    "estimate_purchase_model",
    "estimation_error",
    "expected_table_value",
    "factorize",
    "figure7_model",
    "figure8_model",
    "formula_probability",
    "heavy_expected_table_value",
    "heavy_formula_probability",
    "is_separable",
    "layout_from_key",
    "layout_key",
    "no_purchases",
    "random_heavyweight_model",
    "separability_gap",
]
