"""The ingress sequencer: a total arrival order for concurrent frames.

The entire replay/oracle machinery downstream of the wire rests on one
invariant: the service consumes a *single ordered stream*, and its
output is a pure function of (that stream, the engine seed).  Client
frames, though, arrive concurrently — many connections, many reader
tasks, no inherent order.  The sequencer is the pinch point that
manufactures the order: under one lock it stamps each event with the
next sequence number **and** enqueues it, so the stamp and the queue
position can never disagree.  Whatever interleaving the network
produced, the stream the service sees — and the
:class:`~repro.stream.events.EventLog` a ``--record-events`` run
writes — is the total order the stamps describe, which is why a live
run's trace replays bit-identically offline.

Two orderings are guaranteed:

* **Totality** — stamps are contiguous from 0 and queue order equals
  stamp order (the lock covers both).
* **Per-connection FIFO** — a connection's reader submits its frames
  one at a time in arrival order, so each client's own events keep
  their relative order in the total order.  Cross-connection order is
  whatever the race produced; it is *an* order, made durable.

The queue is bounded: :meth:`submit` blocks when the service lags,
which (through the per-connection reader tasks) becomes TCP
backpressure on the offending clients — the same admission-control
story as :class:`~repro.stream.batching.MicroBatcher`'s ingress
queue, applied at the wire.  Blocking inside the lock is safe because
the only consumer (:meth:`take`) never acquires the lock.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from repro.stream.events import Event

_CLOSED = object()  # queue sentinel: no more events will be submitted


@dataclass
class SequencedEvent:
    """One stamped ingress event, en route to the service loop."""

    seq: int
    event: Event
    conn_id: int
    tag: Any = None
    arrival: float = field(default_factory=perf_counter)
    """``perf_counter`` at stamping — the start of the end-to-end
    latency the serve bench reports (reply enqueue is the end)."""


class IngressSequencer:
    """Stamp-and-enqueue pinch point between reader tasks and the
    service loop."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._queue: queue.Queue = queue.Queue(maxsize=capacity)
        self._lock = threading.Lock()
        self._next_seq = 0
        self._closed = False
        self._drained = False

    @property
    def submitted(self) -> int:
        """How many events have been stamped so far."""
        with self._lock:
            return self._next_seq

    @property
    def drained(self) -> bool:
        """Whether the close sentinel has been consumed (no event will
        ever be produced again)."""
        return self._drained

    def depth(self) -> int:
        """Events stamped but not yet taken (approximate, racy)."""
        return self._queue.qsize()

    def submit(self, event: Event, *, conn_id: int = 0,
               tag: Any = None) -> SequencedEvent:
        """Stamp ``event`` with the next sequence number and enqueue it.

        Blocks while the queue is full (ingress backpressure).  The
        stamp and the enqueue happen under one lock, so concurrent
        submitters always produce stamps that agree with queue order.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("sequencer is closed")
            item = SequencedEvent(seq=self._next_seq, event=event,
                                  conn_id=conn_id, tag=tag)
            self._next_seq += 1
            self._queue.put(item)  # may block: backpressure
        return item

    def close(self) -> None:
        """No more submissions; :meth:`take` returns ``None`` once the
        queue drains.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_CLOSED)

    def take(self) -> SequencedEvent | None:
        """Blocking: the next event in total order, or ``None`` once
        closed and fully drained."""
        if self._drained:
            return None
        item = self._queue.get()
        if item is _CLOSED:
            self._drained = True
            return None
        return item

    def try_take(self) -> SequencedEvent | None:
        """Non-blocking :meth:`take`: ``None`` when the queue is
        momentarily empty *or* fully drained (check :attr:`drained`
        to tell the two apart)."""
        if self._drained:
            return None
        try:
            item = self._queue.get_nowait()
        except queue.Empty:
            return None
        if item is _CLOSED:
            self._drained = True
            return None
        return item
