"""Network-native serving: the auction engine behind a real wire.

The package puts :class:`~repro.stream.service.OnlineAuctionService`
on a TCP port without giving up the property the whole repro stands
on — that a run's output is a pure function of (ordered event stream,
engine seed).  Concurrent clients produce no inherent order, so the
**ingress sequencer** (:mod:`repro.serve.sequencer`) manufactures
one: a total arrival order stamped under a lock, feeding the single
ordered stream the service, its write-ahead journal, micro-batcher,
and observability sidecar already consume.  A live run recorded with
``--record-events`` therefore replays bit-identically offline through
``repro stream --replay`` and ``tools/trace_diff.py``.

Modules
-------
:mod:`repro.serve.protocol`
    Length-prefixed JSON framing, the payload↔event mapping, the
    error taxonomy, and the reply builders.
:mod:`repro.serve.sequencer`
    The stamp-and-enqueue pinch point between reader tasks and the
    apply thread.
:mod:`repro.serve.server`
    The asyncio front end + single-threaded service consumer, with
    graceful SIGTERM drain and the ``serve-mid-frame`` chaos site.
:mod:`repro.serve.client`
    The blocking client the load generator and tests speak.

See ``docs/serving.md`` for the wire format and the sequencing
guarantee, and ``docs/operations.md`` for running the server under
load.
"""

from repro.serve.client import WireClient
from repro.serve.protocol import (
    MAX_FRAME,
    WIRE_FORMAT,
    ProtocolError,
    encode_frame,
    event_from_payload,
    event_to_payload,
    read_frame_blocking,
)
from repro.serve.sequencer import IngressSequencer, SequencedEvent
from repro.serve.server import (
    AuctionWireServer,
    ServeConfig,
    run_server,
)

__all__ = [
    "MAX_FRAME",
    "WIRE_FORMAT",
    "ProtocolError",
    "AuctionWireServer",
    "IngressSequencer",
    "SequencedEvent",
    "ServeConfig",
    "WireClient",
    "encode_frame",
    "event_from_payload",
    "event_to_payload",
    "read_frame_blocking",
    "run_server",
]
