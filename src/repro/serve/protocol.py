"""The wire protocol: length-prefixed JSON frames over a stream.

Everything a client exchanges with the serving front end
(:mod:`repro.serve.server`) is a **frame**: a 4-byte big-endian
unsigned length followed by exactly that many bytes of UTF-8 JSON
encoding one object.  Framing keeps the protocol trivially
self-synchronizing on a healthy connection — a reader always knows
where the next message starts — and makes "partial read" a detectable,
testable condition rather than a silent corruption: EOF between a
header and its body is a *truncated* frame, distinct from the clean
close that EOF at a frame boundary signals.

Client→server payloads::

    {"type": "hello", "role": "query"|"console", "name": ...}
    {"type": "event", "kind": "query"|"join"|"leave"|"update"|"topup",
     "tag": <any JSON value, echoed back>, ...event fields...}
    {"type": "bye"}

Server→client payloads::

    {"type": "welcome", "conn": <id>, "wire": "repro-serve-wire/1", ...}
    {"type": "hello-ok", "conn": <id>, "role": ...}
    {"type": "result", "tag": ..., "seq": ..., "record": {...}}   # query
    {"type": "ok", "tag": ..., "seq": ..., "kind": ...}           # control
    {"type": "error", "code": ..., "detail": ..., "tag": ...}
    {"type": "goodbye", "reason": ...}

``seq`` is the position the ingress sequencer stamped — the index the
event occupies in the recorded :class:`~repro.stream.events.EventLog`,
which is exactly the order an offline ``--replay`` of the recorded
trace will re-apply it in.

Error handling follows one rule: a *recoverable* malformation (bad
JSON in a well-framed body, an unknown type or kind, a field the event
constructor rejects) earns a structured ``error`` reply and the
connection lives on; an *unrecoverable* one (oversized length header,
EOF mid-frame) closes the connection, because the byte stream can no
longer be trusted to re-synchronize.  Neither ever reaches the
ingress sequencer, so a misbehaving client cannot perturb the
sequenced stream other clients are being recorded into.

The frame reader is instrumented with the ``serve-mid-frame`` crash
site (:mod:`repro.stream.crash`) between header and body — the chaos
tests kill the server while it holds half a message.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import asdict
from typing import Any, BinaryIO

from repro.auction.trace import record_to_dict
from repro.stream.crash import crash_hook
from repro.stream.events import (
    _EVENT_TYPES,
    SERVICE_ORIGINATED,
    Event,
    event_kind,
)

WIRE_FORMAT = "repro-serve-wire/1"
"""Protocol identity string, carried in every ``welcome`` frame."""

HEADER = struct.Struct(">I")
"""4-byte big-endian unsigned frame length (body bytes, not counting
the header itself)."""

MAX_FRAME = 1 << 20
"""Default ceiling on a frame body (1 MiB) — far above any legitimate
event payload; a larger header is treated as a protocol violation, not
an allocation request."""

INPUT_KINDS = tuple(sorted(
    kind for kind, cls in _EVENT_TYPES.items()
    if cls not in SERVICE_ORIGINATED))
"""Event kinds a client may submit (service-originated kinds are
outputs of the event loop and are rejected on the wire)."""


class ProtocolError(Exception):
    """A wire-protocol violation.

    ``code`` is the stable machine-readable taxonomy entry echoed in
    ``error`` replies; ``fatal`` marks violations after which the byte
    stream cannot re-synchronize (the server closes the connection
    instead of replying and carrying on).
    """

    def __init__(self, code: str, detail: str, *,
                 fatal: bool = False) -> None:
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail
        self.fatal = fatal


def encode_frame(payload: dict, *, max_frame: int = MAX_FRAME) -> bytes:
    """Serialize one payload object into a length-prefixed frame."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(body) > max_frame:
        raise ProtocolError(
            "oversized", f"frame body {len(body)} bytes exceeds "
            f"limit {max_frame}", fatal=True)
    return HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """Parse a frame body into a payload object.

    Raises :class:`ProtocolError` (recoverable) on malformed JSON or a
    non-object top level — the framing already told us where the next
    message starts, so the connection survives.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("malformed-json", str(exc)) from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            "not-an-object",
            f"frame body is {type(payload).__name__}, expected object")
    return payload


async def read_frame(reader: asyncio.StreamReader, *,
                     max_frame: int = MAX_FRAME) -> dict | None:
    """Read one frame from an asyncio stream (the server side).

    Returns ``None`` on a clean EOF at a frame boundary.  Raises a
    *fatal* :class:`ProtocolError` on an oversized header or an EOF
    mid-frame (truncated), and a recoverable one on a body that frames
    correctly but does not parse.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise ProtocolError(
            "truncated", f"EOF after {len(exc.partial)} header bytes",
            fatal=True) from exc
    (length,) = HEADER.unpack(header)
    if length > max_frame:
        raise ProtocolError(
            "oversized", f"declared frame length {length} exceeds "
            f"limit {max_frame}", fatal=True)
    crash_hook("serve-mid-frame")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            "truncated", f"EOF {len(exc.partial)}/{length} bytes into "
            "a frame body", fatal=True) from exc
    return decode_body(body)


def read_frame_blocking(stream: BinaryIO, *,
                        max_frame: int = MAX_FRAME) -> dict | None:
    """Blocking twin of :func:`read_frame` for synchronous clients."""
    header = stream.read(HEADER.size)
    if not header:
        return None
    if len(header) < HEADER.size:
        raise ProtocolError(
            "truncated", f"EOF after {len(header)} header bytes",
            fatal=True)
    (length,) = HEADER.unpack(header)
    if length > max_frame:
        raise ProtocolError(
            "oversized", f"declared frame length {length} exceeds "
            f"limit {max_frame}", fatal=True)
    body = b""
    while len(body) < length:
        chunk = stream.read(length - len(body))
        if not chunk:
            raise ProtocolError(
                "truncated", f"EOF {len(body)}/{length} bytes into "
                "a frame body", fatal=True)
        body += chunk
    return decode_body(body)


# -- event payloads --------------------------------------------------------

_TUPLE_FIELDS = ("bids", "maxbids", "values")


def event_to_payload(event: Event, *, tag: Any = None) -> dict:
    """Encode an event as a client→server ``event`` payload."""
    payload = {"type": "event", "kind": event_kind(event),
               **asdict(event)}
    if tag is not None:
        payload["tag"] = tag
    return payload


def event_from_payload(payload: dict) -> Event:
    """Decode an ``event`` payload into a stream event.

    Raises recoverable :class:`ProtocolError`\\ s for unknown kinds
    (including the service-originated ``paused``/``resumed``, which
    are outputs, not inputs) and for field sets the event constructor
    rejects.
    """
    kind = payload.get("kind")
    event_type = _EVENT_TYPES.get(kind) if isinstance(kind, str) else None
    if event_type is None or event_type in SERVICE_ORIGINATED:
        raise ProtocolError(
            "unknown-kind",
            f"event kind {kind!r} is not submittable; input kinds: "
            f"{', '.join(INPUT_KINDS)}")
    fields = {key: value for key, value in payload.items()
              if key not in ("type", "kind", "tag")}
    for key in _TUPLE_FIELDS:
        if key in fields:
            if not isinstance(fields[key], (list, tuple)):
                raise ProtocolError(
                    "bad-event", f"field {key!r} must be an array")
            fields[key] = tuple(fields[key])
    try:
        return event_type(**fields)
    except TypeError as exc:
        raise ProtocolError("bad-event", str(exc)) from exc


# -- server reply builders -------------------------------------------------

def welcome_payload(conn_id: int, *, methods: tuple[str, ...],
                    max_frame: int) -> dict:
    return {"type": "welcome", "conn": conn_id, "wire": WIRE_FORMAT,
            "kinds": list(INPUT_KINDS), "methods": list(methods),
            "max_frame": max_frame}


def hello_ok_payload(conn_id: int, role: str) -> dict:
    return {"type": "hello-ok", "conn": conn_id, "role": role}


def result_payload(tag: Any, seq: int, record) -> dict:
    """The auction outcome for a ``query`` event, routed to its
    submitter — the same dict :func:`repro.auction.trace.write_trace`
    persists, so a client can audit its replies against the server's
    recorded trace byte-for-byte."""
    return {"type": "result", "tag": tag, "seq": seq,
            "record": record_to_dict(record)}


def ok_payload(tag: Any, seq: int, kind: str) -> dict:
    """Acknowledgement for a sequenced-and-applied control event."""
    return {"type": "ok", "tag": tag, "seq": seq, "kind": kind}


def error_payload(code: str, detail: str, tag: Any = None) -> dict:
    return {"type": "error", "code": code, "detail": detail, "tag": tag}


def goodbye_payload(reason: str) -> dict:
    return {"type": "goodbye", "reason": reason}
