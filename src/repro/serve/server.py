"""The network front end: many concurrent connections, one ordered
stream.

:class:`AuctionWireServer` puts
:class:`~repro.stream.service.OnlineAuctionService` behind a real
wire.  The shape is two worlds bridged by the ingress sequencer:

* **The asyncio world** — an ``asyncio`` server with one reader task
  and one writer task per connection.  Readers parse length-prefixed
  JSON frames (:mod:`repro.serve.protocol`), answer protocol errors
  inline, and hand well-formed events to the sequencer through an
  executor (so a full ingress queue blocks *that connection's* reads
  — TCP backpressure — without stalling the event loop).  Writers
  drain a per-connection outbound queue, because multiple threads may
  route replies to the same connection and ``StreamWriter`` is not
  thread-safe.

* **The service world** — a single ``serve-apply`` thread consuming
  the sequencer's total order.  It validates each event against live
  service state (capacity, registry membership, keyword vocabulary,
  bid-program arity) *before* the event touches the journal or the
  recorded log: an invalid event earns a structured ``error`` reply
  and vanishes — it is never journaled, never recorded, never
  applied — so the recorded :class:`~repro.stream.events.EventLog` is
  exactly the applied stream and replays bit-identically offline
  (``repro stream --replay`` + ``tools/trace_diff.py``).  Valid
  events apply through the same :class:`OnlineAuctionService` /
  :class:`~repro.stream.service.DurableAuctionService` loops the
  offline CLI uses; replies (auction results for queries, acks for
  controls) route back to the originating connection via
  ``call_soon_threadsafe``.

With ``batch_window > 1`` the apply thread opportunistically coalesces
runs of already-queued query arrivals into
:meth:`~repro.stream.service.OnlineAuctionService.process_window`
dispatches — adaptive exactly like
:class:`~repro.stream.batching.MicroBatcher`: it never waits for a
window to fill, and control events flush it.

Graceful shutdown (SIGTERM/SIGINT or :meth:`AuctionWireServer
.shutdown`) runs the drain ladder: stop accepting → cancel readers →
close the sequencer → join the apply thread (every already-sequenced
event still applies and answers) → goodbye-and-flush every connection
→ write the recorded event log / trace / final checkpoint → close the
journal → exit 0.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import threading
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter

from repro.serve import protocol
from repro.serve.sequencer import IngressSequencer, SequencedEvent
from repro.stream.events import (
    AdvertiserJoin,
    AdvertiserLeave,
    BidProgramUpdate,
    BudgetTopUp,
    Event,
    EventLog,
    QueryArrival,
    event_kind,
)
from repro.stream.service import (
    SERVICE_METHODS,
    DurableAuctionService,
    OnlineAuctionService,
)
from repro.workloads.paper_workload import PaperWorkloadConfig


@dataclass
class ServeConfig:
    """Everything ``repro serve`` can tune, as one plain record."""

    host: str = "127.0.0.1"
    port: int = 0
    """0 = let the OS pick; the chosen port lands in ``port_file``."""
    advertisers: int = 200
    slots: int = 15
    keywords: int = 10
    seed: int = 0
    """Engine seed follows the CLI convention: ``seed + 1`` — an
    offline ``repro stream --replay --seed <same seed>`` rebuilds the
    identical engine."""
    method: str = "rh"
    maintenance: str = "incremental"
    workers: int = 0
    batch_window: int = 0
    ingress_capacity: int = 256
    max_frame: int = protocol.MAX_FRAME
    journal: str | None = None
    checkpoint_dir: str | None = None
    checkpoint_every: int = 0
    checkpoint_retain: int = 2
    record_events: str | None = None
    trace: str | None = None
    metrics_out: str | None = None
    trace_spans: str | None = None
    metrics_every: int = 100
    port_file: str | None = None


class _Connection:
    """Per-connection bookkeeping shared by the reader, the writer
    task, and the apply thread's reply routing."""

    __slots__ = ("conn_id", "writer", "outq", "open", "role",
                 "writer_task")

    def __init__(self, conn_id: int,
                 writer: asyncio.StreamWriter) -> None:
        self.conn_id = conn_id
        self.writer = writer
        self.outq: asyncio.Queue = asyncio.Queue()
        self.open = True
        self.role = "client"
        self.writer_task: asyncio.Task | None = None


def _numeric(value) -> bool:
    return isinstance(value, (int, float)) \
        and not isinstance(value, bool)


class AuctionWireServer:
    """A live auction service on a TCP port.  See the module
    docstring for the architecture; :meth:`run` is the blocking entry
    point the CLI and the test harnesses call."""

    def __init__(self, config: ServeConfig) -> None:
        if config.batch_window and config.batch_window < 2:
            raise ValueError("batch_window is a window size: 0/1 = "
                             "unbatched, >= 2 = coalesce")
        self.config = config
        self.workload_config = PaperWorkloadConfig(
            num_advertisers=config.advertisers,
            num_slots=config.slots, num_keywords=config.keywords,
            seed=config.seed)
        self.sequencer = IngressSequencer(config.ingress_capacity)
        self.applied = EventLog()
        """The stream the service actually consumed, in sequencer
        order — what ``record_events`` persists and what an offline
        replay re-applies bit-identically."""
        self.records: list = []
        self.latencies: list[float] = []
        """End-to-end seconds per applied event: sequencer stamp →
        reply enqueued toward the client."""
        self.port: int | None = None
        self.started = threading.Event()
        """Set once the socket is bound and the port is known."""
        self.frames = 0
        self.errors = 0
        self.rejected = 0
        self.connections_total = 0
        self._served = None  # OnlineAuctionService or durable wrapper
        self._service: OnlineAuctionService | None = None
        self._conns: dict[int, _Connection] = {}
        self._next_conn_id = 0
        self._reader_tasks: set = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_event: asyncio.Event | None = None
        self._shutdown_reason: str | None = None
        self._draining = False
        self._service_error: BaseException | None = None
        self._apply_thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> int:
        """Serve until shutdown; returns a process exit code."""
        asyncio.run(self._amain())
        if self._service_error is not None:
            print(f"serve: service loop failed: "
                  f"{self._service_error!r}")
            return 1
        reason = self._shutdown_reason or "requested"
        print(f"serve: {self.connections_total} connections, "
              f"{self.frames} frames, {len(self.applied)} events "
              f"applied ({len(self.records)} auctions), "
              f"{self.rejected} rejected, {self.errors} protocol "
              f"errors")
        print(f"serve: clean shutdown ({reason})")
        return 0

    def shutdown(self, reason: str = "requested") -> None:
        """Begin the graceful drain.  Thread-safe and idempotent —
        signal handlers, tests, and the apply thread all call this."""
        if self._shutdown_reason is None:
            self._shutdown_reason = reason
        loop, event = self._loop, self._shutdown_event
        if loop is None or event is None:
            return
        with contextlib.suppress(RuntimeError):
            loop.call_soon_threadsafe(event.set)

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        self._build_service()
        self._apply_thread = threading.Thread(
            target=self._apply_loop, name="serve-apply", daemon=True)
        self._apply_thread.start()
        server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port)
        self.port = server.sockets[0].getsockname()[1]
        if self.config.port_file:
            Path(self.config.port_file).write_text(
                f"{self.port}\n", encoding="utf-8")
        for signum in (signal.SIGTERM, signal.SIGINT):
            # Only available on the main thread; the in-process test
            # harness drives shutdown() directly instead.
            with contextlib.suppress(NotImplementedError,
                                     RuntimeError, ValueError):
                self._loop.add_signal_handler(
                    signum, self.shutdown, signal.Signals(signum).name)
        print(f"serve: listening on {self.config.host}:{self.port} "
              f"method={self.config.method} "
              f"workers={self.config.workers}", flush=True)
        self.started.set()
        try:
            await self._shutdown_event.wait()
        finally:
            await self._drain(server)

    async def _drain(self, server: asyncio.base_events.Server) -> None:
        """The shutdown ladder (see the module docstring)."""
        self._draining = True
        server.close()
        await server.wait_closed()
        for task in list(self._reader_tasks):
            task.cancel()
        if self._reader_tasks:
            await asyncio.gather(*self._reader_tasks,
                                 return_exceptions=True)
        self.sequencer.close()
        if self._apply_thread is not None:
            await self._loop.run_in_executor(
                None, self._apply_thread.join)
        # The apply thread's last replies were posted through
        # call_soon_threadsafe before join() returned; yield once so
        # they land in the outbound queues ahead of the goodbyes.
        await asyncio.sleep(0)
        reason = self._shutdown_reason or "shutdown"
        for conn in list(self._conns.values()):
            await self._close_conn(conn, reason=reason)
        self._finalize()

    def _finalize(self) -> None:
        """Persist run artifacts and close the service stack."""
        from repro.auction.trace import write_trace

        config = self.config
        if config.record_events:
            self.applied.to_jsonl(config.record_events)
            print(f"event log written to {config.record_events}",
                  flush=True)
        if config.trace:
            count = write_trace(config.trace, self.records)
            print(f"wrote {count} records to {config.trace}",
                  flush=True)
        served = self._served
        if isinstance(served, DurableAuctionService):
            if served.checkpoints is not None:
                # The drain contract: a final checkpoint at the exact
                # applied watermark, whether or not the interval is
                # due — recovery then needs no journal-suffix replay.
                path = served.checkpoints.write(served.snapshot())
                print(f"final checkpoint written to {path}",
                      flush=True)
            print(f"journal closed at {served.events_processed} "
                  f"events", flush=True)
        if served is not None:
            served.close()

    # -- service construction + the apply thread ---------------------------

    def _build_service(self) -> None:
        config = self.config
        observability = None
        if config.metrics_out or config.trace_spans:
            from repro.obs import ObservabilityConfig

            observability = ObservabilityConfig(
                metrics_out=config.metrics_out,
                trace_spans=config.trace_spans,
                snapshot_every=config.metrics_every)
        if config.journal:
            self._served = DurableAuctionService.open(
                self.workload_config, config.journal,
                method=config.method,
                maintenance=config.maintenance,
                workers=config.workers,
                engine_seed=config.seed + 1,
                checkpoint_dir=config.checkpoint_dir,
                checkpoint_every=config.checkpoint_every,
                checkpoint_retain=config.checkpoint_retain,
                observability=observability)
            self._service = self._served.service
        else:
            self._service = OnlineAuctionService(
                self.workload_config, method=config.method,
                maintenance=config.maintenance,
                workers=config.workers,
                engine_seed=config.seed + 1,
                observability=observability)
            self._served = self._service
        self._keywords = set(self._service.keywords)
        # Sharded workers normally fork lazily on the first query —
        # which would be after clients connected, so every child would
        # inherit dups of the accepted sockets and the server's close()
        # could never deliver EOF.  Spawn the fleet now, while the
        # process holds no connection descriptors.
        runtime = getattr(self._service.backend, "runtime", None)
        if runtime is not None:
            runtime.start()

    def _count(self, name: str, amount: int = 1) -> None:
        metrics = self._service.metrics if self._service else None
        if metrics is not None:
            metrics.counter(name).inc(amount)

    def _apply_loop(self) -> None:
        """The single service consumer: take events in total order,
        validate, apply, reply.  Runs on the ``serve-apply`` thread —
        the only thread that ever touches the service."""
        window = max(self.config.batch_window, 1)
        carry: SequencedEvent | None = None
        try:
            while True:
                item = carry if carry is not None \
                    else self.sequencer.take()
                carry = None
                if item is None:
                    break
                if not self._admit(item):
                    continue
                if window > 1 and isinstance(item.event, QueryArrival):
                    batch = [item]
                    while len(batch) < window:
                        nxt = self.sequencer.try_take()
                        if nxt is None:
                            break  # empty or closed: dispatch now
                        if not isinstance(nxt.event, QueryArrival):
                            carry = nxt  # control flushes the window
                            break
                        if self._admit(nxt):
                            batch.append(nxt)
                    self._apply_window(batch)
                else:
                    self._apply_one(item)
        except BaseException as exc:  # the drain must still run
            self._service_error = exc
            self.shutdown("service-error")

    def _admit(self, item: SequencedEvent) -> bool:
        """Validate against live service state; reply-and-drop
        invalid events before they can reach the journal or the
        recorded stream."""
        detail = self._validation_error(item.event)
        if detail is None:
            return True
        self.rejected += 1
        self._count("serve.rejected")
        self._post(item.conn_id, protocol.error_payload(
            "rejected", detail, item.tag))
        return False

    def _validation_error(self, event: Event) -> str | None:
        """Why ``event`` cannot be applied right now (``None`` = it
        can).  Mirrors the service's own raise conditions plus basic
        payload hygiene, evaluated in stamp order on the apply thread
        so the answer is deterministic."""
        service = self._service
        if isinstance(event, QueryArrival):
            if not isinstance(event.keyword, str) \
                    or event.keyword not in self._keywords:
                return f"unknown keyword {event.keyword!r}"
            return None
        advertiser = getattr(event, "advertiser", None)
        if not isinstance(advertiser, int) \
                or isinstance(advertiser, bool):
            return "advertiser must be an integer id"
        if isinstance(event, AdvertiserJoin):
            capacity = self.workload_config.num_advertisers
            if not 0 <= advertiser < capacity:
                return (f"advertiser {advertiser} outside universe "
                        f"0..{capacity - 1}")
            if advertiser in service.registry:
                return f"advertiser {advertiser} already active"
            if not _numeric(event.target) \
                    or not _numeric(event.budget):
                return "target and budget must be numbers"
            arity = len(self._keywords)
            for name in ("bids", "maxbids", "values"):
                column = getattr(event, name)
                if len(column) != arity:
                    return (f"{name} must list {arity} values "
                            f"(one per keyword), got {len(column)}")
                if not all(_numeric(value) for value in column):
                    return f"{name} must be all numbers"
            return None
        if advertiser not in service.registry:
            return f"advertiser {advertiser} is not active"
        if isinstance(event, AdvertiserLeave):
            return None
        if isinstance(event, BidProgramUpdate):
            if not isinstance(event.keyword, str) \
                    or event.keyword not in self._keywords:
                return f"unknown keyword {event.keyword!r}"
            if not _numeric(event.bid) or not _numeric(event.maxbid):
                return "bid and maxbid must be numbers"
            return None
        if isinstance(event, BudgetTopUp):
            if not _numeric(event.amount):
                return "amount must be a number"
            return None
        return f"unsupported event {type(event).__name__}"

    def _apply_one(self, item: SequencedEvent) -> None:
        record = self._served.process(item.event)
        self.applied.append(item.event)
        seq = self._service.events_processed - 1
        if record is not None:
            self.records.append(record)
            reply = protocol.result_payload(item.tag, seq, record)
        else:
            reply = protocol.ok_payload(item.tag, seq,
                                        event_kind(item.event))
        self._reply(item, reply)

    def _apply_window(self, batch: list[SequencedEvent]) -> None:
        events = [item.event for item in batch]
        records = self._served.process_window(events)
        base = self._service.events_processed - len(batch)
        for offset, (item, record) in enumerate(zip(batch, records)):
            self.applied.append(item.event)
            self.records.append(record)
            self._reply(item, protocol.result_payload(
                item.tag, base + offset, record))

    def _reply(self, item: SequencedEvent, payload: dict) -> None:
        elapsed = perf_counter() - item.arrival
        self.latencies.append(elapsed)
        metrics = self._service.metrics
        if metrics is not None:
            metrics.counter("serve.applied").inc()
            metrics.histogram("latency.serve_e2e").observe(elapsed)
        self._post(item.conn_id, payload)

    def _post(self, conn_id: int, payload: dict) -> None:
        """Route a reply to a connection from the apply thread."""
        conn = self._conns.get(conn_id)
        if conn is None:
            return  # client disconnected before its reply
        data = protocol.encode_frame(payload)
        with contextlib.suppress(RuntimeError):  # loop already closed
            self._loop.call_soon_threadsafe(self._offer, conn, data)

    def _offer(self, conn: _Connection, data: bytes) -> None:
        if conn.open:
            conn.outq.put_nowait(data)

    # -- the asyncio side --------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        if self._draining:
            writer.close()
            return
        self._next_conn_id += 1
        conn = _Connection(self._next_conn_id, writer)
        self._conns[conn.conn_id] = conn
        self.connections_total += 1
        self._count("serve.connections.opened")
        conn.writer_task = asyncio.ensure_future(
            self._write_loop(conn))
        self._offer(conn, protocol.encode_frame(
            protocol.welcome_payload(
                conn.conn_id, methods=tuple(SERVICE_METHODS),
                max_frame=self.config.max_frame)))
        task = asyncio.current_task()
        self._reader_tasks.add(task)
        try:
            await self._read_loop(conn, reader)
        except asyncio.CancelledError:
            return  # drain owns the goodbye + close from here
        finally:
            self._reader_tasks.discard(task)
        await self._close_conn(conn, reason="bye")

    async def _read_loop(self, conn: _Connection,
                         reader: asyncio.StreamReader) -> None:
        while True:
            try:
                payload = await protocol.read_frame(
                    reader, max_frame=self.config.max_frame)
            except protocol.ProtocolError as error:
                self.errors += 1
                self._count(f"serve.errors.{error.code}")
                self._offer(conn, protocol.encode_frame(
                    protocol.error_payload(error.code, error.detail)))
                if error.fatal:
                    return  # the byte stream cannot re-synchronize
                continue
            except ConnectionError:
                return
            if payload is None:
                return  # clean close at a frame boundary
            self.frames += 1
            if not await self._dispatch(conn, payload):
                return

    async def _dispatch(self, conn: _Connection,
                        payload: dict) -> bool:
        """Handle one well-framed payload; False ends the read loop."""
        ptype = payload.get("type")
        if ptype == "event":
            tag = payload.get("tag")
            try:
                event = protocol.event_from_payload(payload)
            except protocol.ProtocolError as error:
                self.errors += 1
                self._count(f"serve.errors.{error.code}")
                self._offer(conn, protocol.encode_frame(
                    protocol.error_payload(error.code, error.detail,
                                           tag)))
                return True
            try:
                # Blocking bounded-queue put off the event loop: a
                # full ingress queue stalls this connection's reads
                # (TCP backpressure), never the other connections.
                await self._loop.run_in_executor(
                    None, lambda: self.sequencer.submit(
                        event, conn_id=conn.conn_id, tag=tag))
            except RuntimeError:
                return False  # sequencer closed: drain has begun
            return True
        if ptype == "hello":
            role = payload.get("role")
            conn.role = role if isinstance(role, str) else "client"
            self._offer(conn, protocol.encode_frame(
                protocol.hello_ok_payload(conn.conn_id, conn.role)))
            return True
        if ptype == "bye":
            return False
        self.errors += 1
        self._count("serve.errors.unknown-type")
        self._offer(conn, protocol.encode_frame(protocol.error_payload(
            "unknown-type", f"unsupported frame type {ptype!r}",
            payload.get("tag"))))
        return True

    async def _write_loop(self, conn: _Connection) -> None:
        try:
            while True:
                data = await conn.outq.get()
                if data is None:
                    break
                conn.writer.write(data)
                await conn.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            conn.open = False
            with contextlib.suppress(Exception):
                conn.writer.close()
                await conn.writer.wait_closed()

    async def _close_conn(self, conn: _Connection,
                          reason: str) -> None:
        if self._conns.pop(conn.conn_id, None) is None:
            return  # already closed
        self._count("serve.connections.closed")
        self._offer(conn, protocol.encode_frame(
            protocol.goodbye_payload(reason)))
        conn.open = False
        conn.outq.put_nowait(None)  # flush sentinel, after goodbye
        if conn.writer_task is not None:
            with contextlib.suppress(Exception):
                await asyncio.wait_for(conn.writer_task, timeout=5)


def run_server(config: ServeConfig) -> int:
    """Build and run a server; the ``repro serve`` entry point."""
    return AuctionWireServer(config).run()
