"""A synchronous wire client: what load generators and tests speak.

:class:`WireClient` is deliberately dumb — a socket, the
length-prefixed framing from :mod:`repro.serve.protocol`, and a
round-trip discipline (send one ``event`` frame, read frames until
the reply that echoes its tag arrives).  Sequential round-trips per
connection are exactly what the ingress sequencer's per-connection
FIFO guarantee is built on; concurrency comes from running many
clients, not from pipelining one.

``send_raw`` exists for the conformance tests: it writes arbitrary
bytes — half a frame, an oversized header, garbage JSON — so the
protocol suite can prove the server answers malformed input with
structured errors (or a clean close) without perturbing the
sequenced stream.
"""

from __future__ import annotations

import contextlib
import socket
from typing import Any

from repro.serve import protocol
from repro.stream.events import Event


class WireClient:
    """One blocking connection to an :class:`~repro.serve.server
    .AuctionWireServer`."""

    def __init__(self, host: str, port: int, *,
                 timeout: float = 30.0,
                 max_frame: int = protocol.MAX_FRAME) -> None:
        self.sock = socket.create_connection((host, port),
                                             timeout=timeout)
        self.stream = self.sock.makefile("rb")
        self.max_frame = max_frame
        self._tag = 0
        self.welcome = self.read_frame()
        """The server's ``welcome`` payload, consumed at connect."""

    # -- frame level -------------------------------------------------------

    def send_payload(self, payload: dict) -> None:
        self.sock.sendall(protocol.encode_frame(
            payload, max_frame=self.max_frame))

    def send_raw(self, data: bytes) -> None:
        """Write arbitrary bytes (conformance tests only)."""
        self.sock.sendall(data)

    def read_frame(self) -> dict | None:
        """The next server frame (``None`` on a clean close)."""
        return protocol.read_frame_blocking(self.stream,
                                            max_frame=self.max_frame)

    # -- protocol level ----------------------------------------------------

    def hello(self, role: str, name: str | None = None) -> dict:
        payload: dict = {"type": "hello", "role": role}
        if name is not None:
            payload["name"] = name
        self.send_payload(payload)
        return self._await_type(("hello-ok",))

    def submit(self, event: Event, *, tag: Any = None) -> dict:
        """Round-trip one stream event: returns the ``result`` /
        ``ok`` / ``error`` reply bearing this submission's tag."""
        if tag is None:
            self._tag += 1
            tag = self._tag
        self.send_payload(protocol.event_to_payload(event, tag=tag))
        while True:
            reply = self.read_frame()
            if reply is None:
                raise ConnectionError(
                    "server closed before replying")
            if reply.get("type") in ("result", "ok", "error") \
                    and reply.get("tag") == tag:
                return reply

    def submit_payload(self, payload: dict, *, tag: Any) -> dict:
        """Round-trip a hand-built ``event`` payload (tests use this
        to probe validation); waits for the tagged reply."""
        payload = {**payload, "tag": tag}
        self.send_payload(payload)
        while True:
            reply = self.read_frame()
            if reply is None:
                raise ConnectionError("server closed before replying")
            if reply.get("tag") == tag:
                return reply

    def _await_type(self, types: tuple[str, ...]) -> dict:
        while True:
            reply = self.read_frame()
            if reply is None:
                raise ConnectionError("server closed before replying")
            if reply.get("type") in types:
                return reply

    # -- lifecycle ---------------------------------------------------------

    def bye(self) -> dict | None:
        """Polite close: send ``bye``, read to the ``goodbye``.

        Stops at the goodbye frame rather than waiting for EOF — the
        server tears the connection down right after sending it, and a
        respawned shard worker may briefly hold an inherited dup of
        the socket that would delay the FIN.
        """
        self.send_payload({"type": "bye"})
        while True:
            frame = self.read_frame()
            if frame is None or frame.get("type") == "goodbye":
                return frame

    def close(self) -> None:
        with contextlib.suppress(OSError):
            self.stream.close()
        with contextlib.suppress(OSError):
            self.sock.close()

    def __enter__(self) -> "WireClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
