"""Abstract syntax tree of the sqlmini dialect.

Plain frozen dataclasses; the parser builds them, the executor walks
them.  Expressions and statements are separate hierarchies rooted at
:class:`Expr` and :class:`Statement`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Expr:
    """Base class of expression nodes."""


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: number, string, boolean, or NULL (value ``None``)."""

    value: object


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly-qualified name: ``roi`` or ``K.roi``.

    Unqualified names resolve through the scope chain (innermost row
    first, then enclosing rows, then program variables).
    """

    name: str
    qualifier: str | None = None

    def display(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name


@dataclass(frozen=True)
class Unary(Expr):
    """Unary operator: ``-`` or ``NOT``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    """Binary operator: arithmetic, comparison, AND/OR."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class FuncCall(Expr):
    """A function or aggregate call: ``MAX(K.roi)``, ``COUNT(*)``.

    ``star`` marks ``COUNT(*)``; in that case ``args`` is empty.
    """

    name: str
    args: tuple[Expr, ...]
    star: bool = False


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    """A parenthesised SELECT used as a scalar value."""

    select: "Select"


class Statement:
    """Base class of statement nodes."""


@dataclass(frozen=True)
class ColumnDef:
    """One column of a CREATE TABLE: name and declared type."""

    name: str
    type_name: str  # "INT", "REAL", "TEXT", "BOOL"


@dataclass(frozen=True)
class CreateTable(Statement):
    table: str
    columns: tuple[ColumnDef, ...]


@dataclass(frozen=True)
class CreateTrigger(Statement):
    """``CREATE TRIGGER name AFTER INSERT ON table { body }``."""

    name: str
    table: str
    body: tuple[Statement, ...]


@dataclass(frozen=True)
class Insert(Statement):
    """``INSERT INTO t [cols] VALUES ...`` or ``INSERT INTO t SELECT ...``.

    Exactly one of ``values`` (non-empty) and ``select`` is used.
    """

    table: str
    columns: tuple[str, ...] | None  # None = positional
    values: tuple[tuple[Expr, ...], ...] = ()  # one tuple per row
    select: "Select | None" = None


@dataclass(frozen=True)
class Assignment:
    """One ``column = expr`` of an UPDATE's SET list."""

    column: str
    value: Expr


@dataclass(frozen=True)
class Update(Statement):
    table: str
    assignments: tuple[Assignment, ...]
    where: Expr | None = None


@dataclass(frozen=True)
class Delete(Statement):
    table: str
    where: Expr | None = None


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class SelectItem:
    """One projection: expression plus optional alias; star marks ``*``."""

    expr: Expr | None
    alias: str | None = None
    star: bool = False


@dataclass(frozen=True)
class Select(Statement):
    """Single-table SELECT with optional WHERE / GROUP BY / HAVING /
    ORDER BY / LIMIT.

    Aggregation comes in two forms: whole-table (any projection contains
    an aggregate, no GROUP BY — a single result row) and grouped (one
    result row per distinct GROUP BY key; non-aggregate projections must
    be group-by expressions).
    """

    items: tuple[SelectItem, ...]
    table: str | None = None
    alias: str | None = None
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False


@dataclass(frozen=True)
class IfBranch:
    condition: Expr
    body: tuple[Statement, ...]


@dataclass(frozen=True)
class If(Statement):
    """``IF ... THEN ... [ELSEIF ... THEN ...]* [ELSE ...] ENDIF``."""

    branches: tuple[IfBranch, ...]
    else_body: tuple[Statement, ...] = ()


@dataclass(frozen=True)
class Script(Statement):
    """A sequence of statements (a parsed source file or trigger body)."""

    statements: tuple[Statement, ...] = field(default_factory=tuple)
