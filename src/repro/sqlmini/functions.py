"""Aggregate and scalar functions of the sqlmini dialect.

Aggregates: ``MAX``, ``MIN``, ``SUM``, ``AVG``, ``COUNT``.  NULL inputs
are skipped, as in standard SQL.  One deliberate divergence, documented
in DESIGN.md: ``SUM`` over the empty set is **0**, not NULL — Figure 6 of
the paper shows the ROI program writing a value of 0 for a formula whose
relevant-keyword set is empty, which requires this convention.

Scalars: ``ABS``, ``ROUND``, ``COALESCE``, ``LEAST``, ``GREATEST`` — the
small toolkit realistic bidding programs (budget clamping, bid capping)
need.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.sqlmini.errors import SqlNameError, SqlRuntimeError, SqlTypeError

Value = object

AGGREGATE_NAMES = frozenset({"MAX", "MIN", "SUM", "AVG", "COUNT"})


def is_aggregate(name: str) -> bool:
    return name.upper() in AGGREGATE_NAMES


def evaluate_aggregate(name: str, values: Sequence[Value],
                       count_star: bool = False) -> Value:
    """Apply an aggregate to the (already-evaluated) input column.

    ``count_star`` marks ``COUNT(*)``: rows are counted whether or not
    their value is NULL.
    """
    name = name.upper()
    if name == "COUNT":
        if count_star:
            return len(values)
        return sum(1 for value in values if value is not None)
    non_null = [value for value in values if value is not None]
    if name == "SUM":
        return _numeric_sum(non_null) if non_null else 0
    if not non_null:
        return None
    if name == "MAX":
        return max(non_null)
    if name == "MIN":
        return min(non_null)
    if name == "AVG":
        return _numeric_sum(non_null) / len(non_null)
    raise SqlNameError(f"unknown aggregate {name!r}")


def _numeric_sum(values: Sequence[Value]) -> Value:
    total: float | int = 0
    for value in values:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SqlTypeError(f"cannot sum non-numeric value {value!r}")
        total = total + value
    return total


def _scalar_abs(args: Sequence[Value]) -> Value:
    _arity("ABS", args, 1)
    if args[0] is None:
        return None
    _require_number("ABS", args[0])
    return abs(args[0])


def _scalar_round(args: Sequence[Value]) -> Value:
    if len(args) not in (1, 2):
        raise SqlRuntimeError("ROUND takes 1 or 2 arguments")
    if args[0] is None:
        return None
    _require_number("ROUND", args[0])
    digits = 0
    if len(args) == 2:
        _require_number("ROUND", args[1])
        digits = int(args[1])
    return round(float(args[0]), digits)


def _scalar_coalesce(args: Sequence[Value]) -> Value:
    if not args:
        raise SqlRuntimeError("COALESCE needs at least one argument")
    for value in args:
        if value is not None:
            return value
    return None


def _scalar_least(args: Sequence[Value]) -> Value:
    return _extreme("LEAST", args, min)


def _scalar_greatest(args: Sequence[Value]) -> Value:
    return _extreme("GREATEST", args, max)


def _extreme(name: str, args: Sequence[Value],
             pick: Callable[..., Value]) -> Value:
    if not args:
        raise SqlRuntimeError(f"{name} needs at least one argument")
    if any(value is None for value in args):
        return None
    return pick(args)


SCALAR_FUNCTIONS: dict[str, Callable[[Sequence[Value]], Value]] = {
    "ABS": _scalar_abs,
    "ROUND": _scalar_round,
    "COALESCE": _scalar_coalesce,
    "LEAST": _scalar_least,
    "GREATEST": _scalar_greatest,
}


def evaluate_scalar_function(name: str, args: Sequence[Value]) -> Value:
    """Apply a scalar function by name (case-insensitive)."""
    function = SCALAR_FUNCTIONS.get(name.upper())
    if function is None:
        raise SqlNameError(f"unknown function {name!r}")
    return function(args)


def _arity(name: str, args: Sequence[Value], expected: int) -> None:
    if len(args) != expected:
        raise SqlRuntimeError(
            f"{name} takes {expected} argument(s), got {len(args)}")


def _require_number(name: str, value: Value) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise SqlTypeError(f"{name} requires a numeric argument, "
                           f"got {value!r}")
