"""Expression evaluation and statement execution for sqlmini.

Semantics notes (the fragment is small; the corners are spelled out):

* **Scopes.** Names resolve through a chain: the innermost row frame
  first (e.g. the subquery's alias), then enclosing row frames (enabling
  correlated subqueries like ``K.formula = Bids.formula`` in Figure 5),
  then the program's scalar variables (``amtSpent``, ``time``, ...).
* **NULL.** Arithmetic with NULL yields NULL; comparisons with NULL yield
  NULL; AND/OR/NOT follow Kleene three-valued logic; WHERE and IF treat
  anything but TRUE as not-satisfied.
* **Snapshot updates.** UPDATE evaluates every affected row's new values
  against the pre-statement table state, so self-referential statements
  like ``SET bid = bid + 1 WHERE roi = (SELECT MAX(K.roi) FROM
  Keywords K)`` behave deterministically.
* **Division by zero** raises :class:`SqlRuntimeError` — bidding
  programs are expected to guard their denominators (the auction engine
  starts the clock at 1 for exactly this reason).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.sqlmini import ast
from repro.sqlmini.errors import (
    SqlNameError,
    SqlRuntimeError,
    SqlTypeError,
)
from repro.sqlmini.functions import (
    evaluate_aggregate,
    evaluate_scalar_function,
    is_aggregate,
)
from repro.sqlmini.table import Table, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.sqlmini.database import Database


@dataclass(frozen=True)
class Frame:
    """One row visible under a set of names (table name and/or alias)."""

    names: frozenset[str]
    row: Mapping[str, Value]


@dataclass
class Scope:
    """A chain of row frames plus the program's scalar variables."""

    frames: tuple[Frame, ...] = ()
    variables: Mapping[str, Value] = field(default_factory=dict)

    def child(self, names: frozenset[str], row: Mapping[str, Value]) -> "Scope":
        """A new scope with ``row`` as the innermost frame."""
        return Scope(frames=(Frame(names, row),) + self.frames,
                     variables=self.variables)

    def resolve(self, name: str, qualifier: str | None) -> Value:
        key = name.lower()
        if qualifier is not None:
            qualifier_key = qualifier.lower()
            for frame in self.frames:
                if qualifier_key in frame.names:
                    if key in frame.row:
                        return frame.row[key]
                    raise SqlNameError(
                        f"{qualifier}.{name}: no column {name!r}")
            raise SqlNameError(f"unknown table or alias {qualifier!r}")
        for frame in self.frames:
            if key in frame.row:
                return frame.row[key]
        if key in self.variables:
            return self.variables[key]
        raise SqlNameError(f"cannot resolve name {name!r}")


@dataclass(frozen=True)
class SelectResult:
    """Rows produced by a SELECT, with projection column names."""

    columns: tuple[str, ...]
    rows: tuple[tuple[Value, ...], ...]

    def scalar(self) -> Value:
        """The single value of a 1x1 result (scalar-subquery contract)."""
        if len(self.rows) > 1:
            raise SqlRuntimeError(
                f"scalar subquery returned {len(self.rows)} rows")
        if len(self.columns) != 1:
            raise SqlRuntimeError(
                f"scalar subquery returned {len(self.columns)} columns")
        if not self.rows:
            return None
        return self.rows[0][0]

    def single_column(self) -> list[Value]:
        """All values of a one-column result."""
        if len(self.columns) != 1:
            raise SqlRuntimeError(
                f"expected one column, got {len(self.columns)}")
        return [row[0] for row in self.rows]


class Executor:
    """Walks statement/expression ASTs against a database."""

    MAX_TRIGGER_DEPTH = 16

    def __init__(self, database: "Database"):
        self.database = database
        self._trigger_depth = 0

    # -- statements ---------------------------------------------------------

    def execute(self, statement: ast.Statement, scope: Scope):
        """Execute one statement; returns a :class:`SelectResult` for
        SELECT, an affected-row count for DML, ``None`` for DDL/IF."""
        if isinstance(statement, ast.Script):
            result = None
            for child in statement.statements:
                result = self.execute(child, scope)
            return result
        if isinstance(statement, ast.CreateTable):
            self.database.create_table_from_ast(statement)
            return None
        if isinstance(statement, ast.CreateTrigger):
            self.database.register_trigger(statement)
            return None
        if isinstance(statement, ast.Insert):
            return self._insert(statement, scope)
        if isinstance(statement, ast.Update):
            return self._update(statement, scope)
        if isinstance(statement, ast.Delete):
            return self._delete(statement, scope)
        if isinstance(statement, ast.Select):
            return self._select(statement, scope)
        if isinstance(statement, ast.If):
            return self._if(statement, scope)
        raise SqlRuntimeError(
            f"cannot execute {type(statement).__name__}")

    def _insert(self, statement: ast.Insert, scope: Scope) -> int:
        table = self.database.table(statement.table)
        inserted = []
        if statement.select is not None:
            result = self._select(statement.select, scope)
            for row in result.rows:
                inserted.append(table.insert(list(row),
                                             statement.columns))
        else:
            for value_tuple in statement.values:
                values = [self.eval(expr, scope) for expr in value_tuple]
                inserted.append(table.insert(values, statement.columns))
        for row in inserted:
            self._fire_triggers(table, row, scope)
        return len(inserted)

    def _fire_triggers(self, table: Table, row: Mapping[str, Value],
                       scope: Scope) -> None:
        triggers = self.database.triggers_for(table.name)
        if not triggers:
            return
        if self._trigger_depth >= self.MAX_TRIGGER_DEPTH:
            raise SqlRuntimeError(
                f"trigger recursion deeper than {self.MAX_TRIGGER_DEPTH}")
        self._trigger_depth += 1
        try:
            for trigger in triggers:
                trigger_scope = scope.child(frozenset({"new"}), row)
                for child in trigger.body:
                    self.execute(child, trigger_scope)
        finally:
            self._trigger_depth -= 1

    def _update(self, statement: ast.Update, scope: Scope) -> int:
        table = self.database.table(statement.table)
        names = frozenset({table.name.lower()})
        # Snapshot semantics: decide matches and new values first.
        pending: list[tuple[dict[str, Value], dict[str, Value]]] = []
        for row in table.rows:
            row_scope = scope.child(names, row)
            if statement.where is not None:
                if self.eval(statement.where, row_scope) is not True:
                    continue
            new_values = {}
            for assignment in statement.assignments:
                column = table.schema.column(assignment.column)
                value = self.eval(assignment.value, row_scope)
                new_values[column.key] = column.coerce(value)
            pending.append((row, new_values))
        for row, new_values in pending:
            row.update(new_values)
        return len(pending)

    def _delete(self, statement: ast.Delete, scope: Scope) -> int:
        table = self.database.table(statement.table)
        names = frozenset({table.name.lower()})
        kept = []
        removed = 0
        for row in table.rows:
            row_scope = scope.child(names, row)
            matches = (statement.where is None
                       or self.eval(statement.where, row_scope) is True)
            if matches:
                removed += 1
            else:
                kept.append(row)
        table.rows[:] = kept
        return removed

    def _if(self, statement: ast.If, scope: Scope) -> None:
        for branch in statement.branches:
            if self.eval(branch.condition, scope) is True:
                for child in branch.body:
                    self.execute(child, scope)
                return
        for child in statement.else_body:
            self.execute(child, scope)

    # -- SELECT ---------------------------------------------------------------

    def _select(self, statement: ast.Select, scope: Scope) -> SelectResult:
        if statement.table is None:
            scopes = [scope]
        else:
            table = self.database.table(statement.table)
            names = {table.name.lower()}
            if statement.alias:
                names = {statement.alias.lower()}
            frozen = frozenset(names)
            scopes = [scope.child(frozen, row) for row in table.rows]

        if statement.where is not None:
            scopes = [row_scope for row_scope in scopes
                      if self.eval(statement.where, row_scope) is True]

        if statement.group_by:
            return self._select_grouped(statement, scopes)

        has_aggregate = any(
            item.expr is not None and _contains_aggregate(item.expr)
            for item in statement.items)
        if has_aggregate:
            return self._select_aggregate(statement, scopes)

        columns = self._projection_names(statement)
        ordered_scopes = self._order_scopes(statement, scopes)
        rows = []
        for row_scope in ordered_scopes:
            rows.append(tuple(self._project(item, row_scope)
                              for item in statement.items))
        rows = _flatten_star(statement, rows)
        if statement.distinct:
            rows = _distinct(rows)
        if statement.limit is not None:
            rows = rows[:statement.limit]
        return SelectResult(columns=columns, rows=tuple(rows))

    def _select_grouped(self, statement: ast.Select,
                        scopes: list[Scope]) -> SelectResult:
        """GROUP BY execution: one result row per distinct key tuple.

        Non-aggregate (sub)expressions in projections, HAVING, and ORDER
        BY must be group-by expressions (matched structurally); rows
        within a group supply aggregates, the group's first row supplies
        the key values.  Groups appear in first-occurrence order unless
        ORDER BY says otherwise.
        """
        group_by = statement.group_by
        groups: dict[tuple, list[Scope]] = {}
        for row_scope in scopes:
            key = tuple(_group_key_part(self.eval(expr, row_scope))
                        for expr in group_by)
            groups.setdefault(key, []).append(row_scope)

        names = []
        for index, item in enumerate(statement.items):
            if item.star or item.expr is None:
                raise SqlRuntimeError("SELECT * is not allowed with "
                                      "GROUP BY")
            names.append(item.alias or _default_name(item.expr, index))

        produced: list[tuple[tuple, list[Scope]]] = []
        for key, members in groups.items():
            if statement.having is not None:
                verdict = self._eval_grouped(statement.having, members,
                                             group_by)
                if verdict is not True:
                    continue
            row = tuple(self._eval_grouped(item.expr, members, group_by)
                        for item in statement.items)
            produced.append((row, members))

        if statement.order_by:
            def sort_key(entry):
                row, members = entry
                keys = []
                for order in statement.order_by:
                    value = self._eval_grouped(order.expr, members,
                                               group_by)
                    keys.append(_OrderKey(value, order.descending))
                return tuple(keys)

            produced.sort(key=sort_key)

        rows = [row for row, _ in produced]
        if statement.distinct:
            rows = _distinct(rows)
        if statement.limit is not None:
            rows = rows[:statement.limit]
        return SelectResult(columns=tuple(names), rows=tuple(rows))

    def _eval_grouped(self, expr: ast.Expr, members: list[Scope],
                      group_by: tuple[ast.Expr, ...]) -> Value:
        """Evaluate an expression in grouped context.

        Group-by expressions resolve against the group's first row;
        aggregates fold over all member rows; anything else recurses.
        """
        if expr in group_by:
            return self.eval(expr, members[0])
        if isinstance(expr, ast.FuncCall) and is_aggregate(expr.name):
            if expr.star:
                return evaluate_aggregate(expr.name,
                                          [None] * len(members),
                                          count_star=True)
            if len(expr.args) != 1:
                raise SqlRuntimeError(
                    f"{expr.name} takes exactly one argument")
            column = [self.eval(expr.args[0], member)
                      for member in members]
            return evaluate_aggregate(expr.name, column)
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.Unary):
            return _apply_unary(expr.op,
                                self._eval_grouped(expr.operand, members,
                                                   group_by))
        if isinstance(expr, ast.Binary):
            left = self._eval_grouped(expr.left, members, group_by)
            right = self._eval_grouped(expr.right, members, group_by)
            return _apply_binary(expr.op, left, right)
        if isinstance(expr, ast.ColumnRef):
            raise SqlRuntimeError(
                f"column {expr.display()!r} is neither aggregated nor in "
                "GROUP BY")
        raise SqlRuntimeError(
            f"unsupported expression in GROUP BY query: "
            f"{type(expr).__name__}")

    def _select_aggregate(self, statement: ast.Select,
                          scopes: list[Scope]) -> SelectResult:
        values = []
        names = []
        for index, item in enumerate(statement.items):
            if item.star or item.expr is None:
                raise SqlRuntimeError(
                    "cannot mix * with aggregates (no GROUP BY support)")
            if not _contains_aggregate(item.expr):
                raise SqlRuntimeError(
                    "non-aggregate projection in an aggregate query "
                    "(GROUP BY is not supported)")
            values.append(self._eval_with_aggregates(item.expr, scopes))
            names.append(item.alias or _default_name(item.expr, index))
        return SelectResult(columns=tuple(names), rows=(tuple(values),))

    def _eval_with_aggregates(self, expr: ast.Expr,
                              scopes: list[Scope]) -> Value:
        if isinstance(expr, ast.FuncCall) and is_aggregate(expr.name):
            if expr.star:
                return evaluate_aggregate(expr.name, [None] * len(scopes),
                                          count_star=True)
            if len(expr.args) != 1:
                raise SqlRuntimeError(
                    f"{expr.name} takes exactly one argument")
            column = [self.eval(expr.args[0], row_scope)
                      for row_scope in scopes]
            return evaluate_aggregate(expr.name, column)
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.Unary):
            return _apply_unary(expr.op,
                                self._eval_with_aggregates(expr.operand,
                                                           scopes))
        if isinstance(expr, ast.Binary):
            left = self._eval_with_aggregates(expr.left, scopes)
            right = self._eval_with_aggregates(expr.right, scopes)
            return _apply_binary(expr.op, left, right)
        if isinstance(expr, ast.ColumnRef):
            raise SqlRuntimeError(
                f"bare column {expr.display()!r} in an aggregate query "
                "(GROUP BY is not supported)")
        raise SqlRuntimeError(
            f"unsupported expression in aggregate query: "
            f"{type(expr).__name__}")

    def _order_scopes(self, statement: ast.Select,
                      scopes: list[Scope]) -> list[Scope]:
        if not statement.order_by:
            return scopes

        def sort_key(row_scope: Scope):
            keys = []
            for item in statement.order_by:
                value = self.eval(item.expr, row_scope)
                keys.append(_OrderKey(value, item.descending))
            return tuple(keys)

        return sorted(scopes, key=sort_key)

    def _project(self, item: ast.SelectItem, row_scope: Scope):
        if item.star:
            frame = row_scope.frames[0]
            return tuple(frame.row.values())
        return self.eval(item.expr, row_scope)

    def _projection_names(self, statement: ast.Select) -> tuple[str, ...]:
        names = []
        for index, item in enumerate(statement.items):
            if item.star:
                if statement.table is None:
                    raise SqlRuntimeError("SELECT * requires a FROM table")
                table = self.database.table(statement.table)
                names.extend(table.schema.keys())
            else:
                names.append(item.alias or _default_name(item.expr, index))
        return tuple(names)

    # -- expressions ----------------------------------------------------------

    def eval(self, expr: ast.Expr, scope: Scope) -> Value:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.ColumnRef):
            return scope.resolve(expr.name, expr.qualifier)
        if isinstance(expr, ast.Unary):
            return _apply_unary(expr.op, self.eval(expr.operand, scope))
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, scope)
        if isinstance(expr, ast.FuncCall):
            if is_aggregate(expr.name):
                raise SqlRuntimeError(
                    f"aggregate {expr.name} outside a SELECT")
            args = [self.eval(arg, scope) for arg in expr.args]
            return evaluate_scalar_function(expr.name, args)
        if isinstance(expr, ast.ScalarSubquery):
            return self._select(expr.select, scope).scalar()
        raise SqlRuntimeError(
            f"cannot evaluate {type(expr).__name__}")

    def _eval_binary(self, expr: ast.Binary, scope: Scope) -> Value:
        if expr.op in ("AND", "OR"):
            left = _as_tristate(self.eval(expr.left, scope))
            # Short-circuit where three-valued logic allows it.
            if expr.op == "AND" and left is False:
                return False
            if expr.op == "OR" and left is True:
                return True
            right = _as_tristate(self.eval(expr.right, scope))
            if expr.op == "AND":
                if left is True and right is True:
                    return True
                if left is False or right is False:
                    return False
                return None
            if left is True or right is True:
                return True
            if left is False and right is False:
                return False
            return None
        left = self.eval(expr.left, scope)
        right = self.eval(expr.right, scope)
        return _apply_binary(expr.op, left, right)


@dataclass(frozen=True)
class _OrderKey:
    """Sort key wrapper: NULL first, descending handled by inversion."""

    value: Value
    descending: bool

    def __lt__(self, other: "_OrderKey") -> bool:
        a, b = self.value, other.value
        if self.descending:
            a, b = b, a
        if a is None:
            return b is not None
        if b is None:
            return False
        try:
            return a < b
        except TypeError as exc:
            raise SqlTypeError(
                f"cannot order {a!r} against {b!r}") from exc


def _as_tristate(value: Value) -> bool | None:
    if value is None or isinstance(value, bool):
        return value
    raise SqlTypeError(f"expected a boolean, got {value!r}")


def _apply_unary(op: str, value: Value) -> Value:
    if op == "NOT":
        state = _as_tristate(value)
        return None if state is None else not state
    if op == "-":
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SqlTypeError(f"cannot negate {value!r}")
        return -value
    raise SqlRuntimeError(f"unknown unary operator {op!r}")


def _apply_binary(op: str, left: Value, right: Value) -> Value:
    if op in ("+", "-", "*", "/"):
        if left is None or right is None:
            return None
        if op == "+" and isinstance(left, str) and isinstance(right, str):
            return left + right
        _require_number(op, left)
        _require_number(op, right)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if right == 0:
            raise SqlRuntimeError("division by zero")
        return left / right
    if op in ("=", "<>", "<", "<=", ">", ">="):
        if left is None or right is None:
            return None
        _check_comparable(left, right)
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right
    raise SqlRuntimeError(f"unknown binary operator {op!r}")


def _require_number(op: str, value: Value) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SqlTypeError(f"operator {op!r} requires numbers, "
                           f"got {value!r}")


def _check_comparable(left: Value, right: Value) -> None:
    numeric = (int, float)
    if isinstance(left, bool) or isinstance(right, bool):
        if type(left) is not bool or type(right) is not bool:
            raise SqlTypeError(f"cannot compare {left!r} with {right!r}")
        return
    if isinstance(left, numeric) and isinstance(right, numeric):
        return
    if isinstance(left, str) and isinstance(right, str):
        return
    raise SqlTypeError(f"cannot compare {left!r} with {right!r}")


def _contains_aggregate(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.FuncCall):
        if is_aggregate(expr.name):
            return True
        return any(_contains_aggregate(arg) for arg in expr.args)
    if isinstance(expr, ast.Unary):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.Binary):
        return (_contains_aggregate(expr.left)
                or _contains_aggregate(expr.right))
    return False


def _default_name(expr: ast.Expr | None, index: int) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name.lower()
    if isinstance(expr, ast.FuncCall):
        return expr.name.lower()
    return f"column{index + 1}"


def _flatten_star(statement: ast.Select,
                  rows: list[tuple]) -> list[tuple]:
    """Expand tuples produced by * items into flat rows."""
    if not any(item.star for item in statement.items):
        return rows
    flattened = []
    for row in rows:
        flat: list[Value] = []
        for item, value in zip(statement.items, row):
            if item.star:
                flat.extend(value)
            else:
                flat.append(value)
        flattened.append(tuple(flat))
    return flattened


def _group_key_part(value: Value) -> Value:
    """Make one component of a group key hashable and NULL-safe."""
    if isinstance(value, float) and value.is_integer():
        return int(value)  # 2.0 and 2 group together
    return value


def _distinct(rows: list[tuple]) -> list[tuple]:
    seen = set()
    unique = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            unique.append(row)
    return unique
