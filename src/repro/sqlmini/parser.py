"""Recursive-descent parser for the sqlmini dialect.

Grammar summary (keywords case-insensitive, ``;`` terminates statements
and is optional before ``}`` / end of input)::

    script     := statement*
    statement  := create_table | create_trigger | insert | update
                | delete | select | if
    create_table   := CREATE TABLE ident '(' coldef (',' coldef)* ')'
    coldef         := ident (INT | REAL | TEXT | BOOL)
    create_trigger := CREATE TRIGGER ident AFTER INSERT ON ident
                      '{' statement* '}'
    insert     := INSERT INTO ident ['(' ident (',' ident)* ')']
                  VALUES tuple (',' tuple)*
    update     := UPDATE ident SET assign (',' assign)* [WHERE expr]
    delete     := DELETE FROM ident [WHERE expr]
    select     := SELECT [DISTINCT] items [FROM ident [ident]]
                  [WHERE expr] [ORDER BY order (',' order)*] [LIMIT num]
    if         := IF expr THEN statement*
                  (ELSEIF expr THEN statement*)*
                  [ELSE statement*] ENDIF

    expr       := or ;  or := and (OR and)* ;  and := not (AND not)*
    not        := NOT not | cmp
    cmp        := add [( = | <> | != | < | <= | > | >= ) add]
    add        := mul (( + | - ) mul)*
    mul        := unary (( * | / ) unary)*
    unary      := - unary | primary
    primary    := literal | ident['.'ident] | func '(' args ')'
                | '(' select ')' | '(' expr ')'
"""

from __future__ import annotations

from repro.sqlmini import ast
from repro.sqlmini.errors import SqlParseError
from repro.sqlmini.lexer import Token, tokenize

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_TYPES = {"INT", "REAL", "TEXT", "BOOL"}

# Keywords that may double as identifiers when one is expected.  The
# paper's own Keywords table has a column named ``text``, so at least the
# type names must be usable as column names.
_SOFT_IDENTIFIERS = frozenset(_TYPES)


def parse_script(source: str) -> ast.Script:
    """Parse a source string into a script (list of statements)."""
    return _Parser(tokenize(source)).parse_script()


def parse_statement(source: str) -> ast.Statement:
    """Parse exactly one statement; raises if there are more."""
    script = parse_script(source)
    if len(script.statements) != 1:
        raise SqlParseError(
            f"expected exactly one statement, got {len(script.statements)}")
    return script.statements[0]


def parse_expression(source: str) -> ast.Expr:
    """Parse a standalone expression (used by tests and the REPL)."""
    parser = _Parser(tokenize(source))
    expr = parser._expr()
    parser._expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.index = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def _check_keyword(self, *words: str) -> bool:
        token = self._peek()
        return token.kind == "keyword" and token.upper() in words

    def _accept_keyword(self, *words: str) -> Token | None:
        if self._check_keyword(*words):
            return self._advance()
        return None

    def _expect_keyword(self, word: str) -> Token:
        token = self._accept_keyword(word)
        if token is None:
            actual = self._peek()
            raise SqlParseError(f"expected {word}, got {actual.text!r}",
                                actual.line, actual.column)
        return token

    def _check_op(self, op: str) -> bool:
        token = self._peek()
        return token.kind == "op" and token.text == op

    def _accept_op(self, op: str) -> Token | None:
        if self._check_op(op):
            return self._advance()
        return None

    def _expect_op(self, op: str) -> Token:
        token = self._accept_op(op)
        if token is None:
            actual = self._peek()
            raise SqlParseError(f"expected {op!r}, got {actual.text!r}",
                                actual.line, actual.column)
        return token

    def _check_ident(self) -> bool:
        token = self._peek()
        if token.kind == "ident":
            return True
        return (token.kind == "keyword"
                and token.upper() in _SOFT_IDENTIFIERS)

    def _expect_ident(self) -> str:
        if not self._check_ident():
            token = self._peek()
            raise SqlParseError(f"expected identifier, got {token.text!r}",
                                token.line, token.column)
        return self._advance().text

    def _expect_eof(self) -> None:
        token = self._peek()
        if token.kind != "eof":
            raise SqlParseError(f"unexpected trailing input {token.text!r}",
                                token.line, token.column)

    def _skip_semicolons(self) -> None:
        while self._accept_op(";"):
            pass

    # -- statements ---------------------------------------------------------

    def parse_script(self) -> ast.Script:
        statements = []
        self._skip_semicolons()
        while self._peek().kind != "eof":
            statements.append(self._statement())
            self._skip_semicolons()
        return ast.Script(statements=tuple(statements))

    def _statement(self) -> ast.Statement:
        token = self._peek()
        if token.kind == "keyword":
            word = token.upper()
            if word == "CREATE":
                return self._create()
            if word == "INSERT":
                return self._insert()
            if word == "UPDATE":
                return self._update()
            if word == "DELETE":
                return self._delete()
            if word == "SELECT":
                return self._select()
            if word == "IF":
                return self._if()
        raise SqlParseError(f"unexpected token {token.text!r} at start of "
                            "statement", token.line, token.column)

    def _create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        if self._accept_keyword("TABLE"):
            table = self._expect_ident()
            self._expect_op("(")
            columns = [self._column_def()]
            while self._accept_op(","):
                columns.append(self._column_def())
            self._expect_op(")")
            return ast.CreateTable(table=table, columns=tuple(columns))
        if self._accept_keyword("TRIGGER"):
            name = self._expect_ident()
            self._expect_keyword("AFTER")
            self._expect_keyword("INSERT")
            self._expect_keyword("ON")
            table = self._expect_ident()
            self._expect_op("{")
            body = []
            self._skip_semicolons()
            while not self._check_op("}"):
                body.append(self._statement())
                self._skip_semicolons()
            self._expect_op("}")
            return ast.CreateTrigger(name=name, table=table,
                                     body=tuple(body))
        token = self._peek()
        raise SqlParseError(f"expected TABLE or TRIGGER after CREATE, got "
                            f"{token.text!r}", token.line, token.column)

    def _column_def(self) -> ast.ColumnDef:
        name = self._expect_ident()
        token = self._peek()
        if token.kind == "keyword" and token.upper() in _TYPES:
            self._advance()
            return ast.ColumnDef(name=name, type_name=token.upper())
        raise SqlParseError(
            f"expected column type (INT/REAL/TEXT/BOOL), got {token.text!r}",
            token.line, token.column)

    def _insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident()
        columns: tuple[str, ...] | None = None
        if self._accept_op("("):
            names = [self._expect_ident()]
            while self._accept_op(","):
                names.append(self._expect_ident())
            self._expect_op(")")
            columns = tuple(names)
        if self._check_keyword("SELECT"):
            return ast.Insert(table=table, columns=columns,
                              select=self._select())
        self._expect_keyword("VALUES")
        rows = [self._value_tuple()]
        while self._accept_op(","):
            rows.append(self._value_tuple())
        return ast.Insert(table=table, columns=columns, values=tuple(rows))

    def _value_tuple(self) -> tuple[ast.Expr, ...]:
        self._expect_op("(")
        values = [self._expr()]
        while self._accept_op(","):
            values.append(self._expr())
        self._expect_op(")")
        return tuple(values)

    def _update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._expect_ident()
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._accept_op(","):
            assignments.append(self._assignment())
        where = self._expr() if self._accept_keyword("WHERE") else None
        return ast.Update(table=table, assignments=tuple(assignments),
                          where=where)

    def _assignment(self) -> ast.Assignment:
        column = self._expect_ident()
        self._expect_op("=")
        return ast.Assignment(column=column, value=self._expr())

    def _delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_ident()
        where = self._expr() if self._accept_keyword("WHERE") else None
        return ast.Delete(table=table, where=where)

    def _select(self) -> ast.Select:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT") is not None
        items = [self._select_item()]
        while self._accept_op(","):
            items.append(self._select_item())
        table = None
        alias = None
        if self._accept_keyword("FROM"):
            table = self._expect_ident()
            if self._check_ident():
                alias = self._advance().text
        where = self._expr() if self._accept_keyword("WHERE") else None
        group_by: list[ast.Expr] = []
        having = None
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._expr())
            while self._accept_op(","):
                group_by.append(self._expr())
            if self._accept_keyword("HAVING"):
                having = self._expr()
        order_by: list[ast.OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._order_item())
            while self._accept_op(","):
                order_by.append(self._order_item())
        limit = None
        if self._accept_keyword("LIMIT"):
            token = self._peek()
            if token.kind != "number":
                raise SqlParseError(f"expected number after LIMIT, got "
                                    f"{token.text!r}", token.line,
                                    token.column)
            self._advance()
            limit = int(token.text)
        return ast.Select(items=tuple(items), table=table, alias=alias,
                          where=where, group_by=tuple(group_by),
                          having=having, order_by=tuple(order_by),
                          limit=limit, distinct=distinct)

    def _select_item(self) -> ast.SelectItem:
        if self._accept_op("*"):
            return ast.SelectItem(expr=None, star=True)
        expr = self._expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._check_ident():
            alias = self._advance().text
        return ast.SelectItem(expr=expr, alias=alias)

    def _order_item(self) -> ast.OrderItem:
        expr = self._expr()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expr=expr, descending=descending)

    def _if(self) -> ast.If:
        self._expect_keyword("IF")
        branches = [self._if_branch()]
        while self._accept_keyword("ELSEIF"):
            branches.append(self._if_branch())
        else_body: tuple[ast.Statement, ...] = ()
        if self._accept_keyword("ELSE"):
            else_body = self._branch_body()
        self._expect_keyword("ENDIF")
        return ast.If(branches=tuple(branches), else_body=else_body)

    def _if_branch(self) -> ast.IfBranch:
        condition = self._expr()
        self._expect_keyword("THEN")
        return ast.IfBranch(condition=condition, body=self._branch_body())

    def _branch_body(self) -> tuple[ast.Statement, ...]:
        body = []
        self._skip_semicolons()
        while not self._check_keyword("ELSEIF", "ELSE", "ENDIF"):
            body.append(self._statement())
            self._skip_semicolons()
        return tuple(body)

    # -- expressions ----------------------------------------------------------

    def _expr(self) -> ast.Expr:
        return self._or()

    def _or(self) -> ast.Expr:
        left = self._and()
        while self._accept_keyword("OR"):
            left = ast.Binary("OR", left, self._and())
        return left

    def _and(self) -> ast.Expr:
        left = self._not()
        while self._accept_keyword("AND"):
            left = ast.Binary("AND", left, self._not())
        return left

    def _not(self) -> ast.Expr:
        if self._accept_keyword("NOT"):
            return ast.Unary("NOT", self._not())
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        token = self._peek()
        if token.kind == "op" and token.text in _COMPARISONS:
            self._advance()
            op = "<>" if token.text == "!=" else token.text
            return ast.Binary(op, left, self._additive())
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            if self._accept_op("+"):
                left = ast.Binary("+", left, self._multiplicative())
            elif self._accept_op("-"):
                left = ast.Binary("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            if self._accept_op("*"):
                left = ast.Binary("*", left, self._unary())
            elif self._accept_op("/"):
                left = ast.Binary("/", left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Expr:
        if self._accept_op("-"):
            return ast.Unary("-", self._unary())
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            text = token.text
            value: object = float(text) if "." in text else int(text)
            return ast.Literal(value)
        if token.kind == "string":
            self._advance()
            return ast.Literal(token.text)
        if token.kind == "keyword" and token.upper() not in _SOFT_IDENTIFIERS:
            word = token.upper()
            if word == "TRUE":
                self._advance()
                return ast.Literal(True)
            if word == "FALSE":
                self._advance()
                return ast.Literal(False)
            if word == "NULL":
                self._advance()
                return ast.Literal(None)
            raise SqlParseError(f"unexpected keyword {token.text!r} in "
                                "expression", token.line, token.column)
        if token.kind == "op" and token.text == "(":
            self._advance()
            if self._check_keyword("SELECT"):
                select = self._select()
                self._expect_op(")")
                return ast.ScalarSubquery(select=select)
            inner = self._expr()
            self._expect_op(")")
            return inner
        if self._check_ident():
            name = self._advance().text
            if self._check_op("("):
                return self._call(name)
            if self._accept_op("."):
                member = self._expect_ident()
                return ast.ColumnRef(name=member, qualifier=name)
            return ast.ColumnRef(name=name)
        raise SqlParseError(f"unexpected token {token.text!r} in expression",
                            token.line, token.column)

    def _call(self, name: str) -> ast.FuncCall:
        self._expect_op("(")
        if self._accept_op("*"):
            self._expect_op(")")
            return ast.FuncCall(name=name.upper(), args=(), star=True)
        args = []
        if not self._check_op(")"):
            args.append(self._expr())
            while self._accept_op(","):
                args.append(self._expr())
        self._expect_op(")")
        return ast.FuncCall(name=name.upper(), args=tuple(args))
