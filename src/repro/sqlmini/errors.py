"""Error hierarchy of the sqlmini engine.

Every failure mode an advertiser-submitted bidding program can trigger is
a subclass of :class:`SqlError`, so the auction engine can sandbox a
misbehaving program (catch, disqualify, continue) without ever catching
unrelated bugs by accident.
"""

from __future__ import annotations


class SqlError(Exception):
    """Base class for all sqlmini errors."""


class SqlLexError(SqlError):
    """The source text contains a character sequence that is not a token."""

    def __init__(self, message: str, line: int, column: int):
        self.line = line
        self.column = column
        super().__init__(f"{message} (line {line}, column {column})")


class SqlParseError(SqlError):
    """The token stream does not form a valid statement."""

    def __init__(self, message: str, line: int = -1, column: int = -1):
        self.line = line
        self.column = column
        if line >= 0:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class SqlNameError(SqlError):
    """An identifier (table, column, variable) cannot be resolved."""


class SqlTypeError(SqlError):
    """A value has the wrong type for the operation or column."""


class SqlRuntimeError(SqlError):
    """A well-formed statement failed during execution.

    Examples: division by zero, a scalar subquery returning more than one
    row, inserting a row of the wrong arity.
    """


class SqlSchemaError(SqlError):
    """A DDL statement conflicts with the existing schema."""
