"""Tokenizer for the sqlmini dialect.

The dialect is the fragment the paper's bidding programs need
(Section II-B, Figure 5): DDL for tables and triggers, INSERT / UPDATE /
DELETE / SELECT, IF blocks inside trigger bodies, arithmetic and boolean
expressions, and scalar subqueries.  Keywords are case-insensitive;
identifiers preserve case but compare case-insensitively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sqlmini.errors import SqlLexError

KEYWORDS = frozenset({
    "AFTER", "AND", "AS", "ASC", "BEGIN", "BOOL", "BY", "CREATE",
    "DELETE", "DESC", "DISTINCT", "ELSE", "ELSEIF", "END", "ENDIF",
    "FALSE", "FROM", "GROUP", "HAVING", "IF", "INSERT", "INT", "INTO",
    "LIMIT", "NOT", "NULL", "ON", "OR", "ORDER", "REAL", "SELECT",
    "SET", "TABLE", "TEXT", "THEN", "TRIGGER", "TRUE", "UPDATE",
    "VALUES", "WHERE",
})

# Multi-character operators first so maximal munch works.
_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/",
              "(", ")", "{", "}", ",", ";", ".")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str  # "keyword", "ident", "number", "string", "op", "eof"
    text: str
    line: int
    column: int

    def upper(self) -> str:
        return self.text.upper()


def tokenize(source: str) -> list[Token]:
    """Turn source text into a token list ending with an ``eof`` token."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    column = 1
    length = len(source)

    def advance(count: int) -> None:
        nonlocal pos, line, column
        for _ in range(count):
            if pos < length and source[pos] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            pos += 1

    while pos < length:
        char = source[pos]
        if char in " \t\r\n":
            advance(1)
            continue
        if source.startswith("--", pos):
            # Line comment.
            while pos < length and source[pos] != "\n":
                advance(1)
            continue
        start_line, start_column = line, column
        if char.isdigit() or (char == "." and pos + 1 < length
                              and source[pos + 1].isdigit()):
            end = pos
            seen_dot = False
            while end < length and (source[end].isdigit()
                                    or (source[end] == "." and not seen_dot)):
                if source[end] == ".":
                    # A dot not followed by a digit is a qualifier, not a
                    # decimal point (e.g. "1.x" never appears; "K.roi"
                    # starts with a letter so we never get here for it).
                    if end + 1 >= length or not source[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            text = source[pos:end]
            tokens.append(Token("number", text, start_line, start_column))
            advance(end - pos)
            continue
        if char.isalpha() or char == "_":
            end = pos
            while end < length and (source[end].isalnum()
                                    or source[end] == "_"):
                end += 1
            text = source[pos:end]
            kind = "keyword" if text.upper() in KEYWORDS else "ident"
            tokens.append(Token(kind, text, start_line, start_column))
            advance(end - pos)
            continue
        if char == "'":
            end = pos + 1
            chunks = []
            while True:
                if end >= length:
                    raise SqlLexError("unterminated string literal",
                                      start_line, start_column)
                if source[end] == "'":
                    if end + 1 < length and source[end + 1] == "'":
                        chunks.append("'")  # escaped quote
                        end += 2
                        continue
                    break
                chunks.append(source[end])
                end += 1
            tokens.append(Token("string", "".join(chunks),
                                start_line, start_column))
            advance(end + 1 - pos)
            continue
        matched = False
        for operator in _OPERATORS:
            if source.startswith(operator, pos):
                tokens.append(Token("op", operator,
                                    start_line, start_column))
                advance(len(operator))
                matched = True
                break
        if not matched:
            raise SqlLexError(f"unexpected character {char!r}",
                              start_line, start_column)

    tokens.append(Token("eof", "", line, column))
    return tokens
