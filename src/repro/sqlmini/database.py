"""The sqlmini database: tables, triggers, and program variables.

One :class:`Database` instance corresponds to one bidding program's
private universe (Section II-B): its private tables (``Keywords``,
``Bids``), any shared read-only tables the provider mirrors in
(``Query``), its registered triggers, and its scalar variables
(``amtSpent``, ``time``, ``targetSpendRate`` ...), which the paper says
the search provider maintains automatically.

Typical use by the auction engine::

    db = Database()
    db.execute(PROGRAM_SOURCE)            # CREATE TABLE/TRIGGER statements
    db.set_variable("amtSpent", 0.0)
    ...
    db.execute("INSERT INTO Query VALUES ('boot')")   # fires the trigger
    bids = db.execute("SELECT formula, value FROM Bids")
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sqlmini import ast
from repro.sqlmini.errors import SqlNameError, SqlSchemaError
from repro.sqlmini.executor import Executor, Scope, SelectResult
from repro.sqlmini.parser import parse_script
from repro.sqlmini.table import Column, Schema, Table, Value


@dataclass(frozen=True)
class Trigger:
    """A registered AFTER INSERT trigger."""

    name: str
    table_key: str
    body: tuple[ast.Statement, ...]


class Database:
    """An in-memory database with AFTER INSERT triggers and variables."""

    def __init__(self):
        self._tables: dict[str, Table] = {}
        self._triggers: dict[str, list[Trigger]] = {}
        self._variables: dict[str, Value] = {}
        self._executor = Executor(self)

    # -- schema ------------------------------------------------------------

    def create_table(self, name: str,
                     columns: list[tuple[str, str]]) -> Table:
        """Create a table from (column, type) pairs (Python-side DDL)."""
        key = name.lower()
        if key in self._tables:
            raise SqlSchemaError(f"table {name!r} already exists")
        schema = Schema(tuple(Column(col, type_name.upper())
                              for col, type_name in columns))
        table = Table(name=name, schema=schema)
        self._tables[key] = table
        return table

    def create_table_from_ast(self, statement: ast.CreateTable) -> Table:
        return self.create_table(
            statement.table,
            [(col.name, col.type_name) for col in statement.columns])

    def table(self, name: str) -> Table:
        key = name.lower()
        if key not in self._tables:
            raise SqlNameError(f"no table {name!r}; available: "
                               f"{sorted(t.name for t in self._tables.values())}")
        return self._tables[key]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise SqlNameError(f"no table {name!r}")
        del self._tables[key]
        self._triggers.pop(key, None)

    # -- triggers ------------------------------------------------------------

    def register_trigger(self, statement: ast.CreateTrigger) -> None:
        table = self.table(statement.table)  # must exist
        trigger = Trigger(name=statement.name,
                          table_key=table.name.lower(),
                          body=statement.body)
        existing = self._triggers.setdefault(trigger.table_key, [])
        if any(t.name.lower() == trigger.name.lower() for t in existing):
            raise SqlSchemaError(
                f"trigger {statement.name!r} already exists on "
                f"{statement.table!r}")
        existing.append(trigger)

    def triggers_for(self, table_name: str) -> list[Trigger]:
        return self._triggers.get(table_name.lower(), [])

    # -- variables ------------------------------------------------------------

    def set_variable(self, name: str, value: Value) -> None:
        """Set a scalar program variable (case-insensitive name)."""
        self._variables[name.lower()] = value

    def get_variable(self, name: str) -> Value:
        key = name.lower()
        if key not in self._variables:
            raise SqlNameError(f"no variable {name!r}")
        return self._variables[key]

    @property
    def variables(self) -> dict[str, Value]:
        """The live variables mapping (keys are lower-case)."""
        return self._variables

    # -- execution ------------------------------------------------------------

    def execute(self, source: str | ast.Statement):
        """Execute SQL text (possibly several statements) or an AST node.

        Returns the last statement's result: a :class:`SelectResult` for
        SELECT, an affected-row count for DML, ``None`` for DDL.
        """
        if isinstance(source, str):
            statement: ast.Statement = parse_script(source)
        else:
            statement = source
        scope = Scope(frames=(), variables=self._variables)
        return self._executor.execute(statement, scope)

    def query(self, source: str) -> SelectResult:
        """Execute a SELECT and insist on a result set."""
        result = self.execute(source)
        if not isinstance(result, SelectResult):
            raise SqlNameError("query() requires a SELECT statement")
        return result

    def rows(self, table_name: str) -> list[dict[str, Value]]:
        """Snapshot of a table's rows (copied, safe to mutate)."""
        return self.table(table_name).copy_rows()
