"""sqlmini: the from-scratch mini SQL engine bidding programs run on.

Implements exactly the fragment Section II-B of the paper requires —
"simple SQL updates without recursion and side-effects" plus AFTER INSERT
triggers — with tables, typed schemas, scalar subqueries (including
correlated ones), whole-table aggregates, IF blocks, and program
variables.  Figure 5's ROI-equalizing program runs verbatim; see
``tests/sqlmini/test_figure5_program.py``.
"""

from repro.sqlmini.database import Database, Trigger
from repro.sqlmini.errors import (
    SqlError,
    SqlLexError,
    SqlNameError,
    SqlParseError,
    SqlRuntimeError,
    SqlSchemaError,
    SqlTypeError,
)
from repro.sqlmini.executor import Scope, SelectResult
from repro.sqlmini.lexer import Token, tokenize
from repro.sqlmini.parser import (
    parse_expression,
    parse_script,
    parse_statement,
)
from repro.sqlmini.table import Column, Schema, Table

__all__ = [
    "Column",
    "Database",
    "Schema",
    "Scope",
    "SelectResult",
    "SqlError",
    "SqlLexError",
    "SqlNameError",
    "SqlParseError",
    "SqlRuntimeError",
    "SqlSchemaError",
    "SqlTypeError",
    "Table",
    "Token",
    "Trigger",
    "parse_expression",
    "parse_script",
    "parse_statement",
    "tokenize",
]
