"""In-memory tables of the sqlmini engine.

Rows are dictionaries keyed by canonical (lower-case) column names; the
:class:`Schema` carries the declared types and performs coercion on
write, so a column declared ``INT`` never holds ``2.5`` and a ``TEXT``
column never holds a number.  NULL (Python ``None``) is allowed in every
column, as the paper's programs rely on aggregate results that may be
absent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.sqlmini.errors import SqlNameError, SqlSchemaError, SqlTypeError

Value = object  # int | float | str | bool | None


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    type_name: str  # "INT" | "REAL" | "TEXT" | "BOOL"

    @property
    def key(self) -> str:
        return self.name.lower()

    def coerce(self, value: Value) -> Value:
        """Coerce a value to the column's type, or raise SqlTypeError."""
        if value is None:
            return None
        if self.type_name == "INT":
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, int):
                return value
            if isinstance(value, float) and float(value).is_integer():
                return int(value)
            raise SqlTypeError(
                f"column {self.name!r} is INT; cannot store {value!r}")
        if self.type_name == "REAL":
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return float(value)
            raise SqlTypeError(
                f"column {self.name!r} is REAL; cannot store {value!r}")
        if self.type_name == "TEXT":
            if isinstance(value, str):
                return value
            raise SqlTypeError(
                f"column {self.name!r} is TEXT; cannot store {value!r}")
        if self.type_name == "BOOL":
            if isinstance(value, bool):
                return value
            raise SqlTypeError(
                f"column {self.name!r} is BOOL; cannot store {value!r}")
        raise SqlSchemaError(f"unknown column type {self.type_name!r}")


@dataclass(frozen=True)
class Schema:
    """An ordered set of columns with canonical-name lookup."""

    columns: tuple[Column, ...]

    def __post_init__(self) -> None:
        seen = set()
        for column in self.columns:
            if column.key in seen:
                raise SqlSchemaError(
                    f"duplicate column name {column.name!r}")
            seen.add(column.key)

    def column(self, name: str) -> Column:
        key = name.lower()
        for column in self.columns:
            if column.key == key:
                return column
        raise SqlNameError(f"no column {name!r}; available: "
                           f"{[c.name for c in self.columns]}")

    def has_column(self, name: str) -> bool:
        key = name.lower()
        return any(column.key == key for column in self.columns)

    def keys(self) -> list[str]:
        return [column.key for column in self.columns]


@dataclass
class Table:
    """A named, schema-checked bag of rows."""

    name: str
    schema: Schema
    rows: list[dict[str, Value]] = field(default_factory=list)

    def insert(self, values: Iterable[Value],
               columns: Iterable[str] | None = None) -> dict[str, Value]:
        """Insert one row; unnamed columns default to NULL.

        Returns the stored row (the executor hands it to triggers as the
        NEW row).
        """
        values = list(values)
        if columns is None:
            names = self.schema.keys()
            if len(values) != len(names):
                raise SqlTypeError(
                    f"table {self.name!r} has {len(names)} columns; got "
                    f"{len(values)} values")
        else:
            names = [self.schema.column(name).key for name in columns]
            if len(values) != len(names):
                raise SqlTypeError(
                    f"INSERT names {len(names)} columns but provides "
                    f"{len(values)} values")
        row = {key: None for key in self.schema.keys()}
        for name, value in zip(names, values):
            row[name] = self.schema.column(name).coerce(value)
        self.rows.append(row)
        return row

    def clear(self) -> None:
        """Remove all rows (used when re-initialising program state)."""
        self.rows.clear()

    def copy_rows(self) -> list[dict[str, Value]]:
        """A defensive copy of all rows (for snapshots in tests)."""
        return [dict(row) for row in self.rows]

    def __iter__(self) -> Iterator[dict[str, Value]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)
