"""Per-program private state: the Keywords table and spend accounting.

Mirrors the paper's Figure 4 Keywords relation — one record per keyword
the advertiser cares about, holding the bid formula, current tentative
bid, bid cap, and the running return-on-investment bookkeeping the
provider maintains automatically (Section II-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.formula import Formula
from repro.lang.parser import parse_formula


@dataclass
class KeywordRecord:
    """One row of a program's Keywords table.

    Attributes mirror Figure 4: ``text``, ``formula``, ``maxbid``,
    ``bid``; plus the accounting that produces ``roi``:
    ``value_per_click`` (the advertiser's private value of a click for
    this keyword), ``gained`` (total realized value), ``spent`` (total
    charged).
    """

    text: str
    formula: Formula
    maxbid: float
    bid: float
    value_per_click: float
    gained: float = 0.0
    spent: float = 0.0

    def __post_init__(self) -> None:
        if isinstance(self.formula, str):
            self.formula = parse_formula(self.formula)
        if self.maxbid < 0:
            raise ValueError(f"maxbid must be >= 0, got {self.maxbid}")
        if not 0 <= self.bid:
            raise ValueError(f"bid must be >= 0, got {self.bid}")
        self.bid = min(self.bid, self.maxbid)

    @property
    def roi(self) -> float:
        """Return on investment: value gained per unit spent.

        Before any money is spent the keyword's ROI is its value per
        click — an optimistic prior that makes unexplored keywords
        attractive, and keeps the max/min selections of the ROI heuristic
        deterministic from the first auction.
        """
        if self.spent > 0.0:
            return self.gained / self.spent
        return self.value_per_click

    def record_spend(self, price: float, value: float) -> None:
        """Fold one charged click (or purchase) into the accounting."""
        if price < 0 or value < 0:
            raise ValueError("price and value must be >= 0")
        self.spent += price
        self.gained += value


@dataclass
class ProgramState:
    """Scalar program variables plus the Keywords table.

    ``amt_spent`` and per-keyword accounting are updated by
    notifications; ``target_spend_rate`` is the advertiser's pacing
    parameter (Section II-C).
    """

    target_spend_rate: float
    keywords: list[KeywordRecord] = field(default_factory=list)
    amt_spent: float = 0.0
    auctions_seen: int = 0

    def keyword(self, text: str) -> KeywordRecord | None:
        """The record for ``text``, or None if the program ignores it."""
        for record in self.keywords:
            if record.text == text:
                return record
        return None

    def spend_rate(self, time: float) -> float:
        """Current spending rate ``amt_spent / time`` (time must be > 0)."""
        if time <= 0:
            raise ValueError(f"time must be > 0, got {time}")
        return self.amt_spent / time

    def max_roi(self) -> float:
        """Highest ROI over all keywords (the increment target set)."""
        if not self.keywords:
            raise ValueError("program has no keywords")
        return max(record.roi for record in self.keywords)

    def min_roi(self) -> float:
        """Lowest ROI over all keywords (the decrement target set)."""
        if not self.keywords:
            raise ValueError("program has no keywords")
        return min(record.roi for record in self.keywords)
