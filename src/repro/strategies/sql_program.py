"""Bidding programs written in SQL, run on the sqlmini engine.

This is the paper's actual programming model (Section II-B): the
advertiser submits SQL — ``CREATE TRIGGER ... AFTER INSERT ON Query`` —
and the provider hosts it next to the program's private ``Keywords`` and
``Bids`` tables.  Before each auction the provider refreshes the shared
inputs (query relevance scores, time, amount spent, per-keyword ROI) and
inserts the query row, firing the trigger; afterwards it reads the
``Bids`` table back as the program's bid.

:data:`FIGURE5_PROGRAM` is the paper's Figure 5 program verbatim modulo
one fix: line 11 of the figure repeats the underspending test (``<``)
where the overspending branch obviously intends ``>``; we reproduce the
intended semantics and record the typo here.
"""

from __future__ import annotations

from repro.lang.bids import BidsTable
from repro.sqlmini.database import Database
from repro.strategies.base import (
    AuctionContext,
    BiddingProgram,
    ProgramNotification,
)
from repro.strategies.state import KeywordRecord

FIGURE5_PROGRAM = """
CREATE TRIGGER bid AFTER INSERT ON Query
{
  IF amtSpent / time < targetSpendRate THEN
    UPDATE Keywords
    SET bid = bid + 1
    WHERE roi = ( SELECT MAX( K.roi ) FROM Keywords K )
      AND relevance > 0
      AND bid < maxbid;
  ELSEIF amtSpent / time > targetSpendRate THEN
    UPDATE Keywords
    SET bid = bid - 1
    WHERE roi = ( SELECT MIN( K.roi ) FROM Keywords K )
      AND relevance > 0
      AND bid > 0;
  ENDIF;

  UPDATE Bids
  SET value = ( SELECT SUM( K.bid )
                FROM Keywords K
                WHERE K.relevance > 0.7
                  AND K.formula = Bids.formula );
}
"""

_SCHEMA = """
CREATE TABLE Query (text TEXT);
CREATE TABLE Keywords (text TEXT, formula TEXT, maxbid REAL, roi REAL,
                       bid REAL, relevance REAL);
CREATE TABLE Bids (formula TEXT, value REAL);
"""


class SqlBiddingProgram(BiddingProgram):
    """Host one advertiser's SQL bidding program on a private database.

    Parameters
    ----------
    advertiser_id:
        Dense advertiser id.
    keywords:
        The advertiser's keyword records; their ``formula``/``maxbid``/
        ``bid`` fields seed the Keywords table and their accounting
        drives the provider-maintained ``roi`` column.
    target_spend_rate:
        The pacing target exposed to the program as ``targetSpendRate``.
    program_source:
        The SQL text to install (defaults to the Figure 5 program).
    """

    def __init__(self, advertiser_id: int,
                 keywords: list[KeywordRecord],
                 target_spend_rate: float,
                 program_source: str = FIGURE5_PROGRAM):
        super().__init__(advertiser_id)
        self.keywords = keywords
        self.target_spend_rate = float(target_spend_rate)
        self.amt_spent = 0.0
        self.database = Database()
        self.database.execute(_SCHEMA)
        for record in keywords:
            self.database.execute(
                "INSERT INTO Keywords (text, formula, maxbid, roi, bid, "
                "relevance) VALUES "
                f"('{_escape(record.text)}', "
                f"'{_escape(str(record.formula))}', {record.maxbid}, "
                f"{record.roi}, {record.bid}, 0.0)")
        for formula in _distinct_formulas(keywords):
            self.database.execute(
                f"INSERT INTO Bids VALUES ('{_escape(formula)}', 0.0)")
        self.database.execute(program_source)

    # -- the provider-side refresh/run/read cycle --------------------------

    def bid(self, ctx: AuctionContext) -> BidsTable:
        self._refresh_inputs(ctx)
        self.database.execute(
            f"INSERT INTO Query VALUES ('{_escape(ctx.query.text)}')")
        return self._read_bids()

    def notify(self, notification: ProgramNotification) -> None:
        if notification.price_paid <= 0 and not notification.clicked:
            return
        self.amt_spent += notification.price_paid
        for record in self.keywords:
            if record.text == notification.keyword:
                gained = notification.value_gained
                if gained == 0.0 and notification.clicked:
                    gained = record.value_per_click
                record.record_spend(notification.price_paid, gained)

    def _refresh_inputs(self, ctx: AuctionContext) -> None:
        db = self.database
        db.set_variable("amtSpent", self.amt_spent)
        db.set_variable("time", ctx.time)
        db.set_variable("targetSpendRate", self.target_spend_rate)
        # The provider maintains relevance and ROI (Section II-B).
        for record in self.keywords:
            relevance = ctx.query.relevance_of(record.text)
            db.execute(
                f"UPDATE Keywords SET relevance = {relevance}, "
                f"roi = {record.roi} "
                f"WHERE text = '{_escape(record.text)}'")

    def _read_bids(self) -> BidsTable:
        table = BidsTable()
        for row in self.database.rows("Bids"):
            value = row["value"]
            table.add(str(row["formula"]),
                      0.0 if value is None else float(value))
        # Mirror the engine-visible bids back into the Python-side
        # records so notify() accounting and SQL state stay consistent.
        by_text = {str(row["text"]): row["bid"]
                   for row in self.database.rows("Keywords")}
        for record in self.keywords:
            stored = by_text.get(record.text)
            if stored is not None:
                record.bid = float(stored)
        return table


def _distinct_formulas(keywords: list[KeywordRecord]) -> list[str]:
    seen: list[str] = []
    for record in keywords:
        text = str(record.formula)
        if text not in seen:
            seen.append(text)
    return seen


def _escape(text: str) -> str:
    return text.replace("'", "''")
