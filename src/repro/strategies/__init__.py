"""Dynamic bidding strategies as programs (Section II).

The abstract :class:`BiddingProgram` interface, the ROI-equalizing
heuristic in native and SQL-hosted forms, and a library of expressive
strategies realising the paper's motivating advertiser goals.
"""

from repro.strategies.base import (
    AuctionContext,
    BiddingProgram,
    ProgramNotification,
    Query,
)
from repro.strategies.library import (
    BudgetPacedProgram,
    DaypartingRampProgram,
    FixedBidProgram,
    PositionTargetProgram,
    PurchaseFocusedProgram,
    TopOrBottomProgram,
    TopOrNothingProgram,
)
from repro.strategies.roi_equalizer import (
    RELEVANCE_THRESHOLD,
    ROIEqualizerProgram,
    SimpleROIPacer,
    make_roi_state,
)
from repro.strategies.sql_program import FIGURE5_PROGRAM, SqlBiddingProgram
from repro.strategies.state import KeywordRecord, ProgramState

__all__ = [
    "AuctionContext",
    "BiddingProgram",
    "BudgetPacedProgram",
    "DaypartingRampProgram",
    "FIGURE5_PROGRAM",
    "FixedBidProgram",
    "KeywordRecord",
    "PositionTargetProgram",
    "ProgramNotification",
    "ProgramState",
    "PurchaseFocusedProgram",
    "Query",
    "RELEVANCE_THRESHOLD",
    "ROIEqualizerProgram",
    "SimpleROIPacer",
    "SqlBiddingProgram",
    "TopOrBottomProgram",
    "TopOrNothingProgram",
    "make_roi_state",
]
