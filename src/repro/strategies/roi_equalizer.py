"""The ROI-equalizing heuristic (Section II-C, Figures 4-6).

Two faithful variants are provided:

* :class:`ROIEqualizerProgram` — the full Figure 5 semantics: when
  underspending, raise the bids of the *globally highest-ROI* keywords
  (if relevant to the query and below their cap); when overspending,
  lower the *lowest-ROI* ones (if relevant and above zero); then write
  the Bids table as the sum of tentative bids of sufficiently relevant
  keywords per formula.  Note: the paper's Figure 5 has a typo on line
  11 (the overspending branch repeats ``<``); we implement the evidently
  intended ``>``.

* :class:`SimpleROIPacer` — the per-keyword simplification Section IV-B
  reasons about ("as long as the bid is above zero and the spending rate
  is above the target, the heuristic will decrement its bid for a given
  keyword"): on each auction, the *queried* keyword's bid steps up by 1
  when underspending and down by 1 when overspending, clamped to
  [0, maxbid].  This is the strategy the Section V benchmark runs for
  every method, because its update rule is exactly what the
  logical-update machinery (:mod:`repro.evaluation.delta_list`) tracks
  lazily — RH and RHTALU must produce identical bid trajectories, a
  property the tests verify.
"""

from __future__ import annotations

from repro.lang.bids import BidsTable
from repro.strategies.base import (
    AuctionContext,
    BiddingProgram,
    ProgramNotification,
)
from repro.strategies.state import KeywordRecord, ProgramState

RELEVANCE_THRESHOLD = 0.7
"""Figure 5's relevance cut-off for contributing to the Bids table."""

_ROI_TIE_TOL = 1e-12


class ROIEqualizerProgram(BiddingProgram):
    """The full Figure 5 strategy, implemented natively.

    ``tests/strategies/test_roi_equalizer.py`` locks this implementation
    against the verbatim SQL program running on the sqlmini engine.
    """

    def __init__(self, advertiser_id: int, state: ProgramState,
                 step: float = 1.0):
        super().__init__(advertiser_id)
        if step <= 0:
            raise ValueError(f"step must be > 0, got {step}")
        self.state = state
        self.step = step

    def bid(self, ctx: AuctionContext) -> BidsTable:
        state = self.state
        state.auctions_seen += 1
        rate = state.spend_rate(ctx.time)

        if rate < state.target_spend_rate:
            top = state.max_roi()
            for record in state.keywords:
                if (abs(record.roi - top) <= _ROI_TIE_TOL
                        and ctx.query.relevance_of(record.text) > 0
                        and record.bid < record.maxbid):
                    record.bid = min(record.bid + self.step, record.maxbid)
        elif rate > state.target_spend_rate:
            bottom = state.min_roi()
            for record in state.keywords:
                if (abs(record.roi - bottom) <= _ROI_TIE_TOL
                        and ctx.query.relevance_of(record.text) > 0
                        and record.bid > 0):
                    record.bid = max(record.bid - self.step, 0.0)

        return self._bids_table(ctx)

    def _bids_table(self, ctx: AuctionContext) -> BidsTable:
        """Sum tentative bids per formula over sufficiently relevant
        keywords (Figure 5 lines 22-27)."""
        totals: dict[object, float] = {}
        order: list[object] = []
        for record in self.state.keywords:
            if record.formula not in totals:
                totals[record.formula] = 0.0
                order.append(record.formula)
            if ctx.query.relevance_of(record.text) > RELEVANCE_THRESHOLD:
                totals[record.formula] += record.bid
        table = BidsTable()
        for formula in order:
            table.add(formula, totals[formula])
        return table

    def notify(self, notification: ProgramNotification) -> None:
        _fold_notification(self.state, notification)


class SimpleROIPacer(BiddingProgram):
    """The Section IV-B per-keyword pacing rule (benchmark strategy).

    State per keyword: ``bid`` in [0, maxbid].  On an auction for keyword
    ``q``:

    * underspending (``amt_spent / time < target``) → ``bid_q += step``;
    * overspending → ``bid_q -= step``;
    * clamped to [0, maxbid]; other keywords untouched.

    The emitted Bids table has a single row: the queried keyword's
    formula with its current bid (its relevance is 1 > 0.7; all others
    are 0).  Equivalently, for the all-``Click`` workload, this program
    bids ``bid_q`` per click.
    """

    def __init__(self, advertiser_id: int, state: ProgramState,
                 step: float = 1.0):
        super().__init__(advertiser_id)
        if step <= 0:
            raise ValueError(f"step must be > 0, got {step}")
        self.state = state
        self.step = step

    def bid(self, ctx: AuctionContext) -> BidsTable:
        state = self.state
        state.auctions_seen += 1
        record = state.keyword(ctx.query.text)
        table = BidsTable()
        if record is None:
            return table  # not interested in this keyword
        rate = state.spend_rate(ctx.time)
        if rate < state.target_spend_rate:
            record.bid = min(record.bid + self.step, record.maxbid)
        elif rate > state.target_spend_rate:
            record.bid = max(record.bid - self.step, 0.0)
        table.add(record.formula, record.bid)
        return table

    def notify(self, notification: ProgramNotification) -> None:
        _fold_notification(self.state, notification)


def _fold_notification(state: ProgramState,
                       notification: ProgramNotification) -> None:
    """Shared accounting: update spend and per-keyword ROI inputs.

    The realized value of a click defaults to the keyword's private
    value-per-click when the provider does not supply one — the
    advertiser values what he said he values.
    """
    if notification.price_paid <= 0 and not notification.clicked:
        return
    state.amt_spent += notification.price_paid
    record = state.keyword(notification.keyword)
    if record is None:
        return
    gained = notification.value_gained
    if gained == 0.0 and notification.clicked:
        gained = record.value_per_click
    record.record_spend(notification.price_paid, gained)


def make_roi_state(keywords: list[tuple[str, object, float, float]],
                   target_spend_rate: float,
                   initial_bid_fraction: float = 0.5) -> ProgramState:
    """Convenience builder: (text, formula, maxbid, value_per_click) specs.

    Initial bids start at ``initial_bid_fraction * maxbid`` so programs
    neither start silent nor saturated.
    """
    records = [
        KeywordRecord(text=text, formula=formula, maxbid=maxbid,
                      bid=initial_bid_fraction * maxbid,
                      value_per_click=value)
        for text, formula, maxbid, value in keywords
    ]
    return ProgramState(target_spend_rate=target_spend_rate,
                        keywords=records)
