"""A library of expressive bidding strategies.

These realise the advertiser goals the paper's introduction uses to
motivate multi-feature bidding and dynamic strategies (Section I-A):
brand leaders who want the top slot or nothing, brand-awareness buyers
who want top *or* bottom but not the middle, purchase-focused
advertisers, dayparting ramps (the Section IV-A worked example of a
shared monotone strategy with advertiser-specific parameters), budget
pacing, and position targeting à la the third-party search-engine
management companies.
"""

from __future__ import annotations

from repro.lang.bids import BidsTable
from repro.lang.formula import Atom, Formula, or_all
from repro.lang.predicates import click, purchase, slot
from repro.strategies.base import (
    AuctionContext,
    BiddingProgram,
    ProgramNotification,
)


class FixedBidProgram(BiddingProgram):
    """The legacy single-feature strategy: a constant value on Click.

    Embeds today's auctions in the expressive framework (Figure 1).
    """

    def __init__(self, advertiser_id: int, value_per_click: float,
                 keywords: frozenset[str] | None = None):
        super().__init__(advertiser_id)
        if value_per_click < 0:
            raise ValueError("value_per_click must be >= 0")
        self.value_per_click = value_per_click
        self.keywords = keywords  # None = bid on every query

    def bid(self, ctx: AuctionContext) -> BidsTable:
        table = BidsTable()
        if self.keywords is not None and ctx.query.text not in self.keywords:
            return table
        table.add(Atom(click()), self.value_per_click)
        return table


class TopOrNothingProgram(BiddingProgram):
    """Market-leader branding: pay only for clicks received in slot 1.

    "Advertisers whose goals are to be perceived as the leaders in their
    markets may wish their ads to be displayed in the topmost slot or not
    displayed at all."  Bidding ``Click ∧ Slot1`` (plus optionally a pure
    impression value on ``Slot1``) makes every other slot worthless, so
    winner determination only ever places this advertiser on top.
    """

    def __init__(self, advertiser_id: int, value_per_top_click: float,
                 impression_value: float = 0.0):
        super().__init__(advertiser_id)
        self.value_per_top_click = value_per_top_click
        self.impression_value = impression_value

    def bid(self, ctx: AuctionContext) -> BidsTable:
        table = BidsTable()
        table.add(Atom(click()) & Atom(slot(1)), self.value_per_top_click)
        if self.impression_value > 0:
            table.add(Atom(slot(1)), self.impression_value)
        return table


class TopOrBottomProgram(BiddingProgram):
    """Brand awareness: value the top or bottom of the list, not the
    middle (the paper's other Section I-A example)."""

    def __init__(self, advertiser_id: int, impression_value: float,
                 value_per_click: float = 0.0):
        super().__init__(advertiser_id)
        self.impression_value = impression_value
        self.value_per_click = value_per_click

    def bid(self, ctx: AuctionContext) -> BidsTable:
        table = BidsTable()
        edge_slots: Formula = or_all(
            [Atom(slot(1)), Atom(slot(ctx.num_slots))])
        table.add(edge_slots, self.impression_value)
        if self.value_per_click > 0:
            table.add(Atom(click()), self.value_per_click)
        return table


class PurchaseFocusedProgram(BiddingProgram):
    """Direct-response advertising: most value rides on the purchase.

    The Figure 3 shape: a conversion value on ``Purchase``, a small value
    on prominent impressions, and their conjunction implicitly paying the
    sum under OR-bid semantics.
    """

    def __init__(self, advertiser_id: int, purchase_value: float,
                 prominent_slots: int = 2, impression_value: float = 0.0):
        super().__init__(advertiser_id)
        self.purchase_value = purchase_value
        self.prominent_slots = prominent_slots
        self.impression_value = impression_value

    def bid(self, ctx: AuctionContext) -> BidsTable:
        table = BidsTable()
        table.add(Atom(purchase()), self.purchase_value)
        if self.impression_value > 0:
            slots = or_all([Atom(slot(j))
                            for j in range(1,
                                           min(self.prominent_slots,
                                               ctx.num_slots) + 1)])
            table.add(slots, self.impression_value)
        return table


class DaypartingRampProgram(BiddingProgram):
    """Start the day low, ramp bids toward the end of the day.

    This is Section IV-A's running example of a shared monotone strategy:
    every advertiser uses bid = ``start + rate * time_of_day``, but with
    advertiser-specific ``start`` and ``rate`` — exactly the shape the
    threshold algorithm exploits.
    """

    def __init__(self, advertiser_id: int, start: float, rate: float,
                 day_length: float = 24.0, cap: float | None = None):
        super().__init__(advertiser_id)
        if start < 0 or rate < 0:
            raise ValueError("start and rate must be >= 0")
        self.start = start
        self.rate = rate
        self.day_length = day_length
        self.cap = cap

    def current_bid(self, time: float) -> float:
        time_of_day = time % self.day_length
        value = self.start + self.rate * time_of_day
        if self.cap is not None:
            value = min(value, self.cap)
        return value

    def bid(self, ctx: AuctionContext) -> BidsTable:
        table = BidsTable()
        table.add(Atom(click()), self.current_bid(ctx.time))
        return table


class BudgetPacedProgram(BiddingProgram):
    """A daily-budget advertiser: stop bidding once the budget is gone.

    Wraps any inner program; the paper lists the daily budget as one of
    the few constraints today's languages do support, so the expressive
    framework must subsume it.
    """

    def __init__(self, advertiser_id: int, inner: BiddingProgram,
                 budget: float):
        super().__init__(advertiser_id)
        if budget < 0:
            raise ValueError("budget must be >= 0")
        self.inner = inner
        self.budget = budget
        self.spent = 0.0

    @property
    def remaining(self) -> float:
        return max(self.budget - self.spent, 0.0)

    def bid(self, ctx: AuctionContext) -> BidsTable:
        if self.remaining <= 0:
            return BidsTable()
        inner_table = self.inner.bid(ctx)
        capped = BidsTable()
        for row in inner_table:
            capped.add(row.formula, min(row.value, self.remaining))
        return capped

    def notify(self, notification: ProgramNotification) -> None:
        self.spent += notification.price_paid
        self.inner.notify(notification)


class PositionTargetProgram(BiddingProgram):
    """Maintain a target slot position by feedback control.

    Emulates the third-party search-engine-management behaviour the
    introduction describes ("maintaining a specified slot position"):
    raise the bid multiplicatively after landing below the target (or
    losing), lower it after landing above.
    """

    def __init__(self, advertiser_id: int, target_slot: int,
                 initial_bid: float, max_bid: float,
                 adjust_factor: float = 1.25):
        super().__init__(advertiser_id)
        if not adjust_factor > 1.0:
            raise ValueError("adjust_factor must be > 1")
        if not 0 < initial_bid <= max_bid:
            raise ValueError("need 0 < initial_bid <= max_bid")
        self.target_slot = target_slot
        self.current_bid = initial_bid
        self.max_bid = max_bid
        self.adjust_factor = adjust_factor

    def bid(self, ctx: AuctionContext) -> BidsTable:
        table = BidsTable()
        table.add(Atom(click()), self.current_bid)
        return table

    def notify(self, notification: ProgramNotification) -> None:
        landed = notification.slot
        if landed is None or landed > self.target_slot:
            self.current_bid = min(self.current_bid * self.adjust_factor,
                                   self.max_bid)
        elif landed < self.target_slot:
            self.current_bid = self.current_bid / self.adjust_factor
