"""The bidding-program interface (Section II-B).

A bidding program is triggered on every auction: it sees the query and
some shared read-only state, consults and updates its private state, and
emits a Bids table.  After winner determination and the user's actions,
the provider notifies the program of what happened to it (slot, click,
purchase, price), which is how quantities like amount-spent and per-
keyword ROI evolve.

This module defines the context/notification records and the abstract
:class:`BiddingProgram`; concrete strategies live in
:mod:`repro.strategies.roi_equalizer`, :mod:`repro.strategies.library`,
and (running real SQL on the sqlmini engine)
:mod:`repro.strategies.sql_program`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.lang.bids import BidsTable
from repro.lang.predicates import AdvertiserId


@dataclass(frozen=True)
class Query:
    """A user search query as programs see it.

    ``relevance`` maps keyword text to its relevance score in this query
    (the paper's experiments use 1.0 for the chosen keyword and 0.0
    elsewhere, but any scores in [0, 1] are allowed).
    Keywords absent from the mapping have relevance 0.
    """

    text: str
    relevance: Mapping[str, float] = field(
        default_factory=lambda: MappingProxyType({}))

    def relevance_of(self, keyword: str) -> float:
        return float(self.relevance.get(keyword, 0.0))


@dataclass(frozen=True)
class AuctionContext:
    """Everything a program may read when bidding (shared, read-only)."""

    auction_id: int
    time: float
    query: Query
    num_slots: int
    shared: Mapping[str, float] = field(
        default_factory=lambda: MappingProxyType({}))


@dataclass(frozen=True)
class ProgramNotification:
    """What the provider tells a program after an auction resolves.

    ``value_gained`` is the advertiser's own realized value (used for ROI
    accounting); ``price_paid`` is what the pricing rule charged him.
    A program that lost receives ``slot=None`` and zeros.
    """

    auction_id: int
    keyword: str
    slot: int | None = None
    clicked: bool = False
    purchased: bool = False
    price_paid: float = 0.0
    value_gained: float = 0.0


class BiddingProgram:
    """Abstract dynamic bidding strategy.

    Subclasses implement :meth:`bid` (produce a Bids table for the
    current auction, updating private state as a side effect) and may
    override :meth:`notify` to react to wins, clicks, and purchases.
    """

    def __init__(self, advertiser_id: AdvertiserId):
        self.advertiser_id = advertiser_id

    def bid(self, ctx: AuctionContext) -> BidsTable:
        """Produce this auction's Bids table."""
        raise NotImplementedError

    def notify(self, notification: ProgramNotification) -> None:
        """React to the auction's outcome (default: ignore)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(advertiser={self.advertiser_id})"
