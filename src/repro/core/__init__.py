"""Core winner determination (Section III): the paper's contribution.

Revenue-matrix construction (Theorem 2's table), the LP / Hungarian /
reduced-Hungarian / separable / brute-force solver methods, the 2^k
heavyweight-layout algorithm of Section III-F, exact solvers for the
intractable 2-dependent fragment, and result validation.
"""

from repro.core.hardness import (
    UnsupportedHardBidError,
    exact_slot_only_wd,
    slot_only,
)
from repro.core.parallel import (
    ParallelWdResult,
    parallel_speedup_model,
    solve_parallel,
)
from repro.core.heavyweight_wd import (
    HeavyweightBidError,
    HeavyweightWdResult,
    HeavyweightWdStats,
    determine_winners_heavyweight,
    expected_revenue_of_allocation,
)
from repro.core.revenue import (
    RevenueMatrix,
    build_revenue_matrix,
    click_bid_revenue_matrix,
    slot_click_bid_revenue_matrix,
)
from repro.core.validation import (
    WdInvariantError,
    check_result,
    results_agree,
)
from repro.core.winner_determination import (
    METHODS,
    Method,
    SubsetWdResult,
    WdResult,
    allocation_from_matching,
    determine_winners,
    solve,
    solve_on_subset,
)

__all__ = [
    "METHODS",
    "Method",
    "HeavyweightBidError",
    "ParallelWdResult",
    "HeavyweightWdResult",
    "HeavyweightWdStats",
    "RevenueMatrix",
    "UnsupportedHardBidError",
    "WdInvariantError",
    "WdResult",
    "allocation_from_matching",
    "build_revenue_matrix",
    "check_result",
    "click_bid_revenue_matrix",
    "determine_winners",
    "determine_winners_heavyweight",
    "exact_slot_only_wd",
    "expected_revenue_of_allocation",
    "parallel_speedup_model",
    "SubsetWdResult",
    "results_agree",
    "solve_on_subset",
    "solve_parallel",
    "slot_click_bid_revenue_matrix",
    "slot_only",
]
