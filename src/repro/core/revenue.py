"""Expected-revenue matrices (the table of Theorem 2's proof).

Winner determination reduces to matching because, for 1-dependent bids,
the expected payment of advertiser *i* depends only on *i*'s own slot.
Collecting those expectations gives the revenue matrix:

* ``assigned[i, j-1]`` — expected payment of *i* when given slot *j*;
* ``unassigned[i]``   — expected payment of *i* with no slot (OR-bids can
  pay off without a slot, e.g. a ``¬Slot1`` row or the proof's
  ``E ∧ ⋀_j ¬Slot_j`` decomposition).

All solvers operate on the *adjusted* matrix
``assigned - unassigned[:, None]`` and add the constant unassigned total
back, so "leave this advertiser out" is the zero point — this is what
makes a maximum-weight *matching* (rather than a perfect assignment) the
right objective.

Two builders exist:

* :func:`build_revenue_matrix` — fully general: prices every Bids-table
  row via :func:`repro.probability.formula_probability` (O(rows) formula
  evaluations per cell);
* :func:`click_bid_revenue_matrix` — the vectorised special case where
  every advertiser bids a single value on ``Click`` (the Section V
  workload): the matrix is just ``click_probs * bids[:, None]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.lang.bids import BidsTable
from repro.lang.dependence import require_one_dependent
from repro.lang.predicates import AdvertiserId
from repro.probability.click_models import ClickModel
from repro.probability.formula_prob import expected_table_value
from repro.probability.purchase_models import PurchaseModel


@dataclass(frozen=True)
class RevenueMatrix:
    """Expected payments by assignment cell, plus the unassigned column."""

    assigned: np.ndarray
    unassigned: np.ndarray

    def __post_init__(self) -> None:
        assigned = np.asarray(self.assigned, dtype=float)
        unassigned = np.asarray(self.unassigned, dtype=float)
        if assigned.ndim != 2:
            raise ValueError(
                f"assigned must be 2-D, got shape {assigned.shape}")
        if unassigned.shape != (assigned.shape[0],):
            raise ValueError(
                f"unassigned has shape {unassigned.shape}, expected "
                f"({assigned.shape[0]},)")
        object.__setattr__(self, "assigned", assigned)
        object.__setattr__(self, "unassigned", unassigned)

    @property
    def num_advertisers(self) -> int:
        return self.assigned.shape[0]

    @property
    def num_slots(self) -> int:
        return self.assigned.shape[1]

    def adjusted(self, out: np.ndarray | None = None) -> np.ndarray:
        """Edge weights for the matching: gain over staying unassigned.

        ``out``, when given, receives the result in place (it must have
        the matrix's shape and must not alias ``assigned``) — the batch
        pipeline reuses one buffer per auction group this way.
        """
        if out is not None:
            return np.subtract(self.assigned, self.unassigned[:, None],
                               out=out)
        return self.assigned - self.unassigned[:, None]

    def baseline(self) -> float:
        """Revenue if nobody is assigned (the matching's zero point)."""
        return float(self.unassigned.sum())

    def total_for(self, pairs: Sequence[tuple[int, int]]) -> float:
        """Expected revenue of a matching given as (advertiser, col) pairs.

        ``col`` is 0-based (slot ``col + 1``), matching the conventions of
        :class:`repro.matching.MatchingResult`.
        """
        matched = {advertiser for advertiser, _ in pairs}
        total = sum(float(self.assigned[a, c]) for a, c in pairs)
        total += sum(float(self.unassigned[a])
                     for a in range(self.num_advertisers)
                     if a not in matched)
        return total


def build_revenue_matrix(tables: Mapping[AdvertiserId, BidsTable],
                         click_model: ClickModel,
                         purchase_model: PurchaseModel,
                         validate: bool = True) -> RevenueMatrix:
    """Price every (advertiser, slot) cell of a set of Bids tables.

    Advertiser ids must be ``0..n-1`` (dense), matching the click model's
    rows.  With ``validate`` (default) the bids are first checked to be
    1-dependent, raising :class:`repro.lang.NotOneDependentError`
    otherwise — this is the submission-time guard Theorem 3 makes
    necessary.
    """
    num_advertisers = click_model.num_advertisers
    num_slots = click_model.num_slots
    _check_dense_ids(tables, num_advertisers)
    if validate:
        require_one_dependent(dict(tables))

    assigned = np.zeros((num_advertisers, num_slots))
    unassigned = np.zeros(num_advertisers)
    for advertiser, table in tables.items():
        for j in range(1, num_slots + 1):
            assigned[advertiser, j - 1] = expected_table_value(
                table, advertiser, j, click_model, purchase_model)
        unassigned[advertiser] = expected_table_value(
            table, advertiser, None, click_model, purchase_model)
    return RevenueMatrix(assigned=assigned, unassigned=unassigned)


def click_bid_revenue_matrix(bids: Sequence[float] | np.ndarray,
                             click_model: ClickModel,
                             out: RevenueMatrix | None = None
                             ) -> RevenueMatrix:
    """Vectorised builder for single-value ``Click`` bids.

    ``bids[i]`` is advertiser *i*'s bid per click (the Section V workload
    after program evaluation).  The expected revenue of (i, j) is
    ``p_click[i, j] * bids[i]`` and unassigned advertisers pay nothing.

    ``out``, when given, is an existing matrix of the right shape whose
    ``assigned`` buffer is refilled in place and returned (its
    ``unassigned`` column must already be zero) — this is how the batch
    pipeline builds one matrix per auction group instead of one per
    auction.
    """
    bid_vector = np.asarray(bids, dtype=float)
    if bid_vector.ndim != 1:
        raise ValueError(f"bids must be 1-D, got shape {bid_vector.shape}")
    if len(bid_vector) != click_model.num_advertisers:
        raise ValueError(
            f"{len(bid_vector)} bids for {click_model.num_advertisers} "
            "advertisers")
    if out is not None:
        np.multiply(click_model.as_matrix(), bid_vector[:, None],
                    out=out.assigned)
        return out
    matrix = click_model.as_matrix() * bid_vector[:, None]
    return RevenueMatrix(assigned=matrix,
                         unassigned=np.zeros(len(bid_vector)))


def slot_click_bid_revenue_matrix(bids: np.ndarray,
                                  click_model: ClickModel) -> RevenueMatrix:
    """Vectorised builder for per-slot ``Click ∧ Slot_j`` bids.

    ``bids[i, j-1]`` is advertiser *i*'s bid on ``Click ∧ Slot_j`` (the
    Section IV exposition's bid shape).  Expected revenue of (i, j) is
    ``p_click[i, j] * bids[i, j-1]``.
    """
    bid_matrix = np.asarray(bids, dtype=float)
    expected_shape = (click_model.num_advertisers, click_model.num_slots)
    if bid_matrix.shape != expected_shape:
        raise ValueError(
            f"bids have shape {bid_matrix.shape}, expected {expected_shape}")
    matrix = click_model.as_matrix() * bid_matrix
    return RevenueMatrix(assigned=matrix,
                         unassigned=np.zeros(expected_shape[0]))


def _check_dense_ids(tables: Mapping[AdvertiserId, BidsTable],
                     num_advertisers: int) -> None:
    for advertiser in tables:
        if not 0 <= advertiser < num_advertisers:
            raise ValueError(
                f"advertiser id {advertiser} outside 0..{num_advertisers - 1}")
