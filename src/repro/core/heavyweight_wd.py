"""Winner determination beyond 1-dependence (Section III-F).

Advertisers are classified heavyweight or lightweight; click
probabilities and bids may condition on *which slots hold heavyweights*
(``HeavyInSlot_j`` predicates).  The paper's algorithm enumerates the 2^k
heavyweight layouts; for each layout S it solves two disjoint matchings —
heavyweights onto the slots of S, lightweights onto the rest — and keeps
the best layout.  Serial cost O(2^k (n log k + k^5)); the per-layout
problems are independent, so 2^k processors solve it in the time of one
(we report both via :class:`HeavyweightWdStats`).

Layout semantics: solving layout S *requires* every slot in S to be
filled by a heavyweight and forbids heavyweights elsewhere.  Every
allocation realises exactly one layout (the set of slots its heavyweights
occupy), so the per-layout optima partition the search space and the
maximum over layouts is the global optimum — the property the tests
verify against brute force.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.lang.bids import BidsTable
from repro.lang.dependence import analyze_formula
from repro.lang.outcome import Allocation
from repro.lang.predicates import AdvertiserId
from repro.matching.hungarian import max_weight_matching
from repro.matching.reduction import reduced_matching
from repro.probability.formula_prob import heavy_expected_table_value
from repro.probability.heavyweight import HeavyweightClickModel, all_layouts
from repro.probability.purchase_models import PurchaseModel


@dataclass(frozen=True)
class HeavyweightWdStats:
    """Work accounting for the 2^k layout enumeration."""

    layouts_considered: int
    layouts_feasible: int
    serial_matchings: int
    parallel_critical_matchings: int


@dataclass(frozen=True)
class HeavyweightWdResult:
    """The revenue-maximising allocation and its realized layout."""

    allocation: Allocation
    heavy_slots: frozenset[int]
    expected_revenue: float
    stats: HeavyweightWdStats


class HeavyweightBidError(ValueError):
    """A bid is not solvable by the layout decomposition.

    Bids may mention the bidder's own slot, clicks, purchases, and the
    heavyweight layout — but not other advertisers directly.
    """


def determine_winners_heavyweight(
        tables: Mapping[AdvertiserId, BidsTable],
        heavyweights: frozenset[AdvertiserId],
        click_model: HeavyweightClickModel,
        purchase_model: PurchaseModel) -> HeavyweightWdResult:
    """The 2^k-layout winner-determination algorithm of Section III-F."""
    num_advertisers = click_model.num_advertisers
    num_slots = click_model.num_slots
    _validate_bids(tables)

    heavy_ids = sorted(adv for adv in range(num_advertisers)
                       if adv in heavyweights)
    light_ids = sorted(adv for adv in range(num_advertisers)
                       if adv not in heavyweights)

    best_revenue = -np.inf
    best_allocation: Allocation | None = None
    best_layout: frozenset[int] = frozenset()
    layouts_considered = 0
    layouts_feasible = 0

    for layout in all_layouts(num_slots):
        layouts_considered += 1
        if len(layout) > len(heavy_ids):
            continue  # not enough heavyweights to realise this layout
        layouts_feasible += 1

        baseline, heavy_pairs, light_pairs, gain = _solve_layout(
            tables, layout, heavy_ids, light_ids, num_slots,
            click_model, purchase_model)
        if heavy_pairs is None:
            continue  # heavy side could not fill every layout slot
        revenue = baseline + gain
        if revenue > best_revenue + 1e-12:
            best_revenue = revenue
            best_layout = layout
            slot_of = dict(heavy_pairs)
            slot_of.update(light_pairs)
            best_allocation = Allocation(num_slots=num_slots,
                                         slot_of=slot_of)

    if best_allocation is None:  # pragma: no cover - layout () always works
        raise RuntimeError("no feasible layout; this cannot happen since "
                           "the empty layout is always feasible")
    stats = HeavyweightWdStats(
        layouts_considered=layouts_considered,
        layouts_feasible=layouts_feasible,
        serial_matchings=2 * layouts_feasible,
        parallel_critical_matchings=2,
    )
    return HeavyweightWdResult(allocation=best_allocation,
                               heavy_slots=best_layout,
                               expected_revenue=float(best_revenue),
                               stats=stats)


def expected_revenue_of_allocation(
        tables: Mapping[AdvertiserId, BidsTable],
        allocation: Allocation,
        heavyweights: frozenset[AdvertiserId],
        click_model: HeavyweightClickModel,
        purchase_model: PurchaseModel) -> float:
    """Expected pay-what-you-bid revenue of a concrete allocation.

    The layout is the one the allocation itself realises.  This is the
    objective the brute-force oracle maximises in tests.
    """
    layout = frozenset(slot_index
                       for adv, slot_index in allocation.slot_of.items()
                       if adv in heavyweights)
    total = 0.0
    for advertiser, table in tables.items():
        slot_index = allocation.slot_for(advertiser)
        total += heavy_expected_table_value(
            table, advertiser, slot_index, layout, click_model,
            purchase_model)
    return total


def _solve_layout(tables, layout, heavy_ids, light_ids, num_slots,
                  click_model, purchase_model):
    """Solve the two disjoint matchings for one heavyweight layout.

    Returns ``(baseline, heavy_pairs, light_pairs, matching_gain)``;
    ``heavy_pairs`` is ``None`` when the layout cannot be realised.
    """
    heavy_slots = sorted(layout)
    light_slots = [j for j in range(1, num_slots + 1) if j not in layout]

    baseline = 0.0
    values: dict[AdvertiserId, dict[int | None, float]] = {}
    for advertiser, table in tables.items():
        per_slot: dict[int | None, float] = {}
        own_slots = (heavy_slots if advertiser in set(heavy_ids)
                     else light_slots)
        for slot_index in own_slots:
            per_slot[slot_index] = heavy_expected_table_value(
                table, advertiser, slot_index, layout, click_model,
                purchase_model)
        per_slot[None] = heavy_expected_table_value(
            table, advertiser, None, layout, click_model, purchase_model)
        values[advertiser] = per_slot
        baseline += per_slot[None]

    gain = 0.0
    heavy_pairs: list[tuple[AdvertiserId, int]] = []
    if heavy_slots:
        weights = np.array(
            [[values.get(adv, {None: 0.0}).get(slot_index, 0.0)
              - values.get(adv, {None: 0.0})[None]
              for slot_index in heavy_slots]
             for adv in heavy_ids])
        # Every layout slot must be filled: perfect matching on the slot
        # side, so orient slots as rows and forbid unmatched rows.
        matching = max_weight_matching(weights.T, allow_unmatched=False,
                                       backend="python")
        if len(matching.pairs) < len(heavy_slots):
            return baseline, None, [], 0.0
        for slot_row, adv_col in matching.pairs:
            heavy_pairs.append((heavy_ids[adv_col], heavy_slots[slot_row]))
        gain += matching.total_weight

    light_pairs: list[tuple[AdvertiserId, int]] = []
    if light_slots and light_ids:
        weights = np.array(
            [[values.get(adv, {None: 0.0}).get(slot_index, 0.0)
              - values.get(adv, {None: 0.0})[None]
              for slot_index in light_slots]
             for adv in light_ids])
        matching = reduced_matching(weights, select_backend="heap",
                                    hungarian_backend="python")
        for adv_row, slot_col in matching.pairs:
            light_pairs.append((light_ids[adv_row], light_slots[slot_col]))
        gain += matching.total_weight

    return baseline, heavy_pairs, light_pairs, gain


def _validate_bids(tables: Mapping[AdvertiserId, BidsTable]) -> None:
    for owner, table in tables.items():
        for row in table:
            profile = analyze_formula(row.formula, owner)
            if profile.advertisers - {owner}:
                raise HeavyweightBidError(
                    f"bid {row.formula} by advertiser {owner} references "
                    f"other advertisers {sorted(profile.advertisers - {owner})}; "
                    "the layout decomposition only supports own-slot, "
                    "click, purchase, and HeavyInSlot predicates")
