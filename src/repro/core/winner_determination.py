"""Winner determination: the four methods of the paper's experiments.

Given a :class:`~repro.core.revenue.RevenueMatrix`, every method computes
the slot allocation maximising expected revenue (assuming advertisers pay
what they bid).  The methods differ only in *how*:

* ``lp``        — the assignment linear program (Section V method LP);
* ``hungarian`` — the Hungarian algorithm on the full bipartite graph
  (method H);
* ``rh``        — the paper's contribution: top-k-per-slot reduction,
  then the Hungarian on the ≤ k² surviving advertisers (method RH);
* ``separable`` — the incumbent O(n log k) sort-based allocator, valid
  only when the adjusted matrix is rank-1 (Section III-C); it verifies
  separability and raises otherwise;
* ``brute``     — exhaustive enumeration, for tiny instances and tests.

RHTALU (method four of the experiments) is not a solver of this module:
it changes how the *candidates and bids* are produced (Section IV) and
lives in :mod:`repro.evaluation.evaluator`; its final matching step is
the same reduced Hungarian.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Mapping

import numpy as np

from repro.lang.bids import BidsTable
from repro.lang.outcome import Allocation
from repro.lang.predicates import AdvertiserId
from repro.matching.brute_force import brute_force_matching
from repro.matching.hungarian import max_weight_matching
from repro.matching.lp import lp_matching
from repro.matching.reduction import (
    reduced_matching,
    reduced_matching_columns,
)
from repro.matching.greedy_separable import separable_matching
from repro.matching.types import MatchingResult
from repro.probability.click_models import ClickModel
from repro.probability.separable import NotSeparableError, factorize
from repro.probability.purchase_models import PurchaseModel
from repro.core.revenue import RevenueMatrix, build_revenue_matrix

Method = Literal["lp", "hungarian", "rh", "separable", "brute"]

METHODS: tuple[Method, ...] = ("lp", "hungarian", "rh", "separable",
                               "brute")


@dataclass(frozen=True)
class WdResult:
    """Outcome of winner determination.

    ``expected_revenue`` includes the unassigned baseline, i.e. it is the
    true objective value, not just the matching weight.
    """

    allocation: Allocation
    matching: MatchingResult
    expected_revenue: float
    method: Method


def solve(revenue: RevenueMatrix, method: Method = "rh",
          adjusted: np.ndarray | None = None) -> WdResult:
    """Run one winner-determination method on a revenue matrix.

    ``adjusted``, when given, must equal ``revenue.adjusted()`` — callers
    that already hold the adjusted weights (the batch pipeline keeps them
    in a per-group buffer) pass them in to skip recomputing the n-by-k
    subtraction.  Solvers treat it as read-only.
    """
    if adjusted is None:
        adjusted = revenue.adjusted()
    if method == "lp":
        matching = lp_matching(adjusted).matching
    elif method == "hungarian":
        matching = max_weight_matching(adjusted, allow_unmatched=True,
                                       backend="python")
    elif method == "rh":
        # The top-k scan is the trivially-parallel part of RH (the paper
        # distributes it over a tree network); the vectorised backend is
        # our single-process stand-in for that.  The heap backend — the
        # paper's O(nk log k) scan — is exercised by the reduction
        # ablation bench and the matching tests.
        matching = reduced_matching(adjusted, select_backend="numpy",
                                    hungarian_backend="auto")
    elif method == "separable":
        matching = _separable_solve(adjusted)
    elif method == "brute":
        matching = brute_force_matching(adjusted, allow_unmatched=True)
    else:
        raise ValueError(f"unknown method {method!r}; "
                         f"expected one of {METHODS}")

    allocation = allocation_from_matching(matching, revenue.num_slots)
    total = revenue.baseline() + matching.total_weight
    return WdResult(allocation=allocation, matching=matching,
                    expected_revenue=total, method=method)


def determine_winners(tables: Mapping[AdvertiserId, BidsTable],
                      click_model: ClickModel,
                      purchase_model: PurchaseModel,
                      method: Method = "rh",
                      validate: bool = True) -> WdResult:
    """End-to-end winner determination from Bids tables.

    Validates 1-dependence (unless ``validate=False``), prices the bids
    into a revenue matrix, and solves with the chosen method.
    """
    revenue = build_revenue_matrix(tables, click_model, purchase_model,
                                   validate=validate)
    return solve(revenue, method=method)


@dataclass(frozen=True)
class SubsetWdResult:
    """Winner determination restricted to a live advertiser subset.

    ``matching`` pairs are subset-local rows (aligned with ``weights``
    / ``click_rows`` / ``candidate_bids``); ``slot_of`` and ``id_map``
    carry the translation back to global advertiser ids — exactly the
    candidate-local shape :meth:`repro.auction.settlement
    .AuctionSettler.settle` consumes.
    """

    weights: np.ndarray
    matching: MatchingResult
    expected_revenue: float
    slot_of: dict[int, int]
    id_map: list[int]
    candidate_bids: np.ndarray
    click_rows: np.ndarray


def solve_on_subset(click_matrix: np.ndarray, bids: np.ndarray,
                    active: np.ndarray,
                    method: Method = "rh") -> SubsetWdResult:
    """Solve one click-bid auction on the surviving population only.

    The online serving layer's winner-determination rule: departed
    advertisers are *excluded* from the candidate space (zero-weight
    edges can enter a maximum matching, so zeroing their bids is not
    enough).  Both the in-process service and the sharded
    coordinator's gather path route through this one function — their
    bit-identity across execution modes depends on computing the
    subset weights with the same float operations, so the logic lives
    in exactly one place.  An empty subset yields an empty matching
    without invoking a solver.
    """
    num_slots = click_matrix.shape[1]
    if len(active) == 0:
        return SubsetWdResult(
            weights=np.zeros((0, num_slots)),
            matching=MatchingResult(pairs=(), total_weight=0.0),
            expected_revenue=0.0, slot_of={}, id_map=[],
            candidate_bids=np.zeros(0),
            click_rows=np.zeros((0, num_slots)))
    # Same per-element ops as click_bid_revenue_matrix, on the subset.
    weights = click_matrix[active] * bids[active][:, None]
    revenue = RevenueMatrix(assigned=weights,
                            unassigned=np.zeros(len(active)))
    result = solve(revenue, method=method, adjusted=weights)
    slot_of = {int(active[row]): col + 1
               for row, col in result.matching.pairs}
    return SubsetWdResult(
        weights=weights,
        matching=result.matching,
        expected_revenue=result.expected_revenue,
        slot_of=slot_of,
        id_map=[int(advertiser) for advertiser in active],
        candidate_bids=bids[active],
        click_rows=click_matrix[active])


class SubsetWindowSolver:
    """:func:`solve_on_subset` with membership-scoped caches.

    The streaming micro-batcher dispatches maximal runs of consecutive
    queries with **no membership change between them** (control events
    flush the window; service-originated pauses invalidate it), so
    everything that depends only on the active set — the id map, the
    active click rows, the weight buffers — is computed once per
    window instead of once per query.  The per-query work that remains
    is exactly the arithmetic :func:`solve_on_subset` performs, in the
    same float operations, so results are bit-identical to the
    uncached path (the oracle suites assert this).

    For method ``rh`` the weights are kept slot-major: the reduction's
    per-slot scan then runs over contiguous rows
    (:func:`repro.matching.reduction.reduce_graph_columns`), and the
    row-major ``weights`` every downstream consumer sees is a
    transposed *view* of the same buffer — identical values, zero
    copies.
    """

    def __init__(self, click_matrix: np.ndarray, active: np.ndarray,
                 method: Method = "rh"):
        self.method = method
        self.num_slots = click_matrix.shape[1]
        self.active = np.asarray(active)
        self.id_map = [int(advertiser) for advertiser in self.active]
        self.click_rows = click_matrix[self.active]
        self._bids = np.empty(len(self.active))
        if method == "rh":
            self._click_cols = np.ascontiguousarray(self.click_rows.T)
            self._weights_t = np.empty_like(self._click_cols)
        else:
            self._weights = np.empty_like(self.click_rows)

    def solve(self, bids: np.ndarray) -> SubsetWdResult:
        if len(self.active) == 0:
            return solve_on_subset(self.click_rows.reshape(
                (0, self.num_slots)), bids, self.active,
                method=self.method)
        np.take(bids, self.active, out=self._bids)
        if self.method == "rh":
            # weights_t[j, i] = click[i, j] * bid[i]: the same operand
            # pairs as click_matrix[active] * bids[active][:, None],
            # multiplied in the same order — transposed layout only.
            np.multiply(self._click_cols, self._bids[None, :],
                        out=self._weights_t)
            weights = self._weights_t.T
            matching = reduced_matching_columns(
                self._weights_t, hungarian_backend="auto")
        else:
            np.multiply(self.click_rows, self._bids[:, None],
                        out=self._weights)
            weights = self._weights
            if self.method == "lp":
                matching = lp_matching(weights).matching
            elif self.method == "hungarian":
                matching = max_weight_matching(
                    weights, allow_unmatched=True, backend="python")
            else:
                raise ValueError(
                    f"unsupported window method {self.method!r}")
        slot_of = {int(self.active[row]): col + 1
                   for row, col in matching.pairs}
        # expected = baseline + weight; the subset baseline is an
        # all-zeros unassigned column, so the sum is exactly 0.0.
        return SubsetWdResult(
            weights=weights,
            matching=matching,
            expected_revenue=0.0 + matching.total_weight,
            slot_of=slot_of,
            id_map=self.id_map,
            candidate_bids=self._bids,
            click_rows=self.click_rows)


def allocation_from_matching(matching: MatchingResult,
                             num_slots: int) -> Allocation:
    """Translate matcher output (0-based columns) into an Allocation."""
    return Allocation(
        num_slots=num_slots,
        slot_of={advertiser: col + 1 for advertiser, col in matching.pairs})


def _separable_solve(adjusted: np.ndarray) -> MatchingResult:
    """The incumbent allocator; only sound on separable instances."""
    if np.any(adjusted < 0):
        raise NotSeparableError(
            "separable allocator requires non-negative adjusted weights "
            "(bids with unassigned-payoff rows are outside its scope)")
    factors = factorize(adjusted)  # raises NotSeparableError if rank > 1
    return separable_matching(factors.advertiser_factors,
                              factors.slot_factors)
