"""The intractable side of the frontier (Theorem 3) at the core API level.

Winner determination rejects non-1-dependent bids
(:class:`repro.lang.NotOneDependentError`).  For *tiny* instances this
module still lets you solve them exactly, so that examples and tests can
demonstrate both what 2-dependent bids express and why they cannot scale:
the only general solver is enumeration over all C(n,k)·k! allocations.

Only slot-predicate bids are supported here (clicks/purchases of multiple
interacting advertisers would need a joint user model the paper does not
define); the Theorem 3 gadget is exactly of this shape.
"""

from __future__ import annotations

from typing import Mapping

from repro.lang.bids import BidsTable
from repro.lang.formula import Formula
from repro.lang.outcome import Allocation, Outcome
from repro.lang.predicates import AdvertiserId, SlotPredicate
from repro.matching.brute_force import brute_force_allocation


class UnsupportedHardBidError(ValueError):
    """A bid uses non-slot predicates in the exact hard-case solver."""


def slot_only(tables: Mapping[AdvertiserId, BidsTable]) -> bool:
    """Whether every bid formula uses slot predicates only."""
    for table in tables.values():
        for row in table:
            if not _is_slot_only(row.formula):
                return False
    return True


def exact_slot_only_wd(tables: Mapping[AdvertiserId, BidsTable],
                       num_advertisers: int,
                       num_slots: int) -> tuple[Allocation, float]:
    """Exact winner determination for arbitrary-dependence slot bids.

    Revenue of an allocation is deterministic (no clicks involved), so
    the objective is the summed OR-bid payment.  Exponential; guarded by
    the brute-force size cap.
    """
    if not slot_only(tables):
        raise UnsupportedHardBidError(
            "exact_slot_only_wd handles slot-predicate bids only")

    def revenue_of(allocation: Allocation) -> float:
        outcome = Outcome(allocation=allocation)
        return sum(table.payment(outcome, owner)
                   for owner, table in tables.items())

    return brute_force_allocation(num_advertisers, num_slots, revenue_of)


def _is_slot_only(formula: Formula) -> bool:
    return all(isinstance(atom, SlotPredicate) for atom in formula.atoms())
